//! A deterministic data-parallel iteration simulator.
//!
//! Models one worker's view of a synchronous data-parallel iteration: a
//! single compute resource (the GPU) runs the backward pass in a given
//! order, then updates and the next iteration's forward pass; a single
//! communication resource (the link / parameter-server path) runs the
//! parameter synchronizations `S[dW_i]` under a pluggable policy.
//!
//! The simulator is the evaluation backend for the paper's Figure 4 and
//! for the `k`-search of reverse first-k scheduling; the cluster-level
//! engine in `ooo-cluster` builds on the same structure with full
//! topology-aware synchronization costs from `ooo-netsim`.

use crate::cost::CostModel;
use crate::error::Result;
use crate::graph::TrainGraph;
use crate::list_scheduling::{TimedOp, Timeline};
use crate::op::{LayerId, Op};
use crate::schedule::{validate_partial_order, ResourceId};
use crate::SimTime;

/// Order in which the communication resource serves ready
/// synchronizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommPolicy {
    /// First-come-first-served by gradient completion time — the behaviour
    /// of plain wait-free backpropagation.
    FifoCompletion,
    /// Among the ready synchronizations, the lowest layer index goes first
    /// — the prioritized parameter communication of BytePS/ByteScheduler
    /// (layer 1's parameters are needed first by the next forward pass).
    PriorityByLayer,
}

/// Resource id of the compute lane in the produced timeline.
pub const COMPUTE: ResourceId = ResourceId(0);
/// Resource id of the communication lane in the produced timeline.
pub const LINK: ResourceId = ResourceId(1);

/// Plans the order in which the link serves the layer synchronizations
/// `S[dW_i]`, given each layer's gradient completion time `dw_finish[i]`
/// (1-based; index 0 unused) and per-layer wire occupancy `sync_ns(i)`.
/// Returns `(layer, wire_start, wire_end)` in service order.
///
/// This is the shared service-order core behind
/// [`simulate_data_parallel_with_tail`] and the static reconstruction in
/// `ooo-verify`'s `datapar_schedule`. It runs in O(L log L) — arrivals
/// sorted once and consumed through a cursor, plus (for the priority
/// policy) a min-layer ready heap — but picks the exact sequence of the
/// previous O(L²) scan-and-retain loop:
///
/// - **FIFO by completion**: the old loop picked the pending layer
///   minimizing `(dw_finish, layer)` among those ready at
///   `now = max(link_free, earliest_ready)`; the global minimizer is
///   always ready at `now` (its finish *is* `earliest_ready`), so service
///   order equals arrival order `(dw_finish, layer)`.
/// - **Priority by layer**: every admitted-but-unserved layer has
///   `dw_finish ≤ link_free` (it was ready at an earlier service instant),
///   so when the ready heap is non-empty `now = link_free` exactly as the
///   old `max(link_free, earliest_ready)`; admitting all arrivals with
///   `dw_finish ≤ now` then popping the minimum layer reproduces the old
///   filter-then-`min()` pick.
pub fn plan_sync_service(
    dw_finish: &[SimTime],
    policy: CommPolicy,
    mut sync_ns: impl FnMut(usize) -> SimTime,
) -> Vec<(usize, SimTime, SimTime)> {
    let l = dw_finish.len().saturating_sub(1);
    let mut arrivals: Vec<usize> = (1..=l).collect();
    arrivals.sort_by_key(|&i| (dw_finish[i], i));
    let mut out: Vec<(usize, SimTime, SimTime)> = Vec::with_capacity(l);
    let mut link_free: SimTime = 0;
    match policy {
        CommPolicy::FifoCompletion => {
            for &i in &arrivals {
                let start = link_free.max(dw_finish[i]);
                let end = start + sync_ns(i);
                out.push((i, start, end));
                link_free = end;
            }
        }
        CommPolicy::PriorityByLayer => {
            let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> =
                std::collections::BinaryHeap::new();
            let mut cursor = 0usize;
            while out.len() < l {
                let now = if ready.is_empty() {
                    link_free.max(dw_finish[arrivals[cursor]])
                } else {
                    link_free
                };
                while cursor < arrivals.len() && dw_finish[arrivals[cursor]] <= now {
                    ready.push(std::cmp::Reverse(arrivals[cursor]));
                    cursor += 1;
                }
                let std::cmp::Reverse(pick) = ready.pop().expect("admitted at least one");
                let end = now + sync_ns(pick);
                out.push((pick, now, end));
                link_free = end;
            }
        }
    }
    out
}

/// Simulates one data-parallel iteration.
///
/// `backward` is the compute order of the backward pass (loss, `dO`s and
/// `dW`s — e.g. the output of
/// [`crate::reverse_k::reverse_first_k`]); the simulator appends the
/// updates and forward computations in layer order, each gated on its
/// synchronization.
///
/// # Errors
///
/// Propagates validation errors when `backward` is not a valid partial
/// order of `graph`.
pub fn simulate_data_parallel<C: CostModel>(
    graph: &TrainGraph,
    backward: &[Op],
    cost: &C,
    policy: CommPolicy,
) -> Result<Timeline> {
    simulate_data_parallel_with_tail(graph, backward, cost, policy, 0)
}

/// Like [`simulate_data_parallel`], with a per-synchronization *latency
/// tail*: after a synchronization's link occupancy ends, `tail_ns` more
/// elapse before the updated parameters are usable (aggregation barrier,
/// server round trip). The tail delays dependants but does not occupy the
/// link, so it pipelines across tensors — the mechanism that makes
/// *starting* a critical synchronization earlier (reverse first-k) pay
/// off even when a priority queue already orders the wire optimally.
///
/// # Errors
///
/// Propagates validation errors.
pub fn simulate_data_parallel_with_tail<C: CostModel>(
    graph: &TrainGraph,
    backward: &[Op],
    cost: &C,
    policy: CommPolicy,
    tail_ns: SimTime,
) -> Result<Timeline> {
    validate_partial_order(graph, backward)?;
    let l = graph.layers();
    let mut entries: Vec<TimedOp> = Vec::with_capacity(graph.len());

    // 1. Backward pass on the compute lane, strictly in the given order.
    //    (Validity was checked above, so sequential execution satisfies
    //    every dependency.)
    let mut t: SimTime = 0;
    let mut dw_finish: Vec<SimTime> = vec![0; l + 1];
    for &op in backward {
        let end = t + cost.duration(op);
        entries.push(TimedOp {
            op,
            resource: COMPUTE,
            start: t,
            end,
        });
        if let Op::WeightGrad(LayerId(i)) = op {
            dw_finish[i] = end;
        }
        t = end;
    }
    let backward_done = t;

    // 2. Synchronizations on the link lane under `policy`. FIFO by
    //    completion = ready-time order with completion sequence as the
    //    tie-break, which equals ready-time order here because each dW
    //    finish time is distinct per compute sequencing (ties broken by
    //    layer for determinism). The service order itself comes from the
    //    shared O(L log L) planner.
    let mut sync_finish: Vec<SimTime> = vec![0; l + 1];
    for (pick, start, end) in plan_sync_service(&dw_finish, policy, |i| {
        cost.duration(Op::SyncWeightGrad(LayerId(i)))
    }) {
        let op = Op::SyncWeightGrad(LayerId(pick));
        entries.push(TimedOp {
            op,
            resource: LINK,
            start,
            end: end + tail_ns,
        });
        // Only the wire occupancy blocks the link; the tail pipelines.
        sync_finish[pick] = end + tail_ns;
    }

    // 3. Updates and forward pass on the compute lane, layer order. U_i is
    //    gated on S[dW_i]; F_i on U_i and F_{i-1}.
    let mut t = backward_done;
    #[allow(clippy::needless_range_loop)] // i is the 1-based layer index
    for i in 1..=l {
        let u = Op::Update(LayerId(i));
        let start = t.max(sync_finish[i]);
        let end = start + cost.duration(u);
        if graph.contains(u) {
            entries.push(TimedOp {
                op: u,
                resource: COMPUTE,
                start,
                end,
            });
        }
        t = end;
        let f = Op::Forward(LayerId(i));
        let fe = t + cost.duration(f);
        entries.push(TimedOp {
            op: f,
            resource: COMPUTE,
            start: t,
            end: fe,
        });
        t = fe;
    }

    entries.sort_by_key(|e| (e.start, e.resource.0 as u64, e.end));
    Ok(Timeline { entries })
}

/// A per-worker relative speed, stored as an exact integer percentage
/// (100 = the reference speed, 150 = every compute op takes 1.5x as
/// long). Integer arithmetic keeps the heterogeneous simulator exactly
/// reproducible and makes the uniform case (`percent == 100`) reduce to
/// the homogeneous path *byte for byte*: `ns * 100 / 100 == ns` with no
/// floating-point rounding in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpeedFactor {
    /// Slowdown percentage: 100 is nominal, larger is slower.
    pub percent: u32,
}

impl SpeedFactor {
    /// The reference speed (no scaling).
    pub const UNIT: SpeedFactor = SpeedFactor { percent: 100 };

    /// A factor from a percentage (clamped to at least 1).
    pub fn percent(percent: u32) -> Self {
        SpeedFactor {
            percent: percent.max(1),
        }
    }

    /// Whether this factor leaves durations unchanged.
    pub fn is_unit(self) -> bool {
        self.percent == 100
    }

    /// Scales a duration by this factor with exact integer arithmetic
    /// (round up, so a slow worker is never optimistically fast).
    pub fn scale(self, ns: SimTime) -> SimTime {
        if self.percent == 100 {
            return ns;
        }
        (ns * self.percent as SimTime).div_ceil(100)
    }
}

impl Default for SpeedFactor {
    fn default() -> Self {
        SpeedFactor::UNIT
    }
}

/// The outcome of a heterogeneous data-parallel iteration: one timeline
/// per worker plus the fleet makespan.
#[derive(Debug, Clone)]
pub struct HeteroOutcome {
    /// Per-worker timelines (compute lane `COMPUTE`, shared link lane
    /// `LINK`; the link entries are identical across workers because the
    /// synchronization service is a fleet-level resource).
    pub workers: Vec<Timeline>,
    /// Layer synchronization finish times (1-based; index 0 unused).
    pub sync_finish: Vec<SimTime>,
}

impl HeteroOutcome {
    /// The fleet makespan: the slowest worker's iteration finish.
    pub fn makespan(&self) -> SimTime {
        self.workers
            .iter()
            .map(Timeline::makespan)
            .max()
            .unwrap_or(0)
    }

    /// Index of the worker that finishes last (the straggler).
    pub fn straggler(&self) -> usize {
        (0..self.workers.len())
            .max_by_key(|&w| (self.workers[w].makespan(), std::cmp::Reverse(w)))
            .unwrap_or(0)
    }
}

/// Simulates one synchronous data-parallel iteration over a fleet of
/// workers with per-worker [`SpeedFactor`]s — the heterogeneous
/// generalization of [`simulate_data_parallel_with_tail`].
///
/// Every worker runs the same backward `order` on its own compute lane
/// with its compute durations scaled by its factor. A layer's parameter
/// synchronization becomes ready only when *every* worker has finished
/// that layer's `dW` (the synchronous all-reduce barrier), the link
/// serves the ready synchronizations under `policy`, and each worker's
/// update/forward tail is gated on the shared synchronization finishes.
///
/// With a uniform fleet (`[SpeedFactor::UNIT; n]`) every worker's
/// timeline equals the homogeneous simulator's output exactly — the
/// differential the conformance suite pins byte-for-byte.
///
/// # Errors
///
/// Returns [`crate::error::Error::InvalidConfig`] for an empty fleet and
/// propagates validation errors when `backward` is not a valid partial
/// order of `graph`.
pub fn simulate_data_parallel_hetero<C: CostModel>(
    graph: &TrainGraph,
    backward: &[Op],
    cost: &C,
    policy: CommPolicy,
    tail_ns: SimTime,
    speeds: &[SpeedFactor],
) -> Result<HeteroOutcome> {
    if speeds.is_empty() {
        return Err(crate::error::Error::InvalidConfig(
            "heterogeneous fleet needs at least one worker".into(),
        ));
    }
    validate_partial_order(graph, backward)?;
    let l = graph.layers();

    // 1. Backward pass per worker, scaled durations, strictly sequential.
    let mut per_worker: Vec<Vec<TimedOp>> = Vec::with_capacity(speeds.len());
    let mut backward_done: Vec<SimTime> = Vec::with_capacity(speeds.len());
    let mut dw_finish: Vec<SimTime> = vec![0; l + 1];
    for &s in speeds {
        let mut entries = Vec::with_capacity(graph.len());
        let mut t: SimTime = 0;
        for &op in backward {
            let end = t + s.scale(cost.duration(op));
            entries.push(TimedOp {
                op,
                resource: COMPUTE,
                start: t,
                end,
            });
            if let Op::WeightGrad(LayerId(i)) = op {
                // The all-reduce for layer i waits for the slowest worker.
                dw_finish[i] = dw_finish[i].max(end);
            }
            t = end;
        }
        backward_done.push(t);
        per_worker.push(entries);
    }

    // 2. Synchronizations on the shared link under `policy`, gated on the
    //    fleet-wide dW barriers. The wire is a single fleet resource, so
    //    every worker sees the same link lane.
    let mut sync_finish: Vec<SimTime> = vec![0; l + 1];
    let mut link_entries: Vec<TimedOp> = Vec::with_capacity(l);
    for (pick, start, end) in plan_sync_service(&dw_finish, policy, |i| {
        cost.duration(Op::SyncWeightGrad(LayerId(i)))
    }) {
        link_entries.push(TimedOp {
            op: Op::SyncWeightGrad(LayerId(pick)),
            resource: LINK,
            start,
            end: end + tail_ns,
        });
        sync_finish[pick] = end + tail_ns;
    }

    // 3. Update + forward tail per worker, scaled, gated on the shared
    //    synchronization finishes — the same construction as the
    //    homogeneous path.
    let mut workers = Vec::with_capacity(speeds.len());
    for (w, &s) in speeds.iter().enumerate() {
        let mut entries = std::mem::take(&mut per_worker[w]);
        entries.extend(link_entries.iter().copied());
        let mut t = backward_done[w];
        #[allow(clippy::needless_range_loop)] // i is the 1-based layer index
        for i in 1..=l {
            let u = Op::Update(LayerId(i));
            let start = t.max(sync_finish[i]);
            let end = start + s.scale(cost.duration(u));
            if graph.contains(u) {
                entries.push(TimedOp {
                    op: u,
                    resource: COMPUTE,
                    start,
                    end,
                });
            }
            t = end;
            let f = Op::Forward(LayerId(i));
            let fe = t + s.scale(cost.duration(f));
            entries.push(TimedOp {
                op: f,
                resource: COMPUTE,
                start: t,
                end: fe,
            });
            t = fe;
        }
        entries.sort_by_key(|e| (e.start, e.resource.0 as u64, e.end));
        workers.push(Timeline { entries });
    }
    Ok(HeteroOutcome {
        workers,
        sync_finish,
    })
}

/// Convenience: iteration makespan of reverse first-k scheduling under
/// `policy`.
///
/// # Errors
///
/// Propagates errors from schedule construction and simulation.
pub fn reverse_k_makespan<C: CostModel>(
    graph: &TrainGraph,
    k: usize,
    cost: &C,
    policy: CommPolicy,
) -> Result<SimTime> {
    let order = crate::reverse_k::reverse_first_k(graph, k, None::<(u64, &C)>)?;
    Ok(simulate_data_parallel(graph, &order, cost, policy)?.makespan())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{LayerCost, TableCost};
    use crate::reverse_k::{reverse_first_k, search_optimal_k};

    fn cost(l: usize, sync: SimTime) -> TableCost {
        TableCost::uniform(
            l,
            LayerCost {
                forward: 1,
                output_grad: 1,
                weight_grad: 1,
                sync_weight: sync,
                ..LayerCost::default()
            },
        )
    }

    #[test]
    fn zero_sync_cost_gives_pure_compute_makespan() {
        let g = TrainGraph::data_parallel(5);
        let c = cost(5, 0);
        let m = reverse_k_makespan(&g, 0, &c, CommPolicy::FifoCompletion).unwrap();
        // 4 dO + 5 dW + 5 F = 14 units.
        assert_eq!(m, 14);
    }

    #[test]
    fn priority_no_worse_than_fifo() {
        for l in [5usize, 10, 20] {
            for sync in [1u64, 2, 3, 5] {
                let g = TrainGraph::data_parallel(l);
                let c = cost(l, sync);
                let fifo = reverse_k_makespan(&g, 0, &c, CommPolicy::FifoCompletion).unwrap();
                let prio = reverse_k_makespan(&g, 0, &c, CommPolicy::PriorityByLayer).unwrap();
                assert!(prio <= fifo, "l={l} sync={sync}: {prio} > {fifo}");
            }
        }
    }

    #[test]
    fn reverse_k_beats_plain_priority_when_sync_dominates() {
        // The regime of the paper's Section 8.3 discussion: the first
        // layer's synchronization is large relative to the backward pass
        // (350 ms vs 380 ms for ResNet-50 on 16 GPUs). Hoisting the first
        // layers' dW lets that critical synchronization start much
        // earlier.
        let g = TrainGraph::data_parallel(20);
        let mut c = cost(20, 1);
        c.layer_mut(LayerId(1)).sync_weight = 20;
        let base = reverse_k_makespan(&g, 0, &c, CommPolicy::PriorityByLayer).unwrap();
        let best = (0..=20)
            .map(|k| reverse_k_makespan(&g, k, &c, CommPolicy::PriorityByLayer).unwrap())
            .min()
            .unwrap();
        assert!(best < base, "best {best} vs base {base}");
    }

    #[test]
    fn search_optimal_k_improves_throughput() {
        let g = TrainGraph::data_parallel(30);
        let c = cost(30, 2);
        let tp = |k: usize| {
            let m = reverse_k_makespan(&g, k, &c, CommPolicy::PriorityByLayer).unwrap();
            1.0 / m as f64
        };
        let k = search_optimal_k(30, tp);
        let m_best = reverse_k_makespan(&g, k, &c, CommPolicy::PriorityByLayer).unwrap();
        let m_zero = reverse_k_makespan(&g, 0, &c, CommPolicy::PriorityByLayer).unwrap();
        assert!(m_best <= m_zero);
    }

    #[test]
    fn all_ops_appear_once() {
        let g = TrainGraph::data_parallel(7);
        let c = cost(7, 2);
        let order = reverse_first_k(&g, 3, None::<(u64, &TableCost)>).unwrap();
        let t = simulate_data_parallel(&g, &order, &c, CommPolicy::PriorityByLayer).unwrap();
        assert_eq!(t.entries.len(), g.len());
        let mut ops: Vec<Op> = t.entries.iter().map(|e| e.op).collect();
        ops.sort();
        ops.dedup();
        assert_eq!(ops.len(), g.len());
    }

    #[test]
    fn link_never_overlaps_itself() {
        let g = TrainGraph::data_parallel(9);
        let c = cost(9, 4);
        let order = reverse_first_k(&g, 4, None::<(u64, &TableCost)>).unwrap();
        let t = simulate_data_parallel(&g, &order, &c, CommPolicy::PriorityByLayer).unwrap();
        let mut lanes: Vec<&TimedOp> = t.entries.iter().filter(|e| e.resource == LINK).collect();
        lanes.sort_by_key(|e| e.start);
        for w in lanes.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn forward_gated_by_sync() {
        let g = TrainGraph::data_parallel(3);
        let mut c = cost(3, 10);
        c.layer_mut(LayerId(1)).sync_weight = 50;
        let order = reverse_first_k(&g, 0, None::<(u64, &TableCost)>).unwrap();
        let t = simulate_data_parallel(&g, &order, &c, CommPolicy::PriorityByLayer).unwrap();
        let s1 = t.finish_of(Op::SyncWeightGrad(LayerId(1))).unwrap();
        let f1 = t.start_of(Op::Forward(LayerId(1))).unwrap();
        assert!(f1 >= s1);
    }
}
