//! Content hashing for canonical graph/request fingerprints.
//!
//! The serving layer keys its schedule cache by the *content* of a
//! request, not by who sent it, so two clients asking for the same
//! tuning job share one computation. This module provides the stable
//! 64-bit FNV-1a hash used for those keys and a canonical fingerprint
//! for [`GraphConfig`]. FNV-1a is not cryptographic — callers that key
//! maps by the hash must keep the full canonical string alongside it
//! and compare on collision.

use crate::graph::GraphConfig;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a hasher.
///
/// Deterministic across runs and platforms (unlike `DefaultHasher`,
/// which is randomly seeded), so hashes may appear in committed
/// artifacts and byte-identical response streams.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `bytes` into the running hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Hashes a byte string in one call.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Canonical textual form of a graph configuration.
///
/// Every field is spelled out in a fixed order, so the encoding is
/// injective over [`GraphConfig`] and stable across releases as long as
/// the struct is; new fields must be appended here when added.
pub fn canonical_graph_key(config: &GraphConfig) -> String {
    format!(
        "graph:v1:layers={};swg={};sog={};upd={};fwd={};dO1={}",
        config.layers,
        u8::from(config.sync_weight_grads),
        u8::from(config.sync_output_grads),
        u8::from(config.include_updates),
        u8::from(config.include_forward),
        u8::from(config.compute_first_output_grad),
    )
}

/// FNV-1a fingerprint of [`canonical_graph_key`].
pub fn graph_fingerprint(config: &GraphConfig) -> u64 {
    fnv64(canonical_graph_key(config).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn graph_fingerprint_separates_configs() {
        let a = GraphConfig::single_gpu(8);
        let mut b = GraphConfig::single_gpu(8);
        b.sync_weight_grads = true;
        let mut c = GraphConfig::single_gpu(8);
        c.layers = 9;
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&b));
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&c));
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&a.clone()));
    }
}
