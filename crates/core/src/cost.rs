//! Cost models: execution times and memory footprints per operation.
//!
//! The scheduling algorithms are generic over a [`CostModel`]. The paper's
//! unit-time figures (Figures 4, 5, 6, 12) use [`UnitCost`]; the
//! throughput experiments use per-layer profiles built by the
//! `ooo-models` crate ([`LayerCost`] tables).

use crate::op::{LayerId, Op};
use crate::SimTime;

/// Execution time and memory footprint provider for the operations of one
/// training iteration.
pub trait CostModel {
    /// Execution time of `op` in nanoseconds. Synchronization ops return
    /// their communication time.
    fn duration(&self, op: Op) -> SimTime;

    /// Bytes of the activation (layer input) that must stay resident until
    /// `dW_i` has executed.
    fn activation_bytes(&self, layer: LayerId) -> u64;

    /// Bytes of the output gradient produced by `dO_{i+1}` and consumed by
    /// layer `i`'s gradient computations.
    fn out_grad_bytes(&self, layer: LayerId) -> u64;

    /// Bytes of layer `i`'s weights (also the size of `dW_i`'s result and
    /// of its parameter synchronization message).
    fn weight_bytes(&self, layer: LayerId) -> u64;
}

/// Unit cost: every compute op takes one time unit, synchronizations are
/// free, updates are free, and all buffers have unit size.
///
/// This is the model behind the paper's schedule illustrations; e.g. with
/// [`UnitCost`] the Figure 5 makespans come out to exactly 23 / 19 / 16
/// time units.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitCost;

impl CostModel for UnitCost {
    fn duration(&self, op: Op) -> SimTime {
        match op {
            Op::Forward(_) | Op::OutputGrad(_) | Op::WeightGrad(_) => 1,
            // The loss gradient, updates, and synchronizations are drawn
            // with zero width in the paper's unit-time figures.
            Op::Loss | Op::Update(_) | Op::SyncWeightGrad(_) | Op::SyncOutputGrad(_) => 0,
        }
    }

    fn activation_bytes(&self, _layer: LayerId) -> u64 {
        1
    }

    fn out_grad_bytes(&self, _layer: LayerId) -> u64 {
        1
    }

    fn weight_bytes(&self, _layer: LayerId) -> u64 {
        1
    }
}

/// Per-layer cost entry of a [`TableCost`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCost {
    /// Forward computation time (ns).
    pub forward: SimTime,
    /// Output-gradient computation time (ns).
    pub output_grad: SimTime,
    /// Weight-gradient computation time (ns).
    pub weight_grad: SimTime,
    /// Weight-update time (ns).
    pub update: SimTime,
    /// Parameter synchronization time `S[dW_i]` (ns).
    pub sync_weight: SimTime,
    /// Activation-gradient transfer time `S[dO_i]` (ns).
    pub sync_output: SimTime,
    /// Resident activation bytes (layer input).
    pub activation_bytes: u64,
    /// Output-gradient buffer bytes.
    pub out_grad_bytes: u64,
    /// Weight/weight-gradient bytes.
    pub weight_bytes: u64,
}

impl Default for LayerCost {
    fn default() -> Self {
        LayerCost {
            forward: 1,
            output_grad: 1,
            weight_grad: 1,
            update: 0,
            sync_weight: 0,
            sync_output: 0,
            activation_bytes: 1,
            out_grad_bytes: 1,
            weight_bytes: 1,
        }
    }
}

/// A table-driven cost model with one [`LayerCost`] per layer (1-based,
/// like [`LayerId`]).
#[derive(Debug, Clone, Default)]
pub struct TableCost {
    layers: Vec<LayerCost>,
    /// Loss computation time (ns).
    pub loss: SimTime,
}

impl TableCost {
    /// Builds a table from per-layer costs (index 0 is layer 1).
    pub fn new(layers: Vec<LayerCost>) -> Self {
        TableCost { layers, loss: 0 }
    }

    /// A uniform table: `layers` identical entries.
    pub fn uniform(layers: usize, cost: LayerCost) -> Self {
        TableCost::new(vec![cost; layers])
    }

    /// Number of layers covered.
    pub fn layers(&self) -> usize {
        self.layers.len()
    }

    /// The cost entry for `layer`.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is out of range; the schedulers only query
    /// layers of the graph they were given.
    pub fn layer(&self, layer: LayerId) -> &LayerCost {
        &self.layers[layer.0 - 1]
    }

    /// Mutable access to the cost entry for `layer`.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is out of range.
    pub fn layer_mut(&mut self, layer: LayerId) -> &mut LayerCost {
        &mut self.layers[layer.0 - 1]
    }

    /// Total backward compute time (`dO` + `dW` over all layers), a useful
    /// normalization constant.
    pub fn total_backward(&self) -> SimTime {
        self.layers
            .iter()
            .map(|c| c.output_grad + c.weight_grad)
            .sum()
    }

    /// Total forward compute time.
    pub fn total_forward(&self) -> SimTime {
        self.layers.iter().map(|c| c.forward).sum()
    }
}

impl CostModel for TableCost {
    fn duration(&self, op: Op) -> SimTime {
        match op {
            Op::Loss => self.loss,
            Op::Forward(l) => self.layer(l).forward,
            Op::OutputGrad(l) => self.layer(l).output_grad,
            Op::WeightGrad(l) => self.layer(l).weight_grad,
            Op::Update(l) => self.layer(l).update,
            Op::SyncWeightGrad(l) => self.layer(l).sync_weight,
            Op::SyncOutputGrad(l) => self.layer(l).sync_output,
        }
    }

    fn activation_bytes(&self, layer: LayerId) -> u64 {
        self.layer(layer).activation_bytes
    }

    fn out_grad_bytes(&self, layer: LayerId) -> u64 {
        self.layer(layer).out_grad_bytes
    }

    fn weight_bytes(&self, layer: LayerId) -> u64 {
        self.layer(layer).weight_bytes
    }
}

impl<C: CostModel + ?Sized> CostModel for &C {
    fn duration(&self, op: Op) -> SimTime {
        (**self).duration(op)
    }

    fn activation_bytes(&self, layer: LayerId) -> u64 {
        (**self).activation_bytes(layer)
    }

    fn out_grad_bytes(&self, layer: LayerId) -> u64 {
        (**self).out_grad_bytes(layer)
    }

    fn weight_bytes(&self, layer: LayerId) -> u64 {
        (**self).weight_bytes(layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_cost_durations() {
        let c = UnitCost;
        assert_eq!(c.duration(Op::Forward(LayerId(1))), 1);
        assert_eq!(c.duration(Op::OutputGrad(LayerId(1))), 1);
        assert_eq!(c.duration(Op::WeightGrad(LayerId(1))), 1);
        assert_eq!(c.duration(Op::Loss), 0);
        assert_eq!(c.duration(Op::SyncWeightGrad(LayerId(1))), 0);
    }

    #[test]
    fn table_cost_roundtrip() {
        let mut t = TableCost::uniform(3, LayerCost::default());
        t.layer_mut(LayerId(2)).weight_grad = 7;
        t.layer_mut(LayerId(2)).sync_weight = 11;
        assert_eq!(t.duration(Op::WeightGrad(LayerId(2))), 7);
        assert_eq!(t.duration(Op::SyncWeightGrad(LayerId(2))), 11);
        assert_eq!(t.duration(Op::WeightGrad(LayerId(1))), 1);
        assert_eq!(t.layers(), 3);
    }

    #[test]
    fn totals() {
        let t = TableCost::uniform(
            4,
            LayerCost {
                forward: 2,
                output_grad: 3,
                weight_grad: 5,
                ..LayerCost::default()
            },
        );
        assert_eq!(t.total_forward(), 8);
        assert_eq!(t.total_backward(), 32);
    }
}
