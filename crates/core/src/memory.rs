//! Memory accounting for backward-pass schedules.
//!
//! Reordering weight-gradient computations changes buffer lifetimes:
//! delaying `dW_i` keeps layer `i`'s activation *and* output gradient
//! resident longer. The paper's algorithms take a peak-memory budget and
//! fall back to less aggressive reordering when the budget would be
//! exceeded (Algorithm 1's region pre-scheduling, Algorithm 2's `max_k`
//! clamp). This module implements the buffer-lifetime model they use:
//!
//! - activation `a_i` (layer `i`'s input) is resident from the forward
//!   pass until both of its consumers `dO_i` and `dW_i` have run;
//! - output gradient `g_i` (gradient w.r.t. layer `i`'s output) is
//!   allocated by its producer (`dO_{i+1}`, or the loss for `i = L`) and
//!   freed when both `dO_i` and `dW_i` have run;
//! - the weight-gradient result of `dW_i` is freed by `U_i` (or, in
//!   data-parallel training, after `S[dW_i]` and `U_i`).

use crate::cost::CostModel;
use crate::error::{Error, Result};
use crate::graph::TrainGraph;
use crate::op::{LayerId, Op};
use std::collections::HashMap;

/// Memory usage over the course of an execution order.
#[derive(Debug, Clone, Default)]
pub struct MemoryProfile {
    /// Usage (bytes) *after* each operation of the order executed.
    pub samples: Vec<(Op, u64)>,
    /// Usage at the start of the backward pass (all activations resident).
    pub initial: u64,
    /// Peak usage over the whole order.
    pub peak: u64,
    /// First-occurrence usage per op, for O(1) [`Self::after`] lookups.
    index: HashMap<Op, u64>,
}

impl MemoryProfile {
    /// Usage right after `op` executed, if it is part of the profile.
    pub fn after(&self, op: Op) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        if self.index.is_empty() {
            // Hand-built profile (no index): fall back to the scan.
            return self.samples.iter().find(|(o, _)| *o == op).map(|&(_, m)| m);
        }
        self.index.get(&op).copied()
    }

    /// Usage samples taken after each output-gradient computation, in
    /// execution order — the alignment used by the paper's Figure 9.
    pub fn at_output_grads(&self) -> Vec<(LayerId, u64)> {
        self.samples
            .iter()
            .filter_map(|&(op, m)| match op {
                Op::OutputGrad(l) => Some((l, m)),
                _ => None,
            })
            .collect()
    }
}

/// Total activation bytes resident at the start of the backward pass
/// (the paper's `M_fwd`).
pub fn forward_resident<C: CostModel>(graph: &TrainGraph, cost: &C) -> u64 {
    (1..=graph.layers())
        .map(|i| cost.activation_bytes(LayerId(i)))
        .sum()
}

/// A temporary buffer tracked by the lifetime model.
///
/// The layer index is 1-based, matching [`LayerId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Buffer {
    /// Layer `i`'s input activation `a_i` (stashed by the forward pass).
    Activation(usize),
    /// The gradient `g_i` w.r.t. layer `i`'s output.
    OutGrad(usize),
    /// The weight-gradient result of `dW_i`, held until the update.
    WeightGrad(usize),
}

/// Bytes occupied by `buf` under `cost`.
pub fn buffer_bytes<C: CostModel>(cost: &C, buf: Buffer) -> u64 {
    match buf {
        Buffer::Activation(i) => cost.activation_bytes(LayerId(i)),
        Buffer::OutGrad(i) => cost.out_grad_bytes(LayerId(i)),
        Buffer::WeightGrad(i) => cost.weight_bytes(LayerId(i)),
    }
}

/// Buffers newly defined when `op` starts executing.
///
/// This is the per-op "bytes defined" declaration used by the static
/// memory ledger: the loss defines `g_L`, `dO_i` defines `g_{i-1}`, and
/// `dW_i` defines its weight-gradient buffer. Updates, synchronizations,
/// and forwards define nothing — they only keep buffers alive (see
/// [`buffer_consumers`]); a forward's output is the *next* window's
/// activation stash, counted as that window's initial residency.
pub fn op_allocations(graph: &TrainGraph, op: Op) -> Vec<Buffer> {
    match op {
        Op::Loss => vec![Buffer::OutGrad(graph.layers())],
        Op::OutputGrad(LayerId(i)) if i > 1 => vec![Buffer::OutGrad(i - 1)],
        Op::WeightGrad(LayerId(i)) => vec![Buffer::WeightGrad(i)],
        _ => Vec::new(),
    }
}

/// The graph consumers that must all run before `buf` can be freed.
///
/// Only consumers present in the graph count (layer 1 may have no
/// `dO`; single-GPU graphs have no syncs). Weight-gradient buffers are
/// kept alive by the data-parallel `S[dW_i]` *and* the update `U_i`.
pub fn buffer_consumers(graph: &TrainGraph, buf: Buffer) -> Vec<Op> {
    let candidates: [Op; 2] = match buf {
        Buffer::Activation(i) | Buffer::OutGrad(i) => {
            [Op::OutputGrad(LayerId(i)), Op::WeightGrad(LayerId(i))]
        }
        Buffer::WeightGrad(i) => [Op::SyncWeightGrad(LayerId(i)), Op::Update(LayerId(i))],
    };
    candidates
        .into_iter()
        .filter(|&op| graph.contains(op))
        .collect()
}

/// Total bytes `op` defines when it starts, per [`op_allocations`].
pub fn op_defined_bytes<C: CostModel>(graph: &TrainGraph, cost: &C, op: Op) -> u64 {
    op_allocations(graph, op)
        .into_iter()
        .map(|b| buffer_bytes(cost, b))
        .sum()
}

/// Computes the memory profile of a (possibly partial) execution order.
///
/// The order is treated sequentially: each operation allocates its output
/// buffer before running and consumer-complete buffers are freed after it
/// runs. For multi-lane schedules pass the time-sorted op sequence of the
/// simulated [`crate::list_scheduling::Timeline`]; sequential accounting
/// over the time order is exact because allocations happen at op start and
/// frees at op end.
///
/// # Errors
///
/// Returns [`Error::UnknownOp`] when the order references an operation
/// outside the graph.
pub fn memory_profile<C: CostModel>(
    graph: &TrainGraph,
    order: &[Op],
    cost: &C,
) -> Result<MemoryProfile> {
    let l = graph.layers();
    for &op in order {
        if !graph.contains(op) {
            return Err(Error::UnknownOp(op));
        }
    }

    // Remaining consumer counts per buffer. Only consumers present in the
    // graph count (layer 1 may have no dO).
    let mut remaining: HashMap<Buffer, usize> = HashMap::new();
    let mut size: HashMap<Buffer, u64> = HashMap::new();
    let consumers_of_layer = |i: usize| -> usize {
        let mut c = 1; // dW_i always exists.
        if graph.contains(Op::OutputGrad(LayerId(i))) {
            c += 1;
        }
        c
    };
    for i in 1..=l {
        size.insert(Buffer::Activation(i), cost.activation_bytes(LayerId(i)));
        size.insert(Buffer::OutGrad(i), cost.out_grad_bytes(LayerId(i)));
        size.insert(Buffer::WeightGrad(i), cost.weight_bytes(LayerId(i)));
    }

    let mut usage: u64 = 0;
    // All activations are resident when the backward pass starts.
    for i in 1..=l {
        remaining.insert(Buffer::Activation(i), consumers_of_layer(i));
        usage += size[&Buffer::Activation(i)];
    }
    let initial = usage;
    let mut peak = usage;
    let mut samples = Vec::with_capacity(order.len());
    let mut index: HashMap<Op, u64> = HashMap::with_capacity(order.len());

    // Multi-lane merged orders may place a consumer slightly before its
    // producer (the merge is an approximation of concurrent execution);
    // early consumptions are recorded and settled at allocation time so
    // the profile stays balanced.
    let mut consumed_early: HashMap<Buffer, usize> = HashMap::new();
    let alloc = |buf: Buffer,
                 usage: &mut u64,
                 peak: &mut u64,
                 n_consumers: usize,
                 remaining: &mut HashMap<Buffer, usize>,
                 consumed_early: &mut HashMap<Buffer, usize>,
                 size: &HashMap<Buffer, u64>| {
        let early = consumed_early.remove(&buf).unwrap_or(0);
        if early >= n_consumers {
            // Every consumer already ran; the buffer is transient.
            return;
        }
        remaining.insert(buf, n_consumers - early);
        *usage += size[&buf];
        *peak = (*peak).max(*usage);
    };
    let consume = |buf: Buffer,
                   usage: &mut u64,
                   remaining: &mut HashMap<Buffer, usize>,
                   consumed_early: &mut HashMap<Buffer, usize>,
                   size: &HashMap<Buffer, u64>| {
        if let Some(c) = remaining.get_mut(&buf) {
            *c -= 1;
            if *c == 0 {
                remaining.remove(&buf);
                *usage -= size[&buf];
            }
        } else {
            *consumed_early.entry(buf).or_insert(0) += 1;
        }
    };

    for &op in order {
        match op {
            Op::Loss => {
                alloc(
                    Buffer::OutGrad(l),
                    &mut usage,
                    &mut peak,
                    consumers_of_layer(l),
                    &mut remaining,
                    &mut consumed_early,
                    &size,
                );
            }
            Op::OutputGrad(LayerId(i)) => {
                if i > 1 {
                    alloc(
                        Buffer::OutGrad(i - 1),
                        &mut usage,
                        &mut peak,
                        consumers_of_layer(i - 1),
                        &mut remaining,
                        &mut consumed_early,
                        &size,
                    );
                }
                consume(
                    Buffer::OutGrad(i),
                    &mut usage,
                    &mut remaining,
                    &mut consumed_early,
                    &size,
                );
                consume(
                    Buffer::Activation(i),
                    &mut usage,
                    &mut remaining,
                    &mut consumed_early,
                    &size,
                );
            }
            Op::WeightGrad(LayerId(i)) => {
                alloc(
                    Buffer::WeightGrad(i),
                    &mut usage,
                    &mut peak,
                    1,
                    &mut remaining,
                    &mut consumed_early,
                    &size,
                );
                consume(
                    Buffer::OutGrad(i),
                    &mut usage,
                    &mut remaining,
                    &mut consumed_early,
                    &size,
                );
                consume(
                    Buffer::Activation(i),
                    &mut usage,
                    &mut remaining,
                    &mut consumed_early,
                    &size,
                );
            }
            Op::Update(LayerId(i)) => {
                consume(
                    Buffer::WeightGrad(i),
                    &mut usage,
                    &mut remaining,
                    &mut consumed_early,
                    &size,
                );
            }
            // Synchronizations and forwards neither allocate nor free in
            // this model (forward activations of the *next* iteration are
            // the next iteration's M_fwd).
            Op::SyncWeightGrad(_) | Op::SyncOutputGrad(_) | Op::Forward(_) => {}
        }
        samples.push((op, usage));
        index.entry(op).or_insert(usage);
    }

    Ok(MemoryProfile {
        samples,
        initial,
        peak,
        index,
    })
}

/// The paper's Algorithm 2, line 1: peak memory estimate of reverse
/// first-`j` scheduling, `M_fwd - Σ_{i=j+1..L} M(dO_i) + Σ_{i=1..j} M(dW_i)`.
///
/// With all weight gradients of the first `j` layers delayed to the end of
/// the backward pass, the activations of layers `j+1..L` have been freed
/// (their `dO` and `dW` both ran) while the first `j` activations and the
/// accumulated weight-gradient buffers are still resident.
pub fn reverse_k_peak_estimate<C: CostModel>(graph: &TrainGraph, j: usize, cost: &C) -> u64 {
    let l = graph.layers();
    let m_fwd = forward_resident(graph, cost);
    let freed: u64 = (j + 1..=l).map(|i| cost.activation_bytes(LayerId(i))).sum();
    let added: u64 = (1..=j).map(|i| cost.weight_bytes(LayerId(i))).sum();
    m_fwd - freed + added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{LayerCost, TableCost, UnitCost};

    #[test]
    fn conventional_backprop_frees_monotonically() {
        let g = TrainGraph::single_gpu(6);
        let p = memory_profile(&g, &g.conventional_backprop(), &UnitCost).unwrap();
        // After the full iteration every temporary is freed.
        assert_eq!(p.samples.last().unwrap().1, 0);
        assert_eq!(p.initial, 6);
        // Peak is initial plus at most two live output gradients and one
        // weight-gradient buffer (the per-layer transient working set).
        assert!(
            p.peak <= p.initial + 3,
            "peak {} initial {}",
            p.peak,
            p.initial
        );
    }

    #[test]
    fn delayed_weight_grads_raise_memory() {
        let g = TrainGraph::single_gpu(6);
        let conv = memory_profile(&g, &g.conventional_backprop(), &UnitCost).unwrap();
        let ooo = memory_profile(&g, &g.fast_forward_backprop(), &UnitCost).unwrap();
        assert!(ooo.peak >= conv.peak);
        // And still everything is freed at the end.
        assert_eq!(ooo.samples.last().unwrap().1, 0);
    }

    #[test]
    fn reverse_k_estimate_matches_formula() {
        let mut cost = TableCost::uniform(5, LayerCost::default());
        cost.layer_mut(LayerId(1)).activation_bytes = 10;
        cost.layer_mut(LayerId(5)).weight_bytes = 3;
        let g = TrainGraph::single_gpu(5);
        // j = 2: M_fwd = 10+1+1+1+1 = 14, freed = act(3..=5) = 3,
        // added = w(1..=2) = 2.
        assert_eq!(reverse_k_peak_estimate(&g, 2, &cost), 14 - 3 + 2);
    }

    #[test]
    fn profile_alignment_by_output_grads() {
        let g = TrainGraph::single_gpu(4);
        let p = memory_profile(&g, &g.conventional_backprop(), &UnitCost).unwrap();
        let at = p.at_output_grads();
        assert_eq!(at.len(), 3); // dO_4, dO_3, dO_2 (dO_1 skipped).
        assert_eq!(at[0].0, LayerId(4));
    }

    #[test]
    fn unknown_op_rejected() {
        let g = TrainGraph::single_gpu(2);
        let r = memory_profile(&g, &[Op::Forward(LayerId(7))], &UnitCost);
        assert!(matches!(r, Err(Error::UnknownOp(_))));
    }

    #[test]
    fn forward_resident_sums_activations() {
        let mut cost = TableCost::uniform(3, LayerCost::default());
        cost.layer_mut(LayerId(2)).activation_bytes = 100;
        let g = TrainGraph::single_gpu(3);
        assert_eq!(forward_resident(&g, &cost), 102);
    }

    #[test]
    fn after_lookup_matches_linear_scan_on_10k_ops() {
        // Regression: `after` used to scan `samples` linearly, which made
        // per-op queries over large profiles quadratic. Profile a >10k-op
        // order and query every op; the indexed lookup must agree with a
        // fresh scan at every position.
        let layers = 3400;
        let g = TrainGraph::single_gpu(layers);
        let order = g.conventional_backprop();
        assert!(order.len() >= 10_000, "order has {} ops", order.len());
        let p = memory_profile(&g, &order, &UnitCost).unwrap();
        for &(op, usage) in &p.samples {
            assert_eq!(p.after(op), Some(usage));
        }
        assert_eq!(p.after(Op::Forward(LayerId(layers + 1))), None);
    }

    #[test]
    fn op_allocations_declare_defined_buffers() {
        let g = TrainGraph::single_gpu(4);
        assert_eq!(op_allocations(&g, Op::Loss), vec![Buffer::OutGrad(4)]);
        assert_eq!(
            op_allocations(&g, Op::OutputGrad(LayerId(3))),
            vec![Buffer::OutGrad(2)]
        );
        assert_eq!(op_allocations(&g, Op::OutputGrad(LayerId(1))), vec![]);
        assert_eq!(
            op_allocations(&g, Op::WeightGrad(LayerId(2))),
            vec![Buffer::WeightGrad(2)]
        );
        assert_eq!(op_allocations(&g, Op::Forward(LayerId(2))), vec![]);
        assert_eq!(op_allocations(&g, Op::Update(LayerId(2))), vec![]);
    }

    #[test]
    fn buffer_consumers_respect_graph_membership() {
        let g = TrainGraph::single_gpu(3);
        // Layer 1 has no dO, so only dW keeps its activation alive.
        assert_eq!(
            buffer_consumers(&g, Buffer::Activation(1)),
            vec![Op::WeightGrad(LayerId(1))]
        );
        assert_eq!(
            buffer_consumers(&g, Buffer::Activation(2)),
            vec![Op::OutputGrad(LayerId(2)), Op::WeightGrad(LayerId(2))]
        );
        // Single-GPU graphs have no S[dW]; the update is the only keeper.
        assert_eq!(
            buffer_consumers(&g, Buffer::WeightGrad(2)),
            vec![Op::Update(LayerId(2))]
        );
    }

    #[test]
    fn defined_bytes_follow_the_cost_model() {
        let mut cost = TableCost::uniform(3, LayerCost::default());
        cost.layer_mut(LayerId(2)).out_grad_bytes = 7;
        cost.layer_mut(LayerId(3)).weight_bytes = 9;
        let g = TrainGraph::single_gpu(3);
        assert_eq!(op_defined_bytes(&g, &cost, Op::OutputGrad(LayerId(3))), 7);
        assert_eq!(op_defined_bytes(&g, &cost, Op::WeightGrad(LayerId(3))), 9);
        assert_eq!(op_defined_bytes(&g, &cost, Op::Update(LayerId(3))), 0);
    }
}
