//! List scheduling and deterministic schedule simulation.
//!
//! The paper reduces all three training modes to one job-shop-style
//! optimization problem (Section 2) and solves it with variants of list
//! scheduling. This module provides the two generic building blocks:
//!
//! - [`simulate`] — given a fixed multi-lane [`Schedule`], derive exact
//!   start/finish times (lanes execute in issue order; an op starts when
//!   its lane is free and all dependencies have finished) and the
//!   resulting makespan.
//! - [`list_schedule`] — the classic greedy list scheduler: repeatedly
//!   dispatch the highest-priority ready operation to the compatible lane
//!   on which it finishes earliest.

use crate::cost::CostModel;
use crate::error::{Error, Result};
use crate::graph::TrainGraph;
use crate::op::Op;
use crate::schedule::{ResourceId, Schedule};
use crate::SimTime;
use std::collections::HashMap;

/// One executed operation with its simulated interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOp {
    /// The operation.
    pub op: Op,
    /// Lane it executed on.
    pub resource: ResourceId,
    /// Start time (ns).
    pub start: SimTime,
    /// Finish time (ns).
    pub end: SimTime,
}

/// The result of simulating a schedule: every operation with exact times.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Executed operations, sorted by `(start, resource)`.
    pub entries: Vec<TimedOp>,
}

impl Timeline {
    /// The makespan: latest finish time across all operations.
    pub fn makespan(&self) -> SimTime {
        self.entries.iter().map(|e| e.end).max().unwrap_or(0)
    }

    /// Finish time of `op`, if it was executed.
    pub fn finish_of(&self, op: Op) -> Option<SimTime> {
        self.entries.iter().find(|e| e.op == op).map(|e| e.end)
    }

    /// Start time of `op`, if it was executed.
    pub fn start_of(&self, op: Op) -> Option<SimTime> {
        self.entries.iter().find(|e| e.op == op).map(|e| e.start)
    }

    /// Total busy time of `resource`.
    pub fn busy_time(&self, resource: ResourceId) -> SimTime {
        self.entries
            .iter()
            .filter(|e| e.resource == resource)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// Busy time of `resource` divided by the makespan, in `[0, 1]`.
    pub fn utilization(&self, resource: ResourceId) -> f64 {
        let m = self.makespan();
        if m == 0 {
            return 0.0;
        }
        self.busy_time(resource) as f64 / m as f64
    }

    /// Renders a unit-time ASCII Gantt chart, one row per lane, matching
    /// the style of the paper's Figures 5/6/12. Cells show the layer index
    /// of the op occupying the slot (`.` = idle). Only meaningful for
    /// small unit-cost schedules.
    pub fn render_ascii(&self, lane_names: &[&str]) -> String {
        let makespan = self.makespan();
        let mut rows = vec![vec![String::from("."); makespan as usize]; lane_names.len()];
        for e in &self.entries {
            let row = e.resource.0;
            if row >= rows.len() {
                continue;
            }
            for t in e.start..e.end {
                let label = match e.op {
                    Op::Forward(l) => format!("F{}", l.0),
                    Op::OutputGrad(l) => format!("o{}", l.0),
                    Op::WeightGrad(l) => format!("w{}", l.0),
                    Op::Update(l) => format!("u{}", l.0),
                    Op::SyncWeightGrad(l) => format!("s{}", l.0),
                    Op::SyncOutputGrad(l) => format!("t{}", l.0),
                    Op::Loss => "LL".into(),
                };
                rows[row][t as usize] = label;
            }
        }
        let mut out = String::new();
        for (name, row) in lane_names.iter().zip(rows) {
            out.push_str(&format!("{name:>8} |"));
            for cell in row {
                out.push_str(&format!("{cell:>4}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Simulates a fixed multi-lane schedule under `cost`.
///
/// Each lane executes its operations strictly in issue order; an operation
/// starts at `max(lane_available, max(dep finish times))`. Ops whose
/// dependencies lie outside the schedule treat those dependencies as
/// finished at time zero (supporting partial schedules).
///
/// # Errors
///
/// Returns [`Error::DependencyViolation`] when the lanes deadlock (their
/// orders plus the dependency DAG contain a cycle) and
/// [`Error::DuplicateOp`]/[`Error::UnknownOp`] for malformed schedules.
pub fn simulate<C: CostModel>(
    graph: &TrainGraph,
    schedule: &Schedule,
    cost: &C,
) -> Result<Timeline> {
    let mut seen: HashMap<Op, ()> = HashMap::new();
    for (_, op) in schedule.iter_ops() {
        if !graph.contains(op) {
            return Err(Error::UnknownOp(op));
        }
        if seen.insert(op, ()).is_some() {
            return Err(Error::DuplicateOp(op));
        }
    }
    let scheduled: HashMap<Op, ()> = seen;

    let mut cursor: Vec<usize> = vec![0; schedule.lanes.len()];
    let mut lane_avail: Vec<SimTime> = vec![0; schedule.lanes.len()];
    let mut finish: HashMap<Op, SimTime> = HashMap::new();
    let total: usize = schedule.num_ops();
    let mut entries = Vec::with_capacity(total);

    // Commit operations one at a time in nondecreasing start order. A lane
    // head is a candidate once all its dependencies have committed; among
    // candidates the earliest-starting one is committed (ties by lane id).
    // Committing never changes another candidate's start time, so this
    // greedy loop reproduces the true parallel execution exactly.
    while entries.len() < total {
        let mut best: Option<(SimTime, usize, Op)> = None;
        for (li, lane) in schedule.lanes.iter().enumerate() {
            let Some(&op) = lane.ops.get(cursor[li]) else {
                continue;
            };
            let mut ready_at = lane_avail[li];
            let mut ok = true;
            for dep in graph.deps(op)? {
                if let Some(&f) = finish.get(&dep) {
                    ready_at = ready_at.max(f);
                } else if scheduled.contains_key(&dep) {
                    // Dependency scheduled but not yet committed: not a
                    // candidate this round.
                    ok = false;
                    break;
                }
                // Dependencies outside the schedule are assumed complete.
            }
            if ok && best.is_none_or(|(s, _, _)| ready_at < s) {
                best = Some((ready_at, li, op));
            }
        }
        let Some((start, li, op)) = best else {
            // No lane head can make progress: cross-lane cycle.
            let blocked = schedule
                .lanes
                .iter()
                .enumerate()
                .find_map(|(li, lane)| lane.ops.get(cursor[li]))
                .copied()
                .expect("uncommitted ops remain");
            let missing = graph
                .deps(blocked)?
                .into_iter()
                .find(|d| scheduled.contains_key(d) && !finish.contains_key(d))
                .unwrap_or(blocked);
            return Err(Error::DependencyViolation {
                op: blocked,
                missing_dep: missing,
            });
        };
        let end = start + cost.duration(op);
        finish.insert(op, end);
        entries.push(TimedOp {
            op,
            resource: ResourceId(li),
            start,
            end,
        });
        cursor[li] += 1;
        lane_avail[li] = end;
    }
    entries.sort_by_key(|e| (e.start, e.resource.0 as u64, e.end));
    Ok(Timeline { entries })
}

/// Describes one lane available to [`list_schedule`].
pub struct LaneSpec<'a> {
    /// Lane name (for the produced [`Schedule`]).
    pub name: &'a str,
    /// Predicate selecting which operations may run on this lane.
    pub accepts: Box<dyn Fn(Op) -> bool + 'a>,
}

impl<'a> LaneSpec<'a> {
    /// A lane accepting every compute operation.
    pub fn compute(name: &'a str) -> Self {
        LaneSpec {
            name,
            accepts: Box::new(|op| op.is_compute()),
        }
    }

    /// A lane accepting every synchronization operation.
    pub fn link(name: &'a str) -> Self {
        LaneSpec {
            name,
            accepts: Box::new(|op| op.is_sync()),
        }
    }
}

/// Greedy list scheduling: repeatedly pick the ready operation with the
/// highest `priority` (ties broken by the graph's canonical order) and
/// place it on the accepting lane where it finishes earliest.
///
/// Returns the produced schedule and its simulated timeline.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when some operation is accepted by no
/// lane.
pub fn list_schedule<C, P>(
    graph: &TrainGraph,
    cost: &C,
    lanes: &[LaneSpec<'_>],
    priority: P,
) -> Result<(Schedule, Timeline)>
where
    C: CostModel,
    P: Fn(Op) -> i64,
{
    let n = graph.len();
    let mut indeg: Vec<usize> = (0..n).map(|i| graph.dep_indices(i).len()).collect();
    let mut finish: Vec<SimTime> = vec![0; n];
    let mut lane_avail: Vec<SimTime> = vec![0; lanes.len()];
    let mut lane_ops: Vec<Vec<Op>> = vec![Vec::new(); lanes.len()];
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut done = 0usize;
    let mut entries = Vec::with_capacity(n);

    while done < n {
        if ready.is_empty() {
            return Err(Error::InvalidConfig(
                "dependency graph did not drain".into(),
            ));
        }
        // Highest priority first; canonical index breaks ties for
        // determinism.
        let (pos, &idx) = ready
            .iter()
            .enumerate()
            .max_by_key(|&(_, &i)| (priority(graph.ops()[i]), std::cmp::Reverse(i)))
            .expect("ready is non-empty");
        ready.swap_remove(pos);
        let op = graph.ops()[idx];
        let deps_done: SimTime = graph
            .dep_indices(idx)
            .iter()
            .map(|&d| finish[d])
            .max()
            .unwrap_or(0);
        let mut best: Option<(SimTime, usize)> = None;
        for (li, lane) in lanes.iter().enumerate() {
            if !(lane.accepts)(op) {
                continue;
            }
            let start = lane_avail[li].max(deps_done);
            if best.is_none_or(|(s, _)| start < s) {
                best = Some((start, li));
            }
        }
        let Some((start, li)) = best else {
            return Err(Error::InvalidConfig(format!(
                "no lane accepts operation {op}"
            )));
        };
        let end = start + cost.duration(op);
        finish[idx] = end;
        lane_avail[li] = end;
        lane_ops[li].push(op);
        entries.push(TimedOp {
            op,
            resource: ResourceId(li),
            start,
            end,
        });
        done += 1;
        for &j in graph.dependent_indices(idx) {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                ready.push(j);
            }
        }
    }

    let mut schedule = Schedule::new();
    for (spec, ops) in lanes.iter().zip(lane_ops) {
        schedule.add_lane(spec.name, ops);
    }
    entries.sort_by_key(|e| (e.start, e.resource.0 as u64, e.end));
    Ok((schedule, Timeline { entries }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{LayerCost, TableCost, UnitCost};
    use crate::op::LayerId;

    #[test]
    fn single_lane_conventional_makespan() {
        // L layers, unit cost: (L-1) dO + L dW + L F = 3L - 1 units.
        let g = TrainGraph::single_gpu(5);
        let s = Schedule::single_lane("gpu", g.conventional_backprop());
        let t = simulate(&g, &s, &UnitCost).unwrap();
        assert_eq!(t.makespan(), 14);
    }

    #[test]
    fn two_streams_overlap_weight_grads() {
        // Weight gradients on a sub-stream overlap the main stream, so the
        // makespan shrinks versus the single-lane case.
        let g = TrainGraph::single_gpu(5);
        let mut main = vec![Op::Loss];
        for i in (2..=5).rev() {
            main.push(Op::OutputGrad(LayerId(i)));
        }
        for i in 1..=5 {
            main.push(Op::Forward(LayerId(i)));
        }
        let mut sub = Vec::new();
        for i in (1..=5).rev() {
            sub.push(Op::WeightGrad(LayerId(i)));
            sub.push(Op::Update(LayerId(i)));
        }
        let mut s = Schedule::new();
        s.add_lane("main", main);
        s.add_lane("sub", sub);
        let t = simulate(&g, &s, &UnitCost).unwrap();
        assert!(t.makespan() < 14, "got {}", t.makespan());
    }

    #[test]
    fn deadlocked_lanes_are_reported() {
        let g = TrainGraph::single_gpu(2);
        let mut s = Schedule::new();
        // Two lanes whose heads wait on each other's later ops.
        s.add_lane("a", vec![Op::WeightGrad(LayerId(1)), Op::Loss]);
        s.add_lane("b", vec![Op::OutputGrad(LayerId(2))]);
        assert!(matches!(
            simulate(&g, &s, &UnitCost),
            Err(Error::DependencyViolation { .. })
        ));
    }

    #[test]
    fn partial_schedule_assumes_outside_deps_done() {
        let g = TrainGraph::single_gpu(3);
        // Only the weight gradients: their dO dependencies are not part of
        // the schedule and are assumed complete.
        let s = Schedule::single_lane("sub", g.weight_grads());
        let t = simulate(&g, &s, &UnitCost).unwrap();
        assert_eq!(t.makespan(), 3);
    }

    #[test]
    fn list_schedule_covers_all_ops() {
        let g = TrainGraph::data_parallel(6);
        let lanes = [LaneSpec::compute("gpu"), LaneSpec::link("nic")];
        let (s, t) = list_schedule(&g, &UnitCost, &lanes, |_| 0).unwrap();
        assert_eq!(s.num_ops(), g.len());
        crate::schedule::validate_schedule(&g, &s).unwrap();
        assert!(t.makespan() > 0);
    }

    #[test]
    fn list_schedule_priority_is_respected() {
        // Prioritizing dW_1's chain should finish S[dW_1] earlier than a
        // neutral priority does.
        let mut cost = TableCost::uniform(
            8,
            LayerCost {
                sync_weight: 4,
                ..LayerCost::default()
            },
        );
        cost.loss = 0;
        let g = TrainGraph::data_parallel(8);
        let lanes = || [LaneSpec::compute("gpu"), LaneSpec::link("nic")];
        let prio = |op: Op| match op {
            Op::WeightGrad(LayerId(i)) => 100 - i as i64,
            _ => 0,
        };
        let (_, t_prio) = list_schedule(&g, &cost, &lanes(), prio).unwrap();
        let (_, t_neutral) = list_schedule(&g, &cost, &lanes(), |_| 0).unwrap();
        let f_prio = t_prio.finish_of(Op::SyncWeightGrad(LayerId(1))).unwrap();
        let f_neutral = t_neutral.finish_of(Op::SyncWeightGrad(LayerId(1))).unwrap();
        assert!(f_prio <= f_neutral, "{f_prio} vs {f_neutral}");
    }

    #[test]
    fn timeline_utilization() {
        let g = TrainGraph::single_gpu(4);
        let s = Schedule::single_lane("gpu", g.conventional_backprop());
        let t = simulate(&g, &s, &UnitCost).unwrap();
        // A single lane with no gaps is fully utilized.
        assert!((t.utilization(ResourceId(0)) - 1.0).abs() < 1e-9);
        assert_eq!(t.busy_time(ResourceId(0)), t.makespan());
    }

    #[test]
    fn ascii_rendering_mentions_ops() {
        let g = TrainGraph::single_gpu(2);
        let s = Schedule::single_lane("gpu", g.conventional_backprop());
        let t = simulate(&g, &s, &UnitCost).unwrap();
        let art = t.render_ascii(&["gpu"]);
        assert!(art.contains("w1"));
        assert!(art.contains("F2"));
    }
}
