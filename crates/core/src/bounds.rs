//! Lower bounds on iteration makespan.
//!
//! The paper's Section 2 problem is NP-hard, so its schedulers are
//! heuristics; these bounds quantify how close a schedule gets. Two
//! classical bounds apply:
//!
//! - **critical path**: the longest dependency chain through the
//!   iteration (no schedule can beat the chain);
//! - **resource bound**: total work per resource class divided by the
//!   number of lanes of that class;
//! - **class load bound**: the resource bound sharpened with the
//!   earliest time any op of the class can start and the shortest
//!   dependency chain that must still run after the last one finishes —
//!   on `datapar` graphs this accounts for the transfer/compute overlap
//!   the plain work bound ignores.
//!
//! `optimality_gap` compares a simulated makespan against the largest of
//! the three.

use crate::cost::CostModel;
use crate::graph::TrainGraph;
use crate::SimTime;

/// The critical-path lower bound: the longest cost-weighted dependency
/// chain in the graph.
pub fn critical_path<C: CostModel>(graph: &TrainGraph, cost: &C) -> SimTime {
    // Upward ranks already compute exactly this; the maximum rank is the
    // critical path length.
    crate::heft::upward_ranks(graph, cost)
        .into_iter()
        .max()
        .unwrap_or(0)
}

/// The resource lower bound: total compute work divided by
/// `compute_lanes`, and total synchronization work divided by
/// `link_lanes`, whichever is larger.
pub fn resource_bound<C: CostModel>(
    graph: &TrainGraph,
    cost: &C,
    compute_lanes: usize,
    link_lanes: usize,
) -> SimTime {
    let mut compute: SimTime = 0;
    let mut sync: SimTime = 0;
    for &op in graph.ops() {
        if op.is_sync() {
            sync += cost.duration(op);
        } else {
            compute += cost.duration(op);
        }
    }
    let c = compute / compute_lanes.max(1) as SimTime;
    let s = sync / link_lanes.max(1) as SimTime;
    c.max(s)
}

/// Earliest possible start time of every op (by dense graph index)
/// ignoring resource contention: the longest cost-weighted dependency
/// chain ending at the op's start. In any schedule that executes the
/// whole graph, no op can start earlier.
pub fn earliest_starts<C: CostModel>(graph: &TrainGraph, cost: &C) -> Vec<SimTime> {
    let n = graph.len();
    let mut indeg: Vec<usize> = (0..n).map(|i| graph.dep_indices(i).len()).collect();
    let mut est: Vec<SimTime> = vec![0; n];
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    while let Some(i) = queue.pop() {
        let finish = est[i] + cost.duration(graph.ops()[i]);
        for &s in graph.dependent_indices(i) {
            est[s] = est[s].max(finish);
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push(s);
            }
        }
    }
    est
}

/// The per-class load bound with head and tail slack: for each resource
/// class (compute ops on `compute_lanes`, synchronizations on
/// `link_lanes`),
///
/// ```text
/// min est(op) + ceil(class work / class lanes) + min (rank(op) - dur(op))
/// ```
///
/// over the class's positive-duration ops. The class's work cannot begin
/// before its earliest possible start, needs at least `work / lanes` of
/// wall time on the class's lanes, and whichever class op finishes last
/// still has its remaining critical path (`rank - dur`, at least the
/// class minimum) ahead of it. Unlike [`resource_bound`] this is tight
/// on `datapar` graphs where the link lane can neither start before the
/// first `dW` lands nor finish the iteration by itself.
pub fn class_load_bound<C: CostModel>(
    graph: &TrainGraph,
    cost: &C,
    compute_lanes: usize,
    link_lanes: usize,
) -> SimTime {
    let est = earliest_starts(graph, cost);
    let ranks = crate::heft::upward_ranks(graph, cost);
    let mut best: SimTime = 0;
    for (class_is_sync, lanes) in [(false, compute_lanes), (true, link_lanes)] {
        let mut work: SimTime = 0;
        let mut head = SimTime::MAX;
        let mut tail = SimTime::MAX;
        for (i, &op) in graph.ops().iter().enumerate() {
            if op.is_sync() != class_is_sync {
                continue;
            }
            let d = cost.duration(op);
            if d == 0 {
                // Zero-duration ops add no load and would only weaken
                // the head/tail slack.
                continue;
            }
            work += d;
            head = head.min(est[i]);
            tail = tail.min(ranks[i] - d);
        }
        if work > 0 {
            best = best.max(head + work.div_ceil(lanes.max(1) as SimTime) + tail);
        }
    }
    best
}

/// The combined lower bound: the largest of the critical path, the
/// plain resource bound, and the head/tail-sharpened class load bound.
pub fn lower_bound<C: CostModel>(
    graph: &TrainGraph,
    cost: &C,
    compute_lanes: usize,
    link_lanes: usize,
) -> SimTime {
    critical_path(graph, cost)
        .max(resource_bound(graph, cost, compute_lanes, link_lanes))
        .max(class_load_bound(graph, cost, compute_lanes, link_lanes))
}

/// The combined lower bound restricted to the op subset `scheduled`:
/// every schedule that executes exactly these ops on the given lane
/// counts takes at least this long, under the partial-schedule contract
/// that dependencies outside the subset are treated as finished at
/// time 0.
///
/// This is [`lower_bound`] when `scheduled` covers the whole graph; on
/// a proper subset (e.g. the backward-plus-sync realization that
/// [`crate::datapar`] engines run) the whole-graph bound would
/// over-count work the schedule never executes and is *not* a valid
/// bound, while this one is. Ops not in the graph are ignored.
pub fn partial_lower_bound<C: CostModel>(
    graph: &TrainGraph,
    cost: &C,
    scheduled: &[crate::Op],
    compute_lanes: usize,
    link_lanes: usize,
) -> SimTime {
    let n = graph.len();
    let mut in_set = vec![false; n];
    for &op in scheduled {
        if let Some(i) = graph.op_index(op) {
            in_set[i] = true;
        }
    }
    // Canonical storage order is topological: ascending indices for the
    // forward pass, descending for the backward pass.
    let mut est: Vec<SimTime> = vec![0; n];
    for i in 0..n {
        if !in_set[i] {
            continue;
        }
        for &d in graph.dep_indices(i) {
            if in_set[d] {
                est[i] = est[i].max(est[d] + cost.duration(graph.ops()[d]));
            }
        }
    }
    let mut rank: Vec<SimTime> = vec![0; n];
    for i in (0..n).rev() {
        if !in_set[i] {
            continue;
        }
        let mut below: SimTime = 0;
        for &s in graph.dependent_indices(i) {
            if in_set[s] {
                below = below.max(rank[s]);
            }
        }
        rank[i] = cost.duration(graph.ops()[i]) + below;
    }
    let mut best: SimTime = 0;
    for i in 0..n {
        if in_set[i] {
            best = best.max(est[i] + rank[i]);
        }
    }
    for (class_is_sync, lanes) in [(false, compute_lanes), (true, link_lanes)] {
        let mut work: SimTime = 0;
        let mut head = SimTime::MAX;
        let mut tail = SimTime::MAX;
        for (i, &op) in graph.ops().iter().enumerate() {
            if !in_set[i] || op.is_sync() != class_is_sync {
                continue;
            }
            let d = cost.duration(op);
            if d == 0 {
                continue;
            }
            work += d;
            head = head.min(est[i]);
            tail = tail.min(rank[i] - d);
        }
        if work > 0 {
            best = best.max(head + work.div_ceil(lanes.max(1) as SimTime) + tail);
        }
    }
    best
}

/// Makespan divided by the lower bound (1.0 = provably optimal).
///
/// A zero lower bound (empty graph or all-zero cost model) is
/// degenerate: any schedule takes at least 0, so a zero makespan is
/// vacuously optimal (gap 1.0) while a positive makespan against a zero
/// bound has an unbounded gap (`f64::INFINITY`), never a garbage ratio
/// or a panic.
pub fn optimality_gap<C: CostModel>(
    graph: &TrainGraph,
    cost: &C,
    compute_lanes: usize,
    link_lanes: usize,
    makespan: SimTime,
) -> f64 {
    let lb = lower_bound(graph, cost, compute_lanes, link_lanes);
    if lb == 0 {
        return if makespan == 0 { 1.0 } else { f64::INFINITY };
    }
    makespan as f64 / lb as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{LayerCost, TableCost, UnitCost};
    use crate::datapar::{reverse_k_makespan, CommPolicy};
    use crate::list_scheduling::{simulate, LaneSpec};
    use crate::reverse_k::search_optimal_k;
    use crate::schedule::Schedule;

    #[test]
    fn critical_path_of_unit_chain() {
        // Single GPU, L layers, unit cost: the chain
        // loss -> dO_L..dO_2 -> dW_1 -> U_1 -> F_1..F_L
        // has (L-1) dO + 1 dW + L F = 2L units.
        let g = TrainGraph::single_gpu(6);
        assert_eq!(critical_path(&g, &UnitCost), 12);
    }

    #[test]
    fn resource_bound_counts_work() {
        let g = TrainGraph::single_gpu(5);
        // Work: 4 dO + 5 dW + 5 F = 14 units on 1 lane; 7 on 2 lanes.
        assert_eq!(resource_bound(&g, &UnitCost, 1, 1), 14);
        assert_eq!(resource_bound(&g, &UnitCost, 2, 1), 7);
    }

    #[test]
    fn single_lane_conventional_is_optimal() {
        // On one lane the conventional schedule meets the resource bound
        // exactly: the gap is 1.0.
        let g = TrainGraph::single_gpu(8);
        let s = Schedule::single_lane("gpu", g.conventional_backprop());
        let t = simulate(&g, &s, &UnitCost).unwrap();
        let gap = optimality_gap(&g, &UnitCost, 1, 1, t.makespan());
        assert!((gap - 1.0).abs() < 1e-9, "gap {gap}");
    }

    #[test]
    fn two_stream_schedule_approaches_the_bound() {
        // With dW on a sub-stream, the makespan approaches
        // max(critical path, work/2).
        let g = TrainGraph::single_gpu(10);
        let lanes = [LaneSpec::compute("main"), LaneSpec::compute("sub")];
        let (_, t) = crate::heft::heft_schedule(&g, &UnitCost, &lanes).unwrap();
        let gap = optimality_gap(&g, &UnitCost, 2, 1, t.makespan());
        assert!(gap < 1.25, "gap {gap}");
    }

    #[test]
    fn reverse_k_search_lands_near_the_bound() {
        // Data-parallel with moderate syncs: the searched k's makespan is
        // within 1.3x of the lower bound (1 compute lane + 1 link lane).
        let l = 24;
        let cost = TableCost::uniform(
            l,
            LayerCost {
                sync_weight: 1,
                ..LayerCost::default()
            },
        );
        let g = TrainGraph::data_parallel(l);
        let k = search_optimal_k(l, |k| {
            -(reverse_k_makespan(&g, k, &cost, CommPolicy::PriorityByLayer).unwrap() as f64)
        });
        let m = reverse_k_makespan(&g, k, &cost, CommPolicy::PriorityByLayer).unwrap();
        let gap = optimality_gap(&g, &cost, 1, 1, m);
        assert!(gap < 1.3, "gap {gap}");
    }

    #[test]
    fn chain_bounds_hand_computed() {
        // L=1 single-GPU: the whole graph is the chain
        // Loss(3) -> dW_1(5) -> U_1(2) -> F_1(7), total 17.
        let g = TrainGraph::single_gpu(1);
        let mut cost = TableCost::uniform(
            1,
            LayerCost {
                forward: 7,
                weight_grad: 5,
                update: 2,
                ..LayerCost::default()
            },
        );
        cost.loss = 3;
        assert_eq!(critical_path(&g, &cost), 17);
        assert_eq!(resource_bound(&g, &cost, 1, 1), 17);
        // A chain admits no parallelism: more lanes lower the resource
        // bound but the critical path keeps the combined bound at 17.
        assert_eq!(resource_bound(&g, &cost, 2, 1), 8);
        assert_eq!(lower_bound(&g, &cost, 1, 1), 17);
        assert_eq!(lower_bound(&g, &cost, 2, 1), 17);
    }

    #[test]
    fn diamond_bounds_hand_computed() {
        // L=2 single-GPU is a diamond: Loss forks into the dO_2 arm
        // (Loss -> dO_2 -> dW_1 -> U_1 -> F_1 -> F_2, cost 18) and the
        // dW_2 arm (Loss -> dW_2 -> U_2 -> F_2, cost 10), rejoining at
        // F_2.
        let g = TrainGraph::single_gpu(2);
        let mut cost = TableCost::new(vec![
            LayerCost {
                forward: 5,
                weight_grad: 4,
                update: 0,
                ..LayerCost::default()
            },
            LayerCost {
                forward: 6,
                output_grad: 2,
                weight_grad: 3,
                update: 0,
                ..LayerCost::default()
            },
        ]);
        cost.loss = 1;
        assert_eq!(critical_path(&g, &cost), 18);
        // Total work 1+2+4+5 + 3+6 = 21.
        assert_eq!(resource_bound(&g, &cost, 1, 1), 21);
        assert_eq!(resource_bound(&g, &cost, 2, 1), 10);
        assert_eq!(lower_bound(&g, &cost, 1, 1), 21);
        // Two lanes: the long diamond arm dominates the halved work.
        assert_eq!(lower_bound(&g, &cost, 2, 1), 18);
    }

    #[test]
    fn wide_fanout_bounds_hand_computed() {
        // Backward-only graph with free dO ops: all four dW_i(5) fan out
        // from Loss(2) at the same depth — a root with four wide,
        // independent children.
        let config = crate::graph::GraphConfig {
            include_updates: false,
            include_forward: false,
            ..crate::graph::GraphConfig::single_gpu(4)
        };
        let g = TrainGraph::new(config).unwrap();
        let mut cost = TableCost::uniform(
            4,
            LayerCost {
                output_grad: 0,
                weight_grad: 5,
                ..LayerCost::default()
            },
        );
        cost.loss = 2;
        // Longest chain: Loss -> (free dO prefix) -> one dW.
        assert_eq!(critical_path(&g, &cost), 7);
        // Work: 2 + 4*5 = 22 units.
        assert_eq!(resource_bound(&g, &cost, 1, 1), 22);
        assert_eq!(resource_bound(&g, &cost, 4, 1), 5);
        assert_eq!(lower_bound(&g, &cost, 1, 1), 22);
        // Four lanes: the chain through the root dominates.
        assert_eq!(lower_bound(&g, &cost, 4, 1), 7);
    }

    #[test]
    fn class_load_bound_is_strictly_tighter_on_sync_heavy_datapar() {
        // l=4 data-parallel, sync_weight=4, defaults elsewhere.
        // Compute work 11, sync work 16, critical path 12, so the old
        // bound is max(12, 16) = 16. The link lane cannot start before
        // the first dW lands (est(S[dW4]) = 1) and after the last sync
        // at least U+F work (1) remains: 1 + 16 + 1 = 18.
        let g = TrainGraph::data_parallel(4);
        let cost = TableCost::uniform(
            4,
            LayerCost {
                sync_weight: 4,
                ..LayerCost::default()
            },
        );
        let old = critical_path(&g, &cost).max(resource_bound(&g, &cost, 1, 1));
        assert_eq!(old, 16);
        assert_eq!(class_load_bound(&g, &cost, 1, 1), 18);
        assert_eq!(lower_bound(&g, &cost, 1, 1), 18);
        // And no reverse-k realization beats the tightened bound.
        for k in 0..=4 {
            let m = reverse_k_makespan(&g, k, &cost, CommPolicy::FifoCompletion).unwrap();
            assert!(m >= 18, "k={k} makespan {m}");
        }
    }

    #[test]
    fn class_load_bound_never_exceeds_simulated_makespans() {
        // Validity sweep: the tightened bound stays below every
        // realizable data-parallel makespan across layer counts, sync
        // weights, ks, and both communication policies.
        for l in [2usize, 5, 9, 13] {
            for sync in [1, 3, 7] {
                let g = TrainGraph::data_parallel(l);
                let cost = TableCost::uniform(
                    l,
                    LayerCost {
                        sync_weight: sync,
                        ..LayerCost::default()
                    },
                );
                let lb = lower_bound(&g, &cost, 1, 1);
                for k in 0..=l {
                    for policy in [CommPolicy::FifoCompletion, CommPolicy::PriorityByLayer] {
                        let m = reverse_k_makespan(&g, k, &cost, policy).unwrap();
                        assert!(m >= lb, "l={l} sync={sync} k={k} {m} < {lb}");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_lower_bound_gap_is_well_defined() {
        // All-zero cost model: the lower bound collapses to 0. A zero
        // makespan is vacuously optimal; a positive one has an unbounded
        // (infinite) gap — never NaN, a panic, or a bogus finite ratio.
        let g = TrainGraph::single_gpu(3);
        let zero = TableCost::uniform(
            3,
            LayerCost {
                forward: 0,
                output_grad: 0,
                weight_grad: 0,
                update: 0,
                ..LayerCost::default()
            },
        );
        assert_eq!(lower_bound(&g, &zero, 1, 1), 0);
        let gap0 = optimality_gap(&g, &zero, 1, 1, 0);
        assert!((gap0 - 1.0).abs() < 1e-12, "zero/zero gap {gap0}");
        let gap_pos = optimality_gap(&g, &zero, 1, 1, 42);
        assert!(gap_pos.is_infinite() && gap_pos > 0.0, "gap {gap_pos}");
        assert!(!gap_pos.is_nan());
    }

    #[test]
    fn partial_bound_matches_full_bound_on_the_whole_graph() {
        for l in [3usize, 6] {
            let g = TrainGraph::data_parallel(l);
            let cost = TableCost::uniform(
                l,
                LayerCost {
                    sync_weight: 3,
                    ..LayerCost::default()
                },
            );
            let all: Vec<crate::Op> = g.ops().to_vec();
            assert_eq!(
                partial_lower_bound(&g, &cost, &all, 1, 1),
                lower_bound(&g, &cost, 1, 1),
                "l={l}"
            );
        }
    }

    #[test]
    fn partial_bound_is_valid_for_backward_only_realizations() {
        // The datapar engines realize only the backward + sync subset;
        // the whole-graph bound over-counts the forward/update work they
        // never run, while the subset bound stays below every
        // realization.
        let l = 6;
        let g = TrainGraph::data_parallel(l);
        let cost = TableCost::uniform(
            l,
            LayerCost {
                sync_weight: 2,
                ..LayerCost::default()
            },
        );
        let subset: Vec<crate::Op> = g
            .ops()
            .iter()
            .copied()
            .filter(|o| o.is_backward() || o.is_sync())
            .collect();
        let plb = partial_lower_bound(&g, &cost, &subset, 1, 1);
        assert!(plb > 0);
        for k in 0..=l {
            let order =
                crate::reverse_k::reverse_first_k(&g, k, None::<(u64, &TableCost)>).unwrap();
            let syncs: Vec<crate::Op> = order
                .iter()
                .filter(|o| o.is_weight_grad())
                .map(|o| crate::Op::SyncWeightGrad(o.layer().unwrap()))
                .collect();
            let mut s = Schedule::default();
            s.add_lane("gpu", order);
            s.add_lane("link", syncs);
            let m = simulate(&g, &s, &cost).unwrap().makespan();
            assert!(m >= plb, "k={k} {m} < {plb}");
            // ... while the whole-graph bound over-counts and is NOT a
            // valid bound for this subset.
            assert!(plb < lower_bound(&g, &cost, 1, 1), "k={k}");
        }
    }

    #[test]
    fn makespan_never_beats_the_bound() {
        for l in [3usize, 7, 15] {
            let g = TrainGraph::data_parallel(l);
            let cost = TableCost::uniform(
                l,
                LayerCost {
                    sync_weight: 2,
                    ..LayerCost::default()
                },
            );
            for k in [0, l / 2, l] {
                let m = reverse_k_makespan(&g, k, &cost, CommPolicy::PriorityByLayer).unwrap();
                assert!(m >= lower_bound(&g, &cost, 1, 1), "l={l} k={k}");
            }
        }
    }
}
