//! Lower bounds on iteration makespan.
//!
//! The paper's Section 2 problem is NP-hard, so its schedulers are
//! heuristics; these bounds quantify how close a schedule gets. Two
//! classical bounds apply:
//!
//! - **critical path**: the longest dependency chain through the
//!   iteration (no schedule can beat the chain);
//! - **resource bound**: total work per resource class divided by the
//!   number of lanes of that class.
//!
//! `optimality_gap` compares a simulated makespan against the larger of
//! the two.

use crate::cost::CostModel;
use crate::graph::TrainGraph;
use crate::SimTime;

/// The critical-path lower bound: the longest cost-weighted dependency
/// chain in the graph.
pub fn critical_path<C: CostModel>(graph: &TrainGraph, cost: &C) -> SimTime {
    // Upward ranks already compute exactly this; the maximum rank is the
    // critical path length.
    crate::heft::upward_ranks(graph, cost)
        .into_iter()
        .max()
        .unwrap_or(0)
}

/// The resource lower bound: total compute work divided by
/// `compute_lanes`, and total synchronization work divided by
/// `link_lanes`, whichever is larger.
pub fn resource_bound<C: CostModel>(
    graph: &TrainGraph,
    cost: &C,
    compute_lanes: usize,
    link_lanes: usize,
) -> SimTime {
    let mut compute: SimTime = 0;
    let mut sync: SimTime = 0;
    for &op in graph.ops() {
        if op.is_sync() {
            sync += cost.duration(op);
        } else {
            compute += cost.duration(op);
        }
    }
    let c = compute / compute_lanes.max(1) as SimTime;
    let s = sync / link_lanes.max(1) as SimTime;
    c.max(s)
}

/// The combined lower bound.
pub fn lower_bound<C: CostModel>(
    graph: &TrainGraph,
    cost: &C,
    compute_lanes: usize,
    link_lanes: usize,
) -> SimTime {
    critical_path(graph, cost).max(resource_bound(graph, cost, compute_lanes, link_lanes))
}

/// Makespan divided by the lower bound (1.0 = provably optimal).
pub fn optimality_gap<C: CostModel>(
    graph: &TrainGraph,
    cost: &C,
    compute_lanes: usize,
    link_lanes: usize,
    makespan: SimTime,
) -> f64 {
    let lb = lower_bound(graph, cost, compute_lanes, link_lanes);
    if lb == 0 {
        return 1.0;
    }
    makespan as f64 / lb as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{LayerCost, TableCost, UnitCost};
    use crate::datapar::{reverse_k_makespan, CommPolicy};
    use crate::list_scheduling::{simulate, LaneSpec};
    use crate::reverse_k::search_optimal_k;
    use crate::schedule::Schedule;

    #[test]
    fn critical_path_of_unit_chain() {
        // Single GPU, L layers, unit cost: the chain
        // loss -> dO_L..dO_2 -> dW_1 -> U_1 -> F_1..F_L
        // has (L-1) dO + 1 dW + L F = 2L units.
        let g = TrainGraph::single_gpu(6);
        assert_eq!(critical_path(&g, &UnitCost), 12);
    }

    #[test]
    fn resource_bound_counts_work() {
        let g = TrainGraph::single_gpu(5);
        // Work: 4 dO + 5 dW + 5 F = 14 units on 1 lane; 7 on 2 lanes.
        assert_eq!(resource_bound(&g, &UnitCost, 1, 1), 14);
        assert_eq!(resource_bound(&g, &UnitCost, 2, 1), 7);
    }

    #[test]
    fn single_lane_conventional_is_optimal() {
        // On one lane the conventional schedule meets the resource bound
        // exactly: the gap is 1.0.
        let g = TrainGraph::single_gpu(8);
        let s = Schedule::single_lane("gpu", g.conventional_backprop());
        let t = simulate(&g, &s, &UnitCost).unwrap();
        let gap = optimality_gap(&g, &UnitCost, 1, 1, t.makespan());
        assert!((gap - 1.0).abs() < 1e-9, "gap {gap}");
    }

    #[test]
    fn two_stream_schedule_approaches_the_bound() {
        // With dW on a sub-stream, the makespan approaches
        // max(critical path, work/2).
        let g = TrainGraph::single_gpu(10);
        let lanes = [LaneSpec::compute("main"), LaneSpec::compute("sub")];
        let (_, t) = crate::heft::heft_schedule(&g, &UnitCost, &lanes).unwrap();
        let gap = optimality_gap(&g, &UnitCost, 2, 1, t.makespan());
        assert!(gap < 1.25, "gap {gap}");
    }

    #[test]
    fn reverse_k_search_lands_near_the_bound() {
        // Data-parallel with moderate syncs: the searched k's makespan is
        // within 1.3x of the lower bound (1 compute lane + 1 link lane).
        let l = 24;
        let cost = TableCost::uniform(
            l,
            LayerCost {
                sync_weight: 1,
                ..LayerCost::default()
            },
        );
        let g = TrainGraph::data_parallel(l);
        let k = search_optimal_k(l, |k| {
            -(reverse_k_makespan(&g, k, &cost, CommPolicy::PriorityByLayer).unwrap() as f64)
        });
        let m = reverse_k_makespan(&g, k, &cost, CommPolicy::PriorityByLayer).unwrap();
        let gap = optimality_gap(&g, &cost, 1, 1, m);
        assert!(gap < 1.3, "gap {gap}");
    }

    #[test]
    fn makespan_never_beats_the_bound() {
        for l in [3usize, 7, 15] {
            let g = TrainGraph::data_parallel(l);
            let cost = TableCost::uniform(
                l,
                LayerCost {
                    sync_weight: 2,
                    ..LayerCost::default()
                },
            );
            for k in [0, l / 2, l] {
                let m = reverse_k_makespan(&g, k, &cost, CommPolicy::PriorityByLayer).unwrap();
                assert!(m >= lower_bound(&g, &cost, 1, 1), "l={l} k={k}");
            }
        }
    }
}
