//! HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al.), the
//! second classical heuristic the paper's Section 2 names for its
//! job-shop formulation.
//!
//! HEFT ranks operations by *upward rank* (the critical-path length from
//! the operation to the exit of the DAG) and dispatches them in rank
//! order to the lane with the earliest finish time. Compared with plain
//! list scheduling under an ad-hoc priority, HEFT's prioritization is
//! derived from the cost model itself — useful as a strong generic
//! baseline against which the paper's specialized schedulers (Algorithms
//! 1 and 2) are judged.

use crate::cost::CostModel;
use crate::error::Result;
use crate::graph::TrainGraph;
use crate::list_scheduling::{list_schedule, LaneSpec, Timeline};
use crate::op::Op;
use crate::schedule::Schedule;
use crate::SimTime;

/// Computes each operation's *upward rank*: its own cost plus the
/// maximum rank among its dependents. Exit operations have rank equal to
/// their cost. Returned in the graph's canonical op order.
pub fn upward_ranks<C: CostModel>(graph: &TrainGraph, cost: &C) -> Vec<SimTime> {
    let n = graph.len();
    let mut ranks: Vec<SimTime> = vec![0; n];
    // The canonical storage order is a valid topological order, so a
    // single reverse sweep computes all ranks.
    let topo: Vec<usize> = {
        // Kahn order over the dependency DAG for safety (the canonical
        // order is topological by construction, but this keeps the
        // function correct for any graph).
        let mut indeg: Vec<usize> = (0..n).map(|i| graph.dep_indices(i).len()).collect();
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(i);
            for &j in graph.dependent_indices(i) {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    ready.push(j);
                }
            }
        }
        order
    };
    for &i in topo.iter().rev() {
        let own = cost.duration(graph.ops()[i]);
        let succ = graph
            .dependent_indices(i)
            .iter()
            .map(|&j| ranks[j])
            .max()
            .unwrap_or(0);
        ranks[i] = own + succ;
    }
    ranks
}

/// Schedules the whole iteration with HEFT over the given lanes: ready
/// operations are dispatched in decreasing upward rank to the accepting
/// lane with the earliest finish.
///
/// # Errors
///
/// Propagates [`list_schedule`] errors (e.g. an operation no lane
/// accepts).
pub fn heft_schedule<C: CostModel>(
    graph: &TrainGraph,
    cost: &C,
    lanes: &[LaneSpec<'_>],
) -> Result<(Schedule, Timeline)> {
    let ranks = upward_ranks(graph, cost);
    let rank_of = |op: Op| -> i64 { graph.op_index(op).map(|i| ranks[i] as i64).unwrap_or(0) };
    list_schedule(graph, cost, lanes, rank_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{LayerCost, TableCost, UnitCost};
    use crate::op::LayerId;
    use crate::schedule::validate_schedule;

    #[test]
    fn ranks_decrease_along_dependencies() {
        let g = TrainGraph::data_parallel(6);
        let ranks = upward_ranks(&g, &UnitCost);
        for (i, &op) in g.ops().iter().enumerate() {
            for dep in g.deps(op).unwrap() {
                let di = g.op_index(dep).unwrap();
                assert!(
                    ranks[di] >= ranks[i],
                    "rank({dep}) = {} < rank({op}) = {}",
                    ranks[di],
                    ranks[i]
                );
            }
        }
    }

    #[test]
    fn loss_has_maximal_rank() {
        let g = TrainGraph::single_gpu(8);
        let ranks = upward_ranks(&g, &UnitCost);
        let loss = g.op_index(Op::Loss).unwrap();
        assert_eq!(ranks[loss], ranks.iter().copied().max().unwrap());
    }

    #[test]
    fn weight_grads_rank_below_output_grads() {
        // dW is off the critical path; HEFT must rank it below the dO at
        // the same depth — exactly the insight ooo backprop builds on.
        let g = TrainGraph::single_gpu(8);
        let ranks = upward_ranks(&g, &UnitCost);
        for i in 2..=8 {
            let dw = g.op_index(Op::WeightGrad(LayerId(i))).unwrap();
            let do_ = g.op_index(Op::OutputGrad(LayerId(i))).unwrap();
            assert!(ranks[do_] > ranks[dw], "layer {i}");
        }
    }

    #[test]
    fn heft_produces_valid_schedules() {
        let g = TrainGraph::data_parallel(10);
        let lanes = [LaneSpec::compute("gpu"), LaneSpec::link("nic")];
        let (s, t) = heft_schedule(&g, &UnitCost, &lanes).unwrap();
        validate_schedule(&g, &s).unwrap();
        assert!(t.makespan() > 0);
    }

    #[test]
    fn heft_no_worse_than_neutral_list_scheduling() {
        let mut cost = TableCost::uniform(
            12,
            LayerCost {
                sync_weight: 3,
                ..LayerCost::default()
            },
        );
        cost.layer_mut(LayerId(1)).sync_weight = 8;
        let g = TrainGraph::data_parallel(12);
        let lanes = || [LaneSpec::compute("gpu"), LaneSpec::link("nic")];
        let (_, heft) = heft_schedule(&g, &cost, &lanes()).unwrap();
        let (_, neutral) =
            crate::list_scheduling::list_schedule(&g, &cost, &lanes(), |_| 0).unwrap();
        assert!(
            heft.makespan() <= neutral.makespan(),
            "HEFT {} vs neutral {}",
            heft.makespan(),
            neutral.makespan()
        );
    }

    #[test]
    fn heft_matches_reverse_k_regime_on_two_lanes() {
        // In the two-lane data-parallel setting, HEFT should discover the
        // same qualitative move as reverse first-k: critical syncs early.
        let mut cost = TableCost::uniform(
            20,
            LayerCost {
                sync_weight: 1,
                ..LayerCost::default()
            },
        );
        cost.layer_mut(LayerId(1)).sync_weight = 20;
        let g = TrainGraph::data_parallel(20);
        let lanes = [LaneSpec::compute("gpu"), LaneSpec::link("nic")];
        let (_, t) = heft_schedule(&g, &cost, &lanes).unwrap();
        // dW_1 should not be the last weight gradient computed.
        let dw1 = t.finish_of(Op::WeightGrad(LayerId(1))).unwrap();
        let latest_dw = (1..=20)
            .map(|i| t.finish_of(Op::WeightGrad(LayerId(i))).unwrap())
            .max()
            .unwrap();
        assert!(dw1 < latest_dw, "dW_1 at {dw1}, latest dW at {latest_dw}");
    }
}
