//! # ooo-core — Out-of-order backprop task graphs and schedulers
//!
//! This crate implements the primary contribution of *"Out-Of-Order
//! BackProp: An Effective Scheduling Technique for Deep Learning"*
//! (EuroSys '22): the observation that weight-gradient computations are
//! leaves of the backward dependency graph and may therefore be reordered
//! freely, plus the three scheduling algorithms the paper builds on top of
//! that freedom.
//!
//! The crate is organized around a [`graph::TrainGraph`] describing one
//! training iteration as a DAG of typed operations ([`op::Op`]):
//! forward computations `F_i`, output-gradient computations `dO_i`,
//! weight-gradient computations `dW_i`, weight updates `U_i`, and the
//! synchronization operations `S[dW_i]` / `S[dO_i]` of distributed training.
//! The dependency set is exactly the constraint system of the paper's
//! Section 2 formulation.
//!
//! On top of the graph the crate provides:
//!
//! - [`schedule`] — schedule representations and validation against the
//!   dependency constraints.
//! - [`list_scheduling`] — a generic list scheduler and a deterministic
//!   makespan simulator over devices and links.
//! - [`multi_region`] — the paper's Algorithm 1 (multi-region joint
//!   scheduling) for single-GPU multi-stream execution.
//! - [`reverse_k`] — the paper's Algorithm 2 (reverse first-k scheduling)
//!   for data-parallel training, with the concave heuristic search for `k`.
//! - [`pipeline`] — gradient fast-forwarding and modulo layer allocation
//!   for pipeline-parallel training, along with baseline schedule
//!   generators (cross-layer model parallelism, GPipe, PipeDream-style
//!   1F1B, DAPPLE-style, and Megatron-style interleaved pipelines).
//! - [`combined`] — the Section 6 combination of reverse first-k and
//!   gradient fast-forwarding.
//! - [`memory`] — the memory accounting used by the algorithms to respect
//!   peak-memory constraints.
//!
//! # Example
//!
//! ```
//! use ooo_core::graph::TrainGraph;
//! use ooo_core::schedule::validate_order;
//!
//! // A five-layer network, no distributed synchronization.
//! let graph = TrainGraph::single_gpu(5);
//! let conventional = graph.conventional_backprop();
//! assert!(validate_order(&graph, &conventional).is_ok());
//!
//! // Out-of-order backprop: delaying every weight gradient to the end of
//! // the backward pass is still a valid execution order.
//! let ooo = graph.fast_forward_backprop();
//! assert!(validate_order(&graph, &ooo).is_ok());
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod bounds;
pub mod combined;
pub mod cost;
pub mod datapar;
pub mod error;
pub mod export;
pub mod graph;
pub mod hash;
pub mod heft;
pub mod json;
pub mod list_scheduling;
pub mod memory;
pub mod multi_region;
pub mod op;
pub mod pipeline;
pub mod recompute;
pub mod reverse_k;
pub mod schedule;
pub mod trace;

pub use arena::GraphArena;
pub use error::{Error, Result};
pub use graph::TrainGraph;
pub use op::{LayerId, Op};
pub use schedule::Schedule;

/// Simulated time in nanoseconds.
///
/// All simulators in this workspace use integer nanoseconds so that event
/// ordering is exactly deterministic and reproducible across runs.
pub type SimTime = u64;
