//! Arena-style dense op storage.
//!
//! A [`GraphArena`] maps every [`Op`] of a training iteration to a
//! compact `u32` id in O(1) — no hashing, no `Vec<Op>` scans. The op
//! alphabet is a fixed product of seven kinds and `L + 1` layer slots
//! (slot 0 holds the layerless [`Op::Loss`]), so an op's home slot is a
//! single multiply-add into one flat table; absent slots hold a
//! sentinel. [`crate::graph::TrainGraph`] and the schedule validators in
//! [`crate::schedule`] index through an arena instead of a
//! `HashMap<Op, usize>`, which is what keeps million-op union graphs
//! from spending their time chasing hash lookups.

use crate::op::{LayerId, Op};

/// Number of [`Op`] kinds (enum variants).
const KINDS: usize = 7;

/// Sentinel for "this op is not present".
const ABSENT: u32 = u32::MAX;

/// O(1) bidirectional mapping between [`Op`]s and dense `u32` ids.
///
/// Ids are assigned by the caller (insertion order) and are dense in
/// `0..len`, so they index parallel `Vec`s directly. The arena bounds
/// ids at `u32::MAX - 1` — million-op graphs fit with room to spare
/// while halving the index-table footprint versus `usize`.
#[derive(Debug, Clone)]
pub struct GraphArena {
    layers: usize,
    /// `kind * (layers + 1) + layer → id`, [`ABSENT`] when missing.
    slots: Vec<u32>,
    /// `id → Op`, insertion order.
    ops: Vec<Op>,
}

/// Kind index of `op` inside the slot table.
fn kind_of(op: Op) -> usize {
    match op {
        Op::Forward(_) => 0,
        Op::Loss => 1,
        Op::OutputGrad(_) => 2,
        Op::WeightGrad(_) => 3,
        Op::Update(_) => 4,
        Op::SyncWeightGrad(_) => 5,
        Op::SyncOutputGrad(_) => 6,
    }
}

impl GraphArena {
    /// An empty arena sized for layers `1..=layers`.
    pub fn new(layers: usize) -> Self {
        GraphArena {
            layers,
            slots: vec![ABSENT; KINDS * (layers + 1)],
            ops: Vec::new(),
        }
    }

    /// Builds an arena whose ids are the positions of `ops` (which must
    /// be distinct and within `1..=layers`, except [`Op::Loss`]).
    pub fn from_ops(layers: usize, ops: &[Op]) -> Self {
        let mut arena = GraphArena::new(layers);
        for &op in ops {
            arena.insert(op);
        }
        arena
    }

    /// Flat slot of `op`, or `None` when its layer is out of range.
    fn slot(&self, op: Op) -> Option<usize> {
        let layer = match op.layer() {
            Some(LayerId(i)) => {
                if i == 0 || i > self.layers {
                    return None;
                }
                i
            }
            None => 0,
        };
        Some(kind_of(op) * (self.layers + 1) + layer)
    }

    /// Registers `op`, assigning it the next dense id. Re-inserting an
    /// op keeps its original id.
    ///
    /// # Panics
    ///
    /// Panics when `op`'s layer exceeds the arena's layer bound or the
    /// arena is full (`u32::MAX - 1` ops).
    pub fn insert(&mut self, op: Op) -> u32 {
        let slot = self.slot(op).expect("op layer within arena bound");
        if self.slots[slot] != ABSENT {
            return self.slots[slot];
        }
        let id = u32::try_from(self.ops.len()).expect("arena full");
        assert!(id != ABSENT, "arena full");
        self.slots[slot] = id;
        self.ops.push(op);
        id
    }

    /// Dense id of `op`, if present.
    #[inline]
    pub fn id_of(&self, op: Op) -> Option<u32> {
        match self.slot(op) {
            Some(slot) => match self.slots[slot] {
                ABSENT => None,
                id => Some(id),
            },
            None => None,
        }
    }

    /// Whether `op` is registered.
    #[inline]
    pub fn contains(&self, op: Op) -> bool {
        self.id_of(op).is_some()
    }

    /// The op with dense id `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` was never assigned.
    #[inline]
    pub fn op_of(&self, id: u32) -> Op {
        self.ops[id as usize]
    }

    /// Number of registered ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the arena holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Layer bound the arena was sized for.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// All registered ops in id order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alphabet(l: usize) -> Vec<Op> {
        let mut ops = vec![Op::Loss];
        for i in 1..=l {
            ops.extend([
                Op::Forward(LayerId(i)),
                Op::OutputGrad(LayerId(i)),
                Op::WeightGrad(LayerId(i)),
                Op::Update(LayerId(i)),
                Op::SyncWeightGrad(LayerId(i)),
                Op::SyncOutputGrad(LayerId(i)),
            ]);
        }
        ops
    }

    #[test]
    fn ids_are_insertion_order_and_round_trip() {
        let ops = alphabet(5);
        let arena = GraphArena::from_ops(5, &ops);
        assert_eq!(arena.len(), ops.len());
        for (i, &op) in ops.iter().enumerate() {
            assert_eq!(arena.id_of(op), Some(i as u32), "{op}");
            assert_eq!(arena.op_of(i as u32), op);
        }
    }

    #[test]
    fn absent_ops_report_none() {
        let arena = GraphArena::from_ops(3, &[Op::Loss, Op::WeightGrad(LayerId(2))]);
        assert_eq!(arena.id_of(Op::WeightGrad(LayerId(1))), None);
        assert_eq!(arena.id_of(Op::Forward(LayerId(3))), None);
        assert!(!arena.contains(Op::Update(LayerId(2))));
    }

    #[test]
    fn out_of_range_layers_report_none() {
        let arena = GraphArena::from_ops(3, &alphabet(3));
        assert_eq!(arena.id_of(Op::Forward(LayerId(4))), None);
        assert_eq!(arena.id_of(Op::Forward(LayerId(0))), None);
        assert_eq!(arena.id_of(Op::WeightGrad(LayerId(usize::MAX))), None);
    }

    #[test]
    fn reinsert_keeps_original_id() {
        let mut arena = GraphArena::new(2);
        let a = arena.insert(Op::Loss);
        let b = arena.insert(Op::WeightGrad(LayerId(1)));
        assert_eq!(arena.insert(Op::Loss), a);
        assert_eq!(arena.insert(Op::WeightGrad(LayerId(1))), b);
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn matches_hash_map_semantics_on_training_graphs() {
        for l in 1..=12 {
            let g = crate::graph::TrainGraph::data_parallel(l);
            let arena = GraphArena::from_ops(l, g.ops());
            for (i, &op) in g.ops().iter().enumerate() {
                assert_eq!(arena.id_of(op), Some(i as u32));
            }
        }
    }
}
