//! Schedule serialization.
//!
//! The paper's artifact ships the execution schedules for every evaluated
//! model alongside the code; this module provides the equivalent: named
//! execution orders and multi-lane schedules serialize to JSON and import
//! back with validation against the dependency graph, so schedules can be
//! produced offline (e.g. by the search heuristics) and replayed by a
//! training job.

use crate::error::{Error, Result};
use crate::graph::{GraphConfig, TrainGraph};
use crate::op::Op;
use crate::schedule::{validate_partial_order, Schedule};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A named bundle of execution schedules for one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleBundle {
    /// Model name the schedules were produced for.
    pub model: String,
    /// Graph configuration the orders were validated against.
    pub graph: GraphConfig,
    /// Flat execution orders by name (e.g. `"reverse_first_45"`).
    pub orders: BTreeMap<String, Vec<Op>>,
    /// Multi-lane schedules by name (e.g. `"multi_region"`).
    pub schedules: BTreeMap<String, Schedule>,
}

impl ScheduleBundle {
    /// Creates an empty bundle for a model/graph pair.
    pub fn new(model: &str, graph: &TrainGraph) -> Self {
        ScheduleBundle {
            model: model.to_string(),
            graph: graph.config().clone(),
            orders: BTreeMap::new(),
            schedules: BTreeMap::new(),
        }
    }

    /// Adds a flat order after validating it against `graph`.
    ///
    /// # Errors
    ///
    /// Returns validation errors for invalid orders and
    /// [`Error::InvalidConfig`] when `graph` does not match the bundle's
    /// configuration.
    pub fn add_order(&mut self, name: &str, graph: &TrainGraph, order: Vec<Op>) -> Result<()> {
        if graph.config() != &self.graph {
            return Err(Error::InvalidConfig(
                "graph does not match the bundle".into(),
            ));
        }
        validate_partial_order(graph, &order)?;
        self.orders.insert(name.to_string(), order);
        Ok(())
    }

    /// Serializes the bundle to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if serialization fails (cannot
    /// happen for well-formed bundles).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| Error::InvalidConfig(format!("serialize: {e}")))
    }

    /// Parses a bundle from JSON and re-validates every order against the
    /// embedded graph configuration — imported schedules are never
    /// trusted blindly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for malformed JSON and validation
    /// errors for any order that violates the dependency graph.
    pub fn from_json(json: &str) -> Result<Self> {
        let bundle: ScheduleBundle =
            serde_json::from_str(json).map_err(|e| Error::InvalidConfig(format!("parse: {e}")))?;
        let graph = TrainGraph::new(bundle.graph.clone())?;
        for order in bundle.orders.values() {
            validate_partial_order(&graph, order)?;
        }
        for schedule in bundle.schedules.values() {
            // Lane-level validation: each op must exist; cross-lane
            // consistency is checked when the schedule is simulated.
            for (_, op) in schedule.iter_ops() {
                if !graph.contains(op) {
                    return Err(Error::UnknownOp(op));
                }
            }
        }
        Ok(bundle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use crate::reverse_k::reverse_first_k;

    #[test]
    fn round_trip_preserves_orders() {
        let graph = TrainGraph::data_parallel(12);
        let mut bundle = ScheduleBundle::new("ResNet-toy", &graph);
        bundle
            .add_order("conventional", &graph, graph.conventional_backprop())
            .unwrap();
        bundle
            .add_order(
                "reverse_first_5",
                &graph,
                reverse_first_k::<UnitCost>(&graph, 5, None).unwrap(),
            )
            .unwrap();
        let json = bundle.to_json().unwrap();
        let back = ScheduleBundle::from_json(&json).unwrap();
        assert_eq!(back, bundle);
        assert_eq!(
            back.orders["reverse_first_5"].len(),
            bundle.orders["reverse_first_5"].len()
        );
    }

    #[test]
    fn invalid_orders_rejected_on_add_and_import() {
        let graph = TrainGraph::single_gpu(3);
        let mut bundle = ScheduleBundle::new("toy", &graph);
        // dW before the loss: invalid.
        let bad = vec![
            crate::op::Op::WeightGrad(crate::op::LayerId(3)),
            crate::op::Op::Loss,
        ];
        assert!(bundle.add_order("bad", &graph, bad.clone()).is_err());
        // Tampered JSON: inject the invalid order directly.
        bundle
            .add_order("ok", &graph, graph.conventional_backprop())
            .unwrap();
        let mut tampered = bundle.clone();
        tampered.orders.insert("bad".into(), bad);
        let json = tampered.to_json().unwrap();
        assert!(ScheduleBundle::from_json(&json).is_err());
    }

    #[test]
    fn mismatched_graph_rejected() {
        let g12 = TrainGraph::data_parallel(12);
        let g8 = TrainGraph::data_parallel(8);
        let mut bundle = ScheduleBundle::new("toy", &g12);
        assert!(bundle
            .add_order("x", &g8, g8.conventional_backprop())
            .is_err());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(ScheduleBundle::from_json("not json").is_err());
        assert!(ScheduleBundle::from_json("{}").is_err());
    }
}
