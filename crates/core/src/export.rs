//! Schedule and diagnostics serialization.
//!
//! The paper's artifact ships the execution schedules for every evaluated
//! model alongside the code; this module provides the equivalent: named
//! execution orders and multi-lane schedules serialize to JSON and import
//! back with validation against the dependency graph, so schedules can be
//! produced offline (e.g. by the search heuristics) and replayed by a
//! training job. Serialization is built on the in-tree [`crate::json`]
//! document model (the build environment has no `serde_json`).
//!
//! The module also defines the machine-readable diagnostics format
//! emitted by the `ooo-verify` static analyzer and its `ooo-lint` CLI:
//! [`DiagnosticRecord`] / [`diagnostics_to_json`]. Keeping the format
//! here (rather than in the analyzer crate) makes it part of the stable
//! interchange surface next to [`ScheduleBundle`].

use crate::error::{Error, Result};
use crate::graph::{GraphConfig, TrainGraph};
use crate::json::{obj, Value};
use crate::op::Op;
use crate::schedule::{validate_partial_order, ResourceId, ResourceSchedule, Schedule};
use std::collections::BTreeMap;

/// A named bundle of execution schedules for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleBundle {
    /// Model name the schedules were produced for.
    pub model: String,
    /// Graph configuration the orders were validated against.
    pub graph: GraphConfig,
    /// Flat execution orders by name (e.g. `"reverse_first_45"`).
    pub orders: BTreeMap<String, Vec<Op>>,
    /// Multi-lane schedules by name (e.g. `"multi_region"`).
    pub schedules: BTreeMap<String, Schedule>,
}

impl ScheduleBundle {
    /// Creates an empty bundle for a model/graph pair.
    pub fn new(model: &str, graph: &TrainGraph) -> Self {
        ScheduleBundle {
            model: model.to_string(),
            graph: graph.config().clone(),
            orders: BTreeMap::new(),
            schedules: BTreeMap::new(),
        }
    }

    /// Adds a flat order after validating it against `graph`.
    ///
    /// # Errors
    ///
    /// Returns validation errors for invalid orders and
    /// [`Error::InvalidConfig`] when `graph` does not match the bundle's
    /// configuration.
    pub fn add_order(&mut self, name: &str, graph: &TrainGraph, order: Vec<Op>) -> Result<()> {
        if graph.config() != &self.graph {
            return Err(Error::InvalidConfig(
                "graph does not match the bundle".into(),
            ));
        }
        validate_partial_order(graph, &order)?;
        self.orders.insert(name.to_string(), order);
        Ok(())
    }

    /// Serializes the bundle to pretty JSON.
    ///
    /// # Errors
    ///
    /// Infallible for well-formed bundles; the `Result` is kept for
    /// interface stability.
    pub fn to_json(&self) -> Result<String> {
        Ok(self.to_value().to_pretty())
    }

    fn to_value(&self) -> Value {
        let orders = Value::Obj(
            self.orders
                .iter()
                .map(|(name, order)| (name.clone(), ops_to_value(order)))
                .collect(),
        );
        let schedules = Value::Obj(
            self.schedules
                .iter()
                .map(|(name, sched)| (name.clone(), schedule_to_value(sched)))
                .collect(),
        );
        obj([
            ("model", self.model.as_str().into()),
            ("graph", graph_config_to_value(&self.graph)),
            ("orders", orders),
            ("schedules", schedules),
        ])
    }

    /// Parses a bundle from JSON and re-validates every order against the
    /// embedded graph configuration — imported schedules are never
    /// trusted blindly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for malformed JSON and validation
    /// errors for any order that violates the dependency graph.
    pub fn from_json(json: &str) -> Result<Self> {
        let root = Value::parse(json).map_err(|e| Error::InvalidConfig(format!("parse: {e}")))?;
        let bundle = Self::from_value(&root)?;
        let graph = TrainGraph::new(bundle.graph.clone())?;
        for order in bundle.orders.values() {
            validate_partial_order(&graph, order)?;
        }
        for schedule in bundle.schedules.values() {
            // Lane-level validation: each op must exist; cross-lane
            // consistency is checked when the schedule is simulated or
            // run through the `ooo-verify` analyzer.
            for (_, op) in schedule.iter_ops() {
                if !graph.contains(op) {
                    return Err(Error::UnknownOp(op));
                }
            }
        }
        Ok(bundle)
    }

    /// Parses a bundle from JSON *without* re-validating the orders or
    /// schedules against the dependency graph. This is the entry point for
    /// linting tools (`ooo-lint`): a bundle whose schedule breaks a
    /// dependency must still parse so the analyzer can diagnose *why* it
    /// is broken instead of rejecting it at the door. Only structural JSON
    /// errors and an invalid graph configuration are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for malformed documents or an
    /// unbuildable graph configuration.
    pub fn from_json_lenient(json: &str) -> Result<Self> {
        let root = Value::parse(json).map_err(|e| Error::InvalidConfig(format!("parse: {e}")))?;
        let bundle = Self::from_value(&root)?;
        TrainGraph::new(bundle.graph.clone())?;
        Ok(bundle)
    }

    fn from_value(root: &Value) -> Result<Self> {
        let model = require_str(root, "model")?.to_string();
        let graph = graph_config_from_value(require(root, "graph")?)?;
        let mut orders = BTreeMap::new();
        for (name, v) in require_obj(root, "orders")? {
            orders.insert(name.clone(), ops_from_value(v, name)?);
        }
        let mut schedules = BTreeMap::new();
        for (name, v) in require_obj(root, "schedules")? {
            schedules.insert(name.clone(), schedule_from_value(v, name)?);
        }
        Ok(ScheduleBundle {
            model,
            graph,
            orders,
            schedules,
        })
    }
}

/// One analyzer finding in the machine-readable diagnostics format.
///
/// This mirrors `ooo_verify::Diagnostic` structurally; the analyzer
/// converts its findings into records so that the JSON schema lives with
/// the other interchange types in this module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnosticRecord {
    /// Stable rule identifier (e.g. `"OV201"`).
    pub rule: String,
    /// Severity: `"error"`, `"warning"`, or `"info"`.
    pub severity: String,
    /// Operations involved in the finding, in paper notation.
    pub ops: Vec<Op>,
    /// Names of the lanes involved, if the finding is lane-specific.
    pub lanes: Vec<String>,
    /// Human-readable explanation.
    pub message: String,
}

/// Serializes analyzer findings for one schedule to pretty JSON.
///
/// The document shape is `{"schedule": name, "diagnostics": [...]}` with
/// one object per record.
pub fn diagnostics_to_json(schedule_name: &str, records: &[DiagnosticRecord]) -> String {
    let diags: Vec<Value> = records
        .iter()
        .map(|r| {
            obj([
                ("rule", r.rule.as_str().into()),
                ("severity", r.severity.as_str().into()),
                ("ops", ops_to_value(&r.ops)),
                (
                    "lanes",
                    Value::Arr(r.lanes.iter().map(|l| l.as_str().into()).collect()),
                ),
                ("message", r.message.as_str().into()),
            ])
        })
        .collect();
    obj([
        ("schedule", schedule_name.into()),
        ("diagnostics", Value::Arr(diags)),
    ])
    .to_pretty()
}

/// Parses a diagnostics document produced by [`diagnostics_to_json`].
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for malformed documents.
pub fn diagnostics_from_json(json: &str) -> Result<(String, Vec<DiagnosticRecord>)> {
    let root = Value::parse(json).map_err(|e| Error::InvalidConfig(format!("parse: {e}")))?;
    let name = require_str(&root, "schedule")?.to_string();
    let arr = require(&root, "diagnostics")?
        .as_arr()
        .ok_or_else(|| Error::InvalidConfig("diagnostics: expected array".into()))?;
    let mut records = Vec::with_capacity(arr.len());
    for v in arr {
        records.push(DiagnosticRecord {
            rule: require_str(v, "rule")?.to_string(),
            severity: require_str(v, "severity")?.to_string(),
            ops: ops_from_value(require(v, "ops")?, "ops")?,
            lanes: require(v, "lanes")?
                .as_arr()
                .ok_or_else(|| Error::InvalidConfig("lanes: expected array".into()))?
                .iter()
                .map(|l| {
                    l.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| Error::InvalidConfig("lanes: expected strings".into()))
                })
                .collect::<Result<_>>()?,
            message: require_str(v, "message")?.to_string(),
        });
    }
    Ok((name, records))
}

fn graph_config_to_value(cfg: &GraphConfig) -> Value {
    obj([
        ("layers", cfg.layers.into()),
        ("sync_weight_grads", cfg.sync_weight_grads.into()),
        ("sync_output_grads", cfg.sync_output_grads.into()),
        ("include_updates", cfg.include_updates.into()),
        ("include_forward", cfg.include_forward.into()),
        (
            "compute_first_output_grad",
            cfg.compute_first_output_grad.into(),
        ),
    ])
}

/// Upper bound on `layers` accepted from untrusted bundles; graph
/// construction allocates per-layer vectors, so an absurd count from a
/// corrupt document must fail cleanly instead of exhausting memory.
const MAX_BUNDLE_LAYERS: usize = 1_000_000;

fn graph_config_from_value(v: &Value) -> Result<GraphConfig> {
    let flag = |key: &str| -> Result<bool> {
        require(v, key)?
            .as_bool()
            .ok_or_else(|| Error::InvalidConfig(format!("{key}: expected bool")))
    };
    let layers = require(v, "layers")?
        .as_usize()
        .ok_or_else(|| Error::InvalidConfig("layers: expected integer".into()))?;
    if layers > MAX_BUNDLE_LAYERS {
        return Err(Error::InvalidConfig(format!(
            "layers: {layers} exceeds the bundle limit of {MAX_BUNDLE_LAYERS}"
        )));
    }
    Ok(GraphConfig {
        layers,
        sync_weight_grads: flag("sync_weight_grads")?,
        sync_output_grads: flag("sync_output_grads")?,
        include_updates: flag("include_updates")?,
        include_forward: flag("include_forward")?,
        compute_first_output_grad: flag("compute_first_output_grad")?,
    })
}

fn ops_to_value(ops: &[Op]) -> Value {
    Value::Arr(ops.iter().map(|op| op.to_string().into()).collect())
}

fn ops_from_value(v: &Value, what: &str) -> Result<Vec<Op>> {
    v.as_arr()
        .ok_or_else(|| Error::InvalidConfig(format!("{what}: expected array of ops")))?
        .iter()
        .map(|item| {
            item.as_str()
                .ok_or_else(|| Error::InvalidConfig(format!("{what}: expected op strings")))?
                .parse::<Op>()
                .map_err(Error::InvalidConfig)
        })
        .collect()
}

fn schedule_to_value(sched: &Schedule) -> Value {
    Value::Arr(
        sched
            .lanes
            .iter()
            .map(|lane| {
                obj([
                    ("resource", lane.resource.0.into()),
                    ("name", lane.name.as_str().into()),
                    ("ops", ops_to_value(&lane.ops)),
                ])
            })
            .collect(),
    )
}

fn schedule_from_value(v: &Value, what: &str) -> Result<Schedule> {
    let lanes =
        v.as_arr()
            .ok_or_else(|| Error::InvalidConfig(format!("{what}: expected array of lanes")))?
            .iter()
            .map(|lane| {
                Ok(ResourceSchedule {
                    resource: ResourceId(require(lane, "resource")?.as_usize().ok_or_else(
                        || Error::InvalidConfig("resource: expected integer".into()),
                    )?),
                    name: require_str(lane, "name")?.to_string(),
                    ops: ops_from_value(require(lane, "ops")?, "lane ops")?,
                })
            })
            .collect::<Result<Vec<_>>>()?;
    Ok(Schedule { lanes })
}

fn require<'v>(v: &'v Value, key: &str) -> Result<&'v Value> {
    v.get(key)
        .ok_or_else(|| Error::InvalidConfig(format!("missing field: {key}")))
}

fn require_str<'v>(v: &'v Value, key: &str) -> Result<&'v str> {
    require(v, key)?
        .as_str()
        .ok_or_else(|| Error::InvalidConfig(format!("{key}: expected string")))
}

fn require_obj<'v>(v: &'v Value, key: &str) -> Result<&'v [(String, Value)]> {
    require(v, key)?
        .as_obj()
        .ok_or_else(|| Error::InvalidConfig(format!("{key}: expected object")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use crate::reverse_k::reverse_first_k;

    #[test]
    fn round_trip_preserves_orders() {
        let graph = TrainGraph::data_parallel(12);
        let mut bundle = ScheduleBundle::new("ResNet-toy", &graph);
        bundle
            .add_order("conventional", &graph, graph.conventional_backprop())
            .unwrap();
        bundle
            .add_order(
                "reverse_first_5",
                &graph,
                reverse_first_k::<UnitCost>(&graph, 5, None).unwrap(),
            )
            .unwrap();
        let json = bundle.to_json().unwrap();
        let back = ScheduleBundle::from_json(&json).unwrap();
        assert_eq!(back, bundle);
        assert_eq!(
            back.orders["reverse_first_5"].len(),
            bundle.orders["reverse_first_5"].len()
        );
    }

    #[test]
    fn round_trip_preserves_schedules() {
        let graph = TrainGraph::single_gpu(4);
        let mut bundle = ScheduleBundle::new("toy", &graph);
        let mut sched = Schedule::new();
        sched.add_lane("main-stream", graph.conventional_backprop());
        bundle.schedules.insert("conv".into(), sched);
        let json = bundle.to_json().unwrap();
        let back = ScheduleBundle::from_json(&json).unwrap();
        assert_eq!(back, bundle);
        assert_eq!(back.schedules["conv"].lanes[0].name, "main-stream");
    }

    #[test]
    fn invalid_orders_rejected_on_add_and_import() {
        let graph = TrainGraph::single_gpu(3);
        let mut bundle = ScheduleBundle::new("toy", &graph);
        // dW before the loss: invalid.
        let bad = vec![
            crate::op::Op::WeightGrad(crate::op::LayerId(3)),
            crate::op::Op::Loss,
        ];
        assert!(bundle.add_order("bad", &graph, bad.clone()).is_err());
        // Tampered JSON: inject the invalid order directly.
        bundle
            .add_order("ok", &graph, graph.conventional_backprop())
            .unwrap();
        let mut tampered = bundle.clone();
        tampered.orders.insert("bad".into(), bad);
        let json = tampered.to_json().unwrap();
        assert!(ScheduleBundle::from_json(&json).is_err());
    }

    #[test]
    fn mismatched_graph_rejected() {
        let g12 = TrainGraph::data_parallel(12);
        let g8 = TrainGraph::data_parallel(8);
        let mut bundle = ScheduleBundle::new("toy", &g12);
        assert!(bundle
            .add_order("x", &g8, g8.conventional_backprop())
            .is_err());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(ScheduleBundle::from_json("not json").is_err());
        assert!(ScheduleBundle::from_json("{}").is_err());
    }

    #[test]
    fn absurd_layer_counts_rejected_before_allocation() {
        let graph = TrainGraph::single_gpu(2);
        let bundle = ScheduleBundle::new("toy", &graph);
        let json = bundle.to_json().unwrap();
        let tampered = json.replace("\"layers\": 2", "\"layers\": 1000000000000");
        assert_ne!(json, tampered, "fixture no longer matches serialization");
        let err = ScheduleBundle::from_json(&tampered).unwrap_err();
        assert!(
            err.to_string().contains("exceeds the bundle limit"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn diagnostics_round_trip() {
        let records = vec![DiagnosticRecord {
            rule: "OV201".into(),
            severity: "error".into(),
            ops: vec![Op::WeightGrad(crate::op::LayerId(3)), Op::Loss],
            lanes: vec!["main-stream".into(), "sub-stream".into()],
            message: "unsynchronized accesses to WeightGrad(3)".into(),
        }];
        let json = diagnostics_to_json("multi_region", &records);
        let (name, back) = diagnostics_from_json(&json).unwrap();
        assert_eq!(name, "multi_region");
        assert_eq!(back, records);
    }
}
