//! Pipeline-parallel schedules: gradient fast-forwarding and modulo layer
//! allocation (the paper's Section 5.2), plus the baseline systems they
//! are compared against.
//!
//! The module models pipeline-parallel training as a task system over
//! `(iteration, micro-batch, layer)` triples with three task kinds
//! (forward, output gradient, weight gradient) and cross-device transfer
//! tasks on per-device egress links. Strategies differ in three
//! dimensions:
//!
//! - **allocation** — which device owns each layer
//!   ([`Allocation::Contiguous`] vs [`Allocation::Modulo`], optionally
//!   grouped);
//! - **coupling** — whether `dW_i` is forced to run right after `dO_i`
//!   (conventional backprop) or may be delayed (gradient fast-forwarding);
//! - **synchronization semantics** — whether the next iteration's forward
//!   waits for the previous iteration's weight gradients (synchronous
//!   flush, as in GPipe/DAPPLE and the paper's OOO-Pipe) or proceeds with
//!   stale weights (PipeDream weight stashing).
//!
//! With unit task times and free communication the simulator reproduces
//! the paper's Figure 5 makespans exactly: 23 units for conventional
//! cross-layer model parallelism, 19 with gradient fast-forwarding, and
//! 16 with modulo allocation.

use crate::error::{Error, Result};
use crate::graph::TrainGraph;
use crate::op::{LayerId, Op};
use crate::schedule::Schedule;
use crate::SimTime;
use std::collections::HashMap;

/// Which device owns each layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allocation {
    /// Consecutive layers are grouped into `devices` equal stages — the
    /// conventional scheme of GPipe/PipeDream.
    Contiguous,
    /// Layer groups of `group` consecutive layers are dealt round-robin:
    /// group `j` goes to device `j mod devices`. `group = 1` is the
    /// paper's per-layer modulo allocation; larger groups trade pipeline
    /// overlap for less communication (the paper groups two transformers
    /// on 10 Gb Ethernet).
    Modulo {
        /// Number of consecutive layers allocated as one unit.
        group: usize,
    },
}

impl Allocation {
    /// Device owning `layer` (1-based) among `devices` devices for a
    /// network of `layers` layers.
    pub fn device_of(self, layer: usize, layers: usize, devices: usize) -> usize {
        debug_assert!(layer >= 1 && layer <= layers);
        match self {
            Allocation::Contiguous => {
                // Equal chunks; remainders spread over the first stages.
                let base = layers / devices;
                let extra = layers % devices;
                let mut l = layer - 1;
                for d in 0..devices {
                    let size = base + usize::from(d < extra);
                    if l < size {
                        return d;
                    }
                    l -= size;
                }
                devices - 1
            }
            Allocation::Modulo { group } => {
                let g = group.max(1);
                ((layer - 1) / g) % devices
            }
        }
    }
}

/// Pipeline training strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Cross-layer model parallelism: a single micro-batch, contiguous
    /// allocation, conventional backprop (Figure 5 (a)).
    ModelParallel,
    /// GPipe: micro-batches, contiguous allocation, conventional
    /// backprop, synchronous flush.
    GPipe,
    /// PipeDream: 1F1B with weight stashing — no flush (stale weights),
    /// bounded in-flight micro-batches. Changes training semantics;
    /// reported as a reference point, as in the paper.
    PipeDream,
    /// DAPPLE: early backward scheduling with a synchronous flush. Its
    /// early-backward benefit is *memory* (activations freed sooner);
    /// throughput-wise it tracks GPipe, which is how it is modelled here
    /// (no in-flight bound).
    Dapple,
    /// Megatron-LM v2 interleaved pipeline: `chunks` virtual stages per
    /// device (modulo allocation at chunk granularity) but conventional
    /// backprop — the paper notes the scheme has limited benefit without
    /// fast-forwarding.
    MegatronInterleaved {
        /// Virtual pipeline stages per device.
        chunks: usize,
    },
    /// OOO-Pipe1: GPipe plus gradient fast-forwarding.
    OooPipe1,
    /// OOO-Pipe2: OOO-Pipe1 plus modulo allocation.
    OooPipe2,
}

impl Strategy {
    /// Whether weight-gradient computations are decoupled from their
    /// layer's output-gradient computation (gradient fast-forwarding).
    pub fn fast_forwarding(self) -> bool {
        matches!(self, Strategy::OooPipe1 | Strategy::OooPipe2)
    }

    /// Whether the next iteration's forward pass waits for the previous
    /// iteration's weight gradients (synchronous training semantics).
    pub fn synchronous(self) -> bool {
        !matches!(self, Strategy::PipeDream)
    }

    /// The default allocation for this strategy, given the modulo group
    /// size configured for OOO-Pipe2.
    pub fn allocation(self, layers: usize, devices: usize, modulo_group: usize) -> Allocation {
        match self {
            Strategy::OooPipe2 => Allocation::Modulo {
                group: modulo_group,
            },
            Strategy::MegatronInterleaved { chunks } => {
                let per = (layers / (devices * chunks.max(1))).max(1);
                Allocation::Modulo { group: per }
            }
            _ => Allocation::Contiguous,
        }
    }

    /// Whether the strategy bounds in-flight micro-batches per device.
    /// Only PipeDream's 1F1B is bounded: its weight-stashing store forces
    /// the cap. DAPPLE and Megatron manage memory via early backward /
    /// chunking, which this throughput model does not need to bound.
    pub fn bounded_in_flight(self) -> bool {
        matches!(self, Strategy::PipeDream)
    }
}

/// Per-layer execution costs for pipeline simulation.
#[derive(Debug, Clone)]
pub struct PipeCost {
    /// Forward time per layer (1-based index at `forward[l-1]`).
    pub forward: Vec<SimTime>,
    /// Output-gradient time per layer.
    pub output_grad: Vec<SimTime>,
    /// Weight-gradient time per layer.
    pub weight_grad: Vec<SimTime>,
    /// Activation/gradient transfer time across the boundary after each
    /// layer (`transfer[l-1]` covers both `F` activations flowing
    /// `l -> l+1` and gradients flowing `l+1 -> l`).
    pub transfer: Vec<SimTime>,
}

impl PipeCost {
    /// Uniform unit-time costs with free communication — the model behind
    /// the paper's Figures 5, 6, and 12.
    pub fn unit(layers: usize) -> Self {
        PipeCost {
            forward: vec![1; layers],
            output_grad: vec![1; layers],
            weight_grad: vec![1; layers],
            transfer: vec![0; layers],
        }
    }

    /// Uniform costs with a fixed transfer time per boundary.
    pub fn uniform(layers: usize, compute: SimTime, transfer: SimTime) -> Self {
        PipeCost {
            forward: vec![compute; layers],
            output_grad: vec![compute; layers],
            weight_grad: vec![compute; layers],
            transfer: vec![transfer; layers],
        }
    }

    /// Number of layers covered.
    pub fn layers(&self) -> usize {
        self.forward.len()
    }
}

/// Full configuration of a pipeline simulation.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Number of layers.
    pub layers: usize,
    /// Number of devices.
    pub devices: usize,
    /// Micro-batches per mini-batch (1 = no micro-batching).
    pub micro_batches: usize,
    /// Training iterations to simulate.
    pub iterations: usize,
    /// Strategy under test.
    pub strategy: Strategy,
    /// Group size used when the strategy selects modulo allocation.
    pub modulo_group: usize,
    /// Per-layer costs.
    pub cost: PipeCost,
}

impl PipelineConfig {
    /// A unit-cost configuration (Figures 5/6/12 style).
    pub fn unit(layers: usize, devices: usize, micro_batches: usize, strategy: Strategy) -> Self {
        PipelineConfig {
            layers,
            devices,
            micro_batches,
            iterations: 1,
            strategy,
            modulo_group: 1,
            cost: PipeCost::unit(layers),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.layers == 0 || self.devices == 0 || self.micro_batches == 0 || self.iterations == 0
        {
            return Err(Error::InvalidConfig(
                "layers, devices, micro_batches, and iterations must all be positive".into(),
            ));
        }
        if self.devices > self.layers {
            return Err(Error::InvalidConfig(format!(
                "{} devices exceed {} layers",
                self.devices, self.layers
            )));
        }
        if self.cost.layers() != self.layers {
            return Err(Error::InvalidConfig(
                "cost table size != layer count".into(),
            ));
        }
        if matches!(self.strategy, Strategy::ModelParallel) && self.micro_batches != 1 {
            return Err(Error::InvalidConfig(
                "model parallelism is defined for a single micro-batch".into(),
            ));
        }
        Ok(())
    }
}

/// Kind of a pipeline task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Forward computation.
    Forward,
    /// Output-gradient computation.
    OutputGrad,
    /// Weight-gradient computation.
    WeightGrad,
    /// Cross-device tensor transfer (on the sender's egress link).
    Transfer,
}

/// One simulated pipeline task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipeTask {
    /// Task kind.
    pub kind: TaskKind,
    /// Training iteration (0-based).
    pub iter: usize,
    /// Micro-batch within the iteration (0-based).
    pub micro: usize,
    /// Layer (1-based); for transfers, the producing layer.
    pub layer: usize,
}

/// A task execution record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeEvent {
    /// What ran.
    pub task: PipeTask,
    /// Resource index: `0..devices` are compute devices, `devices..2*devices`
    /// are the devices' egress links.
    pub resource: usize,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
}

/// Result of a pipeline simulation.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// All executed tasks sorted by `(start, resource)`.
    pub events: Vec<PipeEvent>,
    /// Number of compute devices.
    pub devices: usize,
    /// Completion time of each iteration (last weight gradient of the
    /// iteration).
    pub iteration_finish: Vec<SimTime>,
}

impl PipelineResult {
    /// Total makespan.
    pub fn makespan(&self) -> SimTime {
        self.events.iter().map(|e| e.end).max().unwrap_or(0)
    }

    /// Busy time of compute device `d`.
    pub fn busy(&self, d: usize) -> SimTime {
        self.events
            .iter()
            .filter(|e| e.resource == d && e.task.kind != TaskKind::Transfer)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// Compute utilization of device `d` over the makespan.
    pub fn utilization(&self, d: usize) -> f64 {
        let m = self.makespan();
        if m == 0 {
            return 0.0;
        }
        self.busy(d) as f64 / m as f64
    }

    /// Steady-state time per iteration, discarding `warmup` iterations.
    /// Falls back to `makespan / iterations` when too few iterations were
    /// simulated.
    pub fn steady_state_iteration_time(&self, warmup: usize) -> f64 {
        let n = self.iteration_finish.len();
        if n == 0 {
            return 0.0;
        }
        if warmup + 1 >= n {
            return self.makespan() as f64 / n as f64;
        }
        let span = self.iteration_finish[n - 1] - self.iteration_finish[warmup];
        span as f64 / (n - 1 - warmup) as f64
    }

    /// Throughput in mini-batches per second given times in nanoseconds.
    pub fn throughput_per_sec(&self, warmup: usize) -> f64 {
        let t = self.steady_state_iteration_time(warmup);
        if t == 0.0 {
            return 0.0;
        }
        1e9 / t
    }

    /// Renders the run as a structured [`crate::trace::Timeline`]: one
    /// `gpu{d}` lane per compute device and one `link{d}` lane per egress
    /// link, with explicit [`crate::trace::CAT_STALL`] spans filling every
    /// compute-lane gap — the pipeline *bubbles*, so that the summarized
    /// stall fraction of the gpu lanes is exactly the bubble fraction.
    pub fn to_timeline(&self, name: &str) -> crate::trace::Timeline {
        use crate::trace::{Span, Timeline, CAT_STALL};
        let mut tl = Timeline::new(name);
        let makespan = self.makespan();
        for r in 0..2 * self.devices {
            let lane_name = if r < self.devices {
                format!("gpu{r}")
            } else {
                format!("link{}", r - self.devices)
            };
            let mut events: Vec<&PipeEvent> =
                self.events.iter().filter(|e| e.resource == r).collect();
            if r >= self.devices && events.is_empty() {
                continue; // unused link
            }
            events.sort_by_key(|e| e.start);
            let lane = tl.lane_mut(&lane_name);
            let mut prev_end: SimTime = 0;
            for e in events {
                let (prefix, cat) = match e.task.kind {
                    TaskKind::Forward => ("F", "compute"),
                    TaskKind::OutputGrad => ("dO", "compute"),
                    TaskKind::WeightGrad => ("dW", "compute"),
                    TaskKind::Transfer => ("S[dO", "transfer"),
                };
                let suffix = if e.task.kind == TaskKind::Transfer {
                    "]"
                } else {
                    ""
                };
                if r < self.devices && e.start > prev_end {
                    lane.spans
                        .push(Span::new("bubble", CAT_STALL, prev_end, e.start));
                }
                let mut span = Span::new(
                    format!("{prefix}{}{suffix}", e.task.layer),
                    cat,
                    e.start,
                    e.end,
                );
                span.args.push(("iter".into(), e.task.iter as f64));
                span.args.push(("micro".into(), e.task.micro as f64));
                span.args.push(("layer".into(), e.task.layer as f64));
                lane.spans.push(span);
                prev_end = prev_end.max(e.end);
            }
            if r < self.devices && prev_end < makespan {
                lane.spans
                    .push(Span::new("bubble", CAT_STALL, prev_end, makespan));
            }
        }
        tl
    }

    /// Renders a unit-time ASCII chart of the compute devices, Figure 12
    /// style: forward cells show `l`, backward cells `o l`/`w l`, with the
    /// micro-batch letter as suffix.
    pub fn render_ascii(&self) -> String {
        let makespan = self.makespan();
        let mut rows = vec![vec![String::from("."); makespan as usize]; self.devices];
        for e in &self.events {
            if e.resource >= self.devices {
                continue;
            }
            let mb = (b'A' + (e.task.micro % 26) as u8) as char;
            let label = match e.task.kind {
                TaskKind::Forward => format!("{}{}", e.task.layer, mb),
                TaskKind::OutputGrad => format!("o{}{}", e.task.layer, mb),
                TaskKind::WeightGrad => format!("w{}{}", e.task.layer, mb),
                TaskKind::Transfer => continue,
            };
            for t in e.start..e.end {
                rows[e.resource][t as usize] = label.clone();
            }
        }
        let mut out = String::new();
        for (d, row) in rows.iter().enumerate() {
            out.push_str(&format!("GPU{d} |"));
            for cell in row {
                out.push_str(&format!("{cell:>5}"));
            }
            out.push('\n');
        }
        out
    }
}

#[derive(Debug, Clone)]
struct TaskNode {
    task: PipeTask,
    resource: usize,
    dur: SimTime,
    deps: Vec<usize>,
    priority: i64,
}

/// Simulates pipeline-parallel training under `config`.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for structurally invalid
/// configurations.
pub fn simulate_pipeline(config: &PipelineConfig) -> Result<PipelineResult> {
    config.validate()?;
    let l = config.layers;
    let d = config.devices;
    let m = config.micro_batches;
    let iters = config.iterations;
    let alloc = config.strategy.allocation(l, d, config.modulo_group);
    let dev_of = |layer: usize| alloc.device_of(layer, l, d);
    let ff = config.strategy.fast_forwarding();
    let sync = config.strategy.synchronous();

    let mut nodes: Vec<TaskNode> = Vec::new();
    let mut id_of: HashMap<PipeTask, usize> = HashMap::new();
    let push =
        |nodes: &mut Vec<TaskNode>, id_of: &mut HashMap<PipeTask, usize>, n: TaskNode| -> usize {
            let id = nodes.len();
            id_of.insert(n.task, id);
            nodes.push(n);
            id
        };

    // Priority classes (higher runs first when a device has a choice):
    // conventional coupling: dW(3) > dO(2) > F(1) — the dW->dO coupling
    // dependency makes dW run immediately after its own dO.
    // fast-forwarding:       dO(3) > F(2) > dW(1) — weight gradients fill
    // idle time.
    let class = |kind: TaskKind| -> i64 {
        match (ff, kind) {
            (_, TaskKind::Transfer) => 4,
            (false, TaskKind::WeightGrad) => 3,
            (false, TaskKind::OutputGrad) => 2,
            (false, TaskKind::Forward) => 1,
            (true, TaskKind::OutputGrad) => 3,
            (true, TaskKind::Forward) => 2,
            (true, TaskKind::WeightGrad) => 1,
        }
    };
    let prio = |kind: TaskKind, iter: usize, micro: usize, layer: usize| -> i64 {
        let step = (iter * m + micro) as i64;
        let layer_key = match kind {
            TaskKind::Forward => -(layer as i64),
            _ => layer as i64,
        };
        class(kind) * 1_000_000_000 - step * 100_000 + layer_key
    };

    // In-flight bound for 1F1B schedules: device at pipeline position p
    // admits forward of micro step s only after backward of step
    // s - (num_positions - p) completed on it.
    let positions: Vec<usize> = {
        // Rank devices by their smallest owned layer.
        let mut firsts: Vec<(usize, usize)> = (0..d)
            .map(|dev| ((1..=l).find(|&ly| dev_of(ly) == dev).unwrap_or(l), dev))
            .collect();
        firsts.sort_unstable();
        let mut pos = vec![0usize; d];
        for (rank, &(_, dev)) in firsts.iter().enumerate() {
            pos[dev] = rank;
        }
        pos
    };

    for iter in 0..iters {
        for micro in 0..m {
            // Forward chain.
            for layer in 1..=l {
                let dev = dev_of(layer);
                let mut deps = Vec::new();
                if layer > 1 {
                    let prev_dev = dev_of(layer - 1);
                    let prev = id_of[&PipeTask {
                        kind: TaskKind::Forward,
                        iter,
                        micro,
                        layer: layer - 1,
                    }];
                    if prev_dev != dev && config.cost.transfer[layer - 2] > 0 {
                        let xfer = push(
                            &mut nodes,
                            &mut id_of,
                            TaskNode {
                                task: PipeTask {
                                    kind: TaskKind::Transfer,
                                    iter,
                                    micro,
                                    layer: layer - 1,
                                },
                                resource: d + prev_dev,
                                dur: config.cost.transfer[layer - 2],
                                deps: vec![prev],
                                priority: prio(TaskKind::Transfer, iter, micro, layer - 1),
                            },
                        );
                        deps.push(xfer);
                    } else {
                        deps.push(prev);
                    }
                }
                // Synchronous flush: the forward needs last iteration's
                // weight gradients for this layer (weight update itself is
                // modelled as free).
                if sync && iter > 0 {
                    for m2 in 0..m {
                        deps.push(
                            id_of[&PipeTask {
                                kind: TaskKind::WeightGrad,
                                iter: iter - 1,
                                micro: m2,
                                layer,
                            }],
                        );
                    }
                }
                push(
                    &mut nodes,
                    &mut id_of,
                    TaskNode {
                        task: PipeTask {
                            kind: TaskKind::Forward,
                            iter,
                            micro,
                            layer,
                        },
                        resource: dev,
                        dur: config.cost.forward[layer - 1],
                        deps,
                        priority: prio(TaskKind::Forward, iter, micro, layer),
                    },
                );
            }
            // Backward chain: the incoming gradient of layer `ly` is the
            // output gradient computed by layer `ly+1` (or the loss, free,
            // right after F_L). Under conventional backprop the two
            // gradient computations of a layer form one grouped node
            // (tf.group), so the handoff to layer `ly` additionally waits
            // for `dW_{ly+1}` — removing exactly this false dependency is
            // what out-of-order backprop does.
            for layer in (1..=l).rev() {
                let dev = dev_of(layer);
                let grad_deps: Vec<usize> = if layer == l {
                    vec![
                        id_of[&PipeTask {
                            kind: TaskKind::Forward,
                            iter,
                            micro,
                            layer: l,
                        }],
                    ]
                } else {
                    let src_dev = dev_of(layer + 1);
                    let mut src_deps = vec![
                        id_of[&PipeTask {
                            kind: TaskKind::OutputGrad,
                            iter,
                            micro,
                            layer: layer + 1,
                        }],
                    ];
                    if !ff {
                        // Grouped gradient node: the handoff also waits
                        // for dW of the producing layer.
                        src_deps.push(
                            id_of[&PipeTask {
                                kind: TaskKind::WeightGrad,
                                iter,
                                micro,
                                layer: layer + 1,
                            }],
                        );
                    }
                    if src_dev != dev && config.cost.transfer[layer - 1] > 0 {
                        // Gradient transfers are keyed by `layer + l` so
                        // they never collide with the forward transfer of
                        // the same boundary.
                        let xfer = push(
                            &mut nodes,
                            &mut id_of,
                            TaskNode {
                                task: PipeTask {
                                    kind: TaskKind::Transfer,
                                    iter,
                                    micro,
                                    layer: layer + l,
                                },
                                resource: d + src_dev,
                                dur: config.cost.transfer[layer - 1],
                                deps: src_deps,
                                priority: prio(TaskKind::Transfer, iter, micro, layer),
                            },
                        );
                        vec![xfer]
                    } else {
                        src_deps
                    }
                };
                if layer >= 2 {
                    push(
                        &mut nodes,
                        &mut id_of,
                        TaskNode {
                            task: PipeTask {
                                kind: TaskKind::OutputGrad,
                                iter,
                                micro,
                                layer,
                            },
                            resource: dev,
                            dur: config.cost.output_grad[layer - 1],
                            deps: grad_deps.clone(),
                            priority: prio(TaskKind::OutputGrad, iter, micro, layer),
                        },
                    );
                }
                let mut dw_deps = grad_deps;
                if !ff && layer >= 2 {
                    // Conventional coupling: dW right after the layer's dO.
                    dw_deps.push(
                        id_of[&PipeTask {
                            kind: TaskKind::OutputGrad,
                            iter,
                            micro,
                            layer,
                        }],
                    );
                }
                push(
                    &mut nodes,
                    &mut id_of,
                    TaskNode {
                        task: PipeTask {
                            kind: TaskKind::WeightGrad,
                            iter,
                            micro,
                            layer,
                        },
                        resource: dev,
                        dur: config.cost.weight_grad[layer - 1],
                        deps: dw_deps,
                        priority: prio(TaskKind::WeightGrad, iter, micro, layer),
                    },
                );
            }
        }
    }

    // 1F1B in-flight bounds.
    if config.strategy.bounded_in_flight() {
        let num_positions = d;
        for iter in 0..iters {
            for micro in 0..m {
                let step = iter * m + micro;
                #[allow(clippy::needless_range_loop)] // dev indexes two arrays
                for dev in 0..d {
                    let cap = num_positions - positions[dev];
                    if step < cap {
                        continue;
                    }
                    let gate_step = step - cap;
                    let (g_iter, g_micro) = (gate_step / m, gate_step % m);
                    // Anchor: the device's last backward task for the
                    // gated step (weight gradient of its smallest layer).
                    let Some(first_layer) = (1..=l).find(|&ly| dev_of(ly) == dev) else {
                        continue;
                    };
                    let anchor = id_of[&PipeTask {
                        kind: TaskKind::WeightGrad,
                        iter: g_iter,
                        micro: g_micro,
                        layer: first_layer,
                    }];
                    // Gate the device's first forward task of this step.
                    let gated = id_of[&PipeTask {
                        kind: TaskKind::Forward,
                        iter,
                        micro,
                        layer: first_layer,
                    }];
                    nodes[gated].deps.push(anchor);
                }
            }
        }
    }

    // Greedy earliest-start commit over compute devices and egress links.
    let num_resources = 2 * d;
    let mut indeg: Vec<usize> = nodes.iter().map(|n| n.deps.len()).collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        for &dep in &n.deps {
            dependents[dep].push(i);
        }
    }
    let mut ready_time: Vec<SimTime> = vec![0; nodes.len()];
    let mut ready: Vec<Vec<usize>> = vec![Vec::new(); num_resources]; // per-resource ready task ids
    for (i, n) in nodes.iter().enumerate() {
        if indeg[i] == 0 {
            ready[n.resource].push(i);
        }
    }
    let mut res_free: Vec<SimTime> = vec![0; num_resources];
    let mut finish: Vec<SimTime> = vec![0; nodes.len()];
    let mut events: Vec<PipeEvent> = Vec::with_capacity(nodes.len());
    let mut remaining = nodes.len();

    while remaining > 0 {
        // For each resource, the task it would run next: the highest-
        // priority task ready at t0 = max(res_free, earliest readiness).
        let mut best: Option<(SimTime, i64, usize)> = None; // (start, -prio, task)
        for r in 0..num_resources {
            if ready[r].is_empty() {
                continue;
            }
            let earliest = ready[r]
                .iter()
                .map(|&t| ready_time[t])
                .min()
                .expect("non-empty");
            let t0 = res_free[r].max(earliest);
            let &cand = ready[r]
                .iter()
                .filter(|&&t| ready_time[t] <= t0)
                .max_by_key(|&&t| (nodes[t].priority, std::cmp::Reverse(t)))
                .expect("the earliest-ready task qualifies");
            let key = (t0, -nodes[cand].priority, cand);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let Some((start, _, tid)) = best else {
            return Err(Error::InvalidConfig(
                "pipeline task graph did not drain".into(),
            ));
        };
        let node = &nodes[tid];
        let r = node.resource;
        let end = start + node.dur;
        finish[tid] = end;
        res_free[r] = end;
        events.push(PipeEvent {
            task: node.task,
            resource: r,
            start,
            end,
        });
        ready[r].retain(|&t| t != tid);
        remaining -= 1;
        for &dep in &dependents[tid].clone() {
            indeg[dep] -= 1;
            ready_time[dep] = ready_time[dep].max(end);
            if indeg[dep] == 0 {
                ready[nodes[dep].resource].push(dep);
            }
        }
        // Propagate readiness from all deps (max over finishes).
        // (ready_time updated incrementally above as deps finish.)
    }

    let mut iteration_finish = vec![0; iters];
    for e in &events {
        if e.task.kind == TaskKind::WeightGrad {
            let it = e.task.iter;
            iteration_finish[it] = iteration_finish[it].max(e.end);
        }
    }
    events.sort_by_key(|e| (e.start, e.resource, e.end));
    Ok(PipelineResult {
        events,
        devices: d,
        iteration_finish,
    })
}

/// The operation-level rendering of one pipeline iteration under a
/// strategy: one lane per device holding its layers' computations in
/// issue order, plus a `link` lane carrying the activation-gradient
/// transfers `S[dO_i]` between stages.
///
/// Fast-forwarding strategies (OOO-Pipe1/2) issue the full
/// output-gradient chain before any weight gradient; the others follow
/// conventional per-layer backprop. This is the schedule the `ooo-verify`
/// analyzer checks in debug builds — device placement comes from the
/// strategy's allocation, so a placement or ordering bug shows up as a
/// race or cross-lane deadlock here before the micro-batch simulator
/// ever runs it. The static performance analyzer (`ooo-advise`) evaluates
/// the same rendering to compare strategies' bubble fractions.
pub fn op_level_schedule(
    layers: usize,
    devices: usize,
    strategy: Strategy,
    modulo_group: usize,
) -> (TrainGraph, Schedule) {
    let devices = devices.max(1);
    let graph = TrainGraph::pipeline_parallel(layers);
    let alloc = strategy.allocation(layers, devices, modulo_group);
    let dev_of = |i: usize| alloc.device_of(i, layers, devices);
    let mut lanes: Vec<Vec<Op>> = vec![Vec::new(); devices];
    // Backward pass: the loss on the last layer's device, then down the
    // layer chain.
    lanes[dev_of(layers)].push(Op::Loss);
    if strategy.fast_forwarding() {
        // Gradient fast-forwarding: every dO first, the dW tail delayed.
        for i in (2..=layers).rev() {
            lanes[dev_of(i)].push(Op::OutputGrad(LayerId(i)));
        }
        for i in (1..=layers).rev() {
            lanes[dev_of(i)].push(Op::WeightGrad(LayerId(i)));
            lanes[dev_of(i)].push(Op::Update(LayerId(i)));
        }
    } else {
        // Conventional backprop per layer.
        for i in (1..=layers).rev() {
            if i >= 2 {
                lanes[dev_of(i)].push(Op::OutputGrad(LayerId(i)));
            }
            lanes[dev_of(i)].push(Op::WeightGrad(LayerId(i)));
            lanes[dev_of(i)].push(Op::Update(LayerId(i)));
        }
    }
    // Next iteration's forward pass up the chain.
    for i in 1..=layers {
        lanes[dev_of(i)].push(Op::Forward(LayerId(i)));
    }
    let mut schedule = Schedule::new();
    for (d, ops) in lanes.into_iter().enumerate() {
        schedule.add_lane(&format!("gpu{d}"), ops);
    }
    let link: Vec<Op> = (2..=layers)
        .rev()
        .map(|i| Op::SyncOutputGrad(LayerId(i)))
        .collect();
    schedule.add_lane("link", link);
    (graph, schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_result(layers: usize, devices: usize, micros: usize, s: Strategy) -> PipelineResult {
        simulate_pipeline(&PipelineConfig::unit(layers, devices, micros, s)).unwrap()
    }

    #[test]
    fn timeline_stall_fraction_is_the_bubble_fraction() {
        for s in [Strategy::GPipe, Strategy::OooPipe1, Strategy::OooPipe2] {
            let r = unit_result(8, 4, 4, s);
            let tl = r.to_timeline("pipe");
            tl.validate().unwrap();
            let summary = tl.summarize();
            assert_eq!(summary.horizon_ns, r.makespan());
            for d in 0..4 {
                let lane = summary.lane(&format!("gpu{d}")).unwrap();
                // Explicit bubble spans tile every non-busy instant, so
                // busy + stall covers the whole horizon...
                assert_eq!(lane.busy_ns + lane.stall_ns, summary.horizon_ns);
                // ...and the lane utilization matches the simulator's own.
                assert!((lane.utilization - r.utilization(d)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn contiguous_allocation_splits_evenly() {
        let a = Allocation::Contiguous;
        assert_eq!(a.device_of(1, 8, 2), 0);
        assert_eq!(a.device_of(4, 8, 2), 0);
        assert_eq!(a.device_of(5, 8, 2), 1);
        assert_eq!(a.device_of(8, 8, 2), 1);
        // Uneven split: first stages take the remainder.
        assert_eq!(a.device_of(3, 7, 3), 0);
        assert_eq!(a.device_of(4, 7, 3), 1);
    }

    #[test]
    fn modulo_allocation_round_robins() {
        let a = Allocation::Modulo { group: 1 };
        assert_eq!(a.device_of(1, 8, 2), 0);
        assert_eq!(a.device_of(2, 8, 2), 1);
        assert_eq!(a.device_of(3, 8, 2), 0);
        let g2 = Allocation::Modulo { group: 2 };
        assert_eq!(g2.device_of(1, 8, 2), 0);
        assert_eq!(g2.device_of(2, 8, 2), 0);
        assert_eq!(g2.device_of(3, 8, 2), 1);
        assert_eq!(g2.device_of(5, 8, 2), 0);
    }

    #[test]
    fn figure5_conventional_makespan_is_23() {
        let r = unit_result(8, 2, 1, Strategy::ModelParallel);
        assert_eq!(r.makespan(), 23, "\n{}", r.render_ascii());
    }

    #[test]
    fn figure5_fast_forwarding_makespan_is_19() {
        let r = unit_result(8, 2, 1, Strategy::OooPipe1);
        assert_eq!(r.makespan(), 19, "\n{}", r.render_ascii());
    }

    #[test]
    fn figure5_modulo_allocation_makespan_is_16() {
        let r = unit_result(8, 2, 1, Strategy::OooPipe2);
        assert_eq!(r.makespan(), 16, "\n{}", r.render_ascii());
    }

    #[test]
    fn figure5_utilization_over_90_percent_with_modulo() {
        // The paper: "both GPU1 and GPU2 are utilized for more than 90% of
        // the backpropagation" under modulo allocation.
        let r = unit_result(8, 2, 1, Strategy::OooPipe2);
        let backprop_span = r.makespan() - 8; // forward takes 8 units
        for dev in 0..2 {
            let busy_bwd: SimTime = r
                .events
                .iter()
                .filter(|e| {
                    e.resource == dev
                        && e.task.kind != TaskKind::Forward
                        && e.task.kind != TaskKind::Transfer
                })
                .map(|e| e.end - e.start)
                .sum();
            assert!(
                busy_bwd as f64 >= 0.85 * backprop_span as f64,
                "device {dev}: {busy_bwd}/{backprop_span}\n{}",
                r.render_ascii()
            );
        }
    }

    #[test]
    fn micro_batching_improves_on_model_parallelism() {
        // Figure 6: with 2 micro-batches GPipe overlaps backward passes.
        let mp = unit_result(8, 2, 1, Strategy::ModelParallel);
        let gp = unit_result(8, 2, 2, Strategy::GPipe);
        // GPipe processes twice the data; normalize per micro-batch.
        assert!((gp.makespan() as f64 / 2.0) < mp.makespan() as f64);
    }

    #[test]
    fn fast_forwarding_no_worse_than_gpipe() {
        for (l, d, m) in [(8, 2, 2), (8, 4, 2), (16, 4, 4), (12, 3, 4)] {
            let gp = unit_result(l, d, m, Strategy::GPipe);
            let p1 = unit_result(l, d, m, Strategy::OooPipe1);
            assert!(
                p1.makespan() <= gp.makespan(),
                "l={l} d={d} m={m}: {} vs {}",
                p1.makespan(),
                gp.makespan()
            );
        }
    }

    #[test]
    fn modulo_beats_fast_forwarding_alone_with_free_comm() {
        for (l, d, m) in [(8, 2, 2), (16, 4, 4)] {
            let p1 = unit_result(l, d, m, Strategy::OooPipe1);
            let p2 = unit_result(l, d, m, Strategy::OooPipe2);
            assert!(
                p2.makespan() <= p1.makespan(),
                "l={l} d={d} m={m}: {} vs {}",
                p2.makespan(),
                p1.makespan()
            );
        }
    }

    #[test]
    fn expensive_transfers_hurt_fine_modulo_more_than_grouped() {
        // On a slow interconnect, grouping layers reduces transfer count.
        let mk = |group: usize| {
            let mut c = PipelineConfig::unit(16, 4, 4, Strategy::OooPipe2);
            c.modulo_group = group;
            c.cost = PipeCost::uniform(16, 2, 3);
            simulate_pipeline(&c).unwrap().makespan()
        };
        let fine = mk(1);
        let grouped = mk(4);
        assert!(grouped < fine, "grouped {grouped} vs fine {fine}");
    }

    #[test]
    fn pipedream_steady_state_beats_gpipe() {
        let mk = |s: Strategy| {
            let mut c = PipelineConfig::unit(8, 4, 4, s);
            c.iterations = 6;
            simulate_pipeline(&c)
                .unwrap()
                .steady_state_iteration_time(2)
        };
        let gpipe = mk(Strategy::GPipe);
        let pd = mk(Strategy::PipeDream);
        assert!(pd <= gpipe, "pipedream {pd} vs gpipe {gpipe}");
    }

    #[test]
    fn multi_iteration_finishes_are_monotone() {
        let mut c = PipelineConfig::unit(8, 2, 2, Strategy::GPipe);
        c.iterations = 4;
        let r = simulate_pipeline(&c).unwrap();
        for w in r.iteration_finish.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn every_task_executes_exactly_once() {
        let mut c = PipelineConfig::unit(8, 4, 2, Strategy::OooPipe2);
        c.iterations = 2;
        let r = simulate_pipeline(&c).unwrap();
        // Per iteration+micro: 8 F, 7 dO, 8 dW. 2 iters * 2 micros = 4.
        let compute: Vec<&PipeEvent> = r
            .events
            .iter()
            .filter(|e| e.task.kind != TaskKind::Transfer)
            .collect();
        assert_eq!(compute.len(), 4 * (8 + 7 + 8));
    }

    #[test]
    fn devices_never_overlap_themselves() {
        let mut c = PipelineConfig::unit(12, 3, 4, Strategy::Dapple);
        c.iterations = 3;
        let r = simulate_pipeline(&c).unwrap();
        for res in 0..6 {
            let mut evs: Vec<&PipeEvent> = r.events.iter().filter(|e| e.resource == res).collect();
            evs.sort_by_key(|e| e.start);
            for w in evs.windows(2) {
                assert!(w[0].end <= w[1].start, "overlap on resource {res}");
            }
        }
    }

    #[test]
    fn dependencies_respected_in_timeline() {
        let mut c = PipelineConfig::unit(8, 2, 2, Strategy::OooPipe1);
        c.iterations = 2;
        let r = simulate_pipeline(&c).unwrap();
        let finish = |t: PipeTask| {
            r.events
                .iter()
                .find(|e| e.task == t)
                .map(|e| e.end)
                .unwrap()
        };
        let start = |t: PipeTask| {
            r.events
                .iter()
                .find(|e| e.task == t)
                .map(|e| e.start)
                .unwrap()
        };
        // Forward chain order.
        for layer in 2..=8 {
            let f_prev = finish(PipeTask {
                kind: TaskKind::Forward,
                iter: 0,
                micro: 0,
                layer: layer - 1,
            });
            let f = start(PipeTask {
                kind: TaskKind::Forward,
                iter: 0,
                micro: 0,
                layer,
            });
            assert!(f >= f_prev);
        }
        // Synchronous flush: iteration 1's F of layer 1 waits for
        // iteration 0's dW of layer 1 (all micros).
        let dw = finish(PipeTask {
            kind: TaskKind::WeightGrad,
            iter: 0,
            micro: 1,
            layer: 1,
        });
        let f1 = start(PipeTask {
            kind: TaskKind::Forward,
            iter: 1,
            micro: 0,
            layer: 1,
        });
        assert!(f1 >= dw);
    }

    #[test]
    fn pipedream_overlaps_iterations() {
        // With weight stashing, iteration 1's forward may start before
        // iteration 0's backward completes.
        let mut c = PipelineConfig::unit(8, 4, 4, Strategy::PipeDream);
        c.iterations = 3;
        let r = simulate_pipeline(&c).unwrap();
        let f1_start = r
            .events
            .iter()
            .find(|e| {
                e.task
                    == PipeTask {
                        kind: TaskKind::Forward,
                        iter: 1,
                        micro: 0,
                        layer: 1,
                    }
            })
            .unwrap()
            .start;
        assert!(
            f1_start < r.iteration_finish[0],
            "{} vs {}",
            f1_start,
            r.iteration_finish[0]
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(simulate_pipeline(&PipelineConfig::unit(0, 1, 1, Strategy::GPipe)).is_err());
        assert!(simulate_pipeline(&PipelineConfig::unit(2, 4, 1, Strategy::GPipe)).is_err());
        assert!(
            simulate_pipeline(&PipelineConfig::unit(8, 2, 2, Strategy::ModelParallel)).is_err()
        );
        let mut c = PipelineConfig::unit(4, 2, 1, Strategy::GPipe);
        c.cost = PipeCost::unit(5);
        assert!(simulate_pipeline(&c).is_err());
    }

    #[test]
    fn megatron_interleaved_runs_and_is_valid() {
        let mut c = PipelineConfig::unit(16, 4, 4, Strategy::MegatronInterleaved { chunks: 2 });
        c.iterations = 2;
        let r = simulate_pipeline(&c).unwrap();
        assert!(r.makespan() > 0);
        // Interleaved allocation: layer 1 and layer 9 share device 0.
        let a = Strategy::MegatronInterleaved { chunks: 2 }.allocation(16, 4, 1);
        assert_eq!(a.device_of(1, 16, 4), a.device_of(9, 16, 4));
    }

    #[test]
    fn ascii_rendering_shows_micro_batches() {
        let r = unit_result(8, 2, 2, Strategy::GPipe);
        let art = r.render_ascii();
        assert!(art.contains("1A"));
        assert!(art.contains("1B"));
        assert!(art.contains("w1A"));
    }
}
