//! Schedule representations and validation.
//!
//! A *schedule* assigns every operation of a [`TrainGraph`] to a resource
//! (GPU stream, device, or communication link) and fixes the execution
//! order on each resource. Validation checks that the combined order is a
//! linearization of the true dependency DAG — this is the safety property
//! of out-of-order backprop: any reordering the algorithms produce must
//! still be a topological order of the *data* dependencies.

use crate::error::{Error, Result};
use crate::graph::TrainGraph;
use crate::op::Op;
use std::collections::HashMap;

/// Identifier of an execution resource (stream, device, or link).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub usize);

/// The ordered operation list of one resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceSchedule {
    /// Resource this lane belongs to.
    pub resource: ResourceId,
    /// Human-readable name ("main-stream", "gpu0", "nic", ...).
    pub name: String,
    /// Operations in issue order on this resource.
    pub ops: Vec<Op>,
}

/// A complete multi-resource schedule.
///
/// The schedule fixes per-resource issue order; actual start times emerge
/// from the dependency structure when the schedule is simulated (see
/// [`crate::list_scheduling::simulate`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    /// One lane per resource.
    pub lanes: Vec<ResourceSchedule>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Creates a single-lane schedule from a flat operation order.
    pub fn single_lane(name: &str, ops: Vec<Op>) -> Self {
        Schedule {
            lanes: vec![ResourceSchedule {
                resource: ResourceId(0),
                name: name.to_string(),
                ops,
            }],
        }
    }

    /// Adds a lane and returns its [`ResourceId`].
    pub fn add_lane(&mut self, name: &str, ops: Vec<Op>) -> ResourceId {
        let id = ResourceId(self.lanes.len());
        self.lanes.push(ResourceSchedule {
            resource: id,
            name: name.to_string(),
            ops,
        });
        id
    }

    /// Total number of scheduled operations across all lanes.
    pub fn num_ops(&self) -> usize {
        self.lanes.iter().map(|l| l.ops.len()).sum()
    }

    /// Iterates over all `(resource, op)` pairs.
    pub fn iter_ops(&self) -> impl Iterator<Item = (ResourceId, Op)> + '_ {
        self.lanes
            .iter()
            .flat_map(|l| l.ops.iter().map(move |&op| (l.resource, op)))
    }

    /// The lane an operation was assigned to, if any.
    pub fn lane_of(&self, op: Op) -> Option<ResourceId> {
        self.iter_ops().find(|&(_, o)| o == op).map(|(r, _)| r)
    }
}

/// The repository-wide deterministic pick rule for ready sets: among
/// equal-priority candidates the **smallest op id** (the op's dense
/// arena index, i.e. its position in the canonical storage order) wins.
/// Every sort or heap pick that chooses between ready operations — the
/// greedy list scheduler, the pipeline simulator's commit loop, the
/// strategy generators, and `ooo-tune`'s memory-capped candidate
/// ranking — must reduce to this `(priority desc, op id asc)` key so
/// that shuffled inputs, parallel restarts, and re-runs all reproduce
/// the same schedule byte for byte.
#[derive(Debug, Default)]
pub struct ReadyQueue {
    heap: std::collections::BinaryHeap<(i64, std::cmp::Reverse<usize>)>,
}

impl ReadyQueue {
    /// An empty queue.
    pub fn new() -> Self {
        ReadyQueue::default()
    }

    /// Admits a ready op by `(priority, op_id)`. `op_id` must be unique
    /// per op (the graph arena index is); uniqueness is what makes the
    /// pick order independent of insertion order.
    pub fn push(&mut self, priority: i64, op_id: usize) {
        self.heap.push((priority, std::cmp::Reverse(op_id)));
    }

    /// Removes and returns the best candidate: highest priority, ties by
    /// smallest op id.
    pub fn pop(&mut self) -> Option<(i64, usize)> {
        self.heap.pop().map(|(p, std::cmp::Reverse(id))| (p, id))
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of queued candidates.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Builds the `op -> position` index of an operation sequence, rejecting
/// operations outside the graph and duplicates.
///
/// This is the shared front end of every validator here and of the
/// `ooo-verify` analyzer's structural rules (`OV001`/`OV002`).
///
/// # Errors
///
/// - [`Error::UnknownOp`] if the sequence contains an op not in the graph.
/// - [`Error::DuplicateOp`] if an op appears twice.
pub fn index_positions(
    graph: &TrainGraph,
    ops: impl IntoIterator<Item = Op>,
) -> Result<HashMap<Op, usize>> {
    let mut pos: HashMap<Op, usize> = HashMap::new();
    for (i, op) in ops.into_iter().enumerate() {
        if !graph.contains(op) {
            return Err(Error::UnknownOp(op));
        }
        if pos.insert(op, i).is_some() {
            return Err(Error::DuplicateOp(op));
        }
    }
    Ok(pos)
}

/// Sentinel in a dense position table for "op not in the sequence".
const UNPOSITIONED: u32 = u32::MAX;

/// Dense counterpart of [`index_positions`]: a table indexed by the
/// graph's arena id holding each op's position in the sequence
/// ([`UNPOSITIONED`] when absent). O(1) per op via
/// [`crate::arena::GraphArena`] instead of hashing — the validators below
/// run on this, which is what lets them keep up with million-op union
/// graphs.
fn dense_positions(graph: &TrainGraph, ops: impl IntoIterator<Item = Op>) -> Result<Vec<u32>> {
    let mut pos = vec![UNPOSITIONED; graph.len()];
    for (i, op) in ops.into_iter().enumerate() {
        let idx = graph.op_index(op).ok_or(Error::UnknownOp(op))?;
        if pos[idx] != UNPOSITIONED {
            return Err(Error::DuplicateOp(op));
        }
        pos[idx] = u32::try_from(i).expect("sequence longer than u32::MAX ops");
    }
    Ok(pos)
}

/// Dense counterpart of [`require_complete`].
fn dense_require_complete(graph: &TrainGraph, pos: &[u32]) -> Result<()> {
    for (i, &p) in pos.iter().enumerate() {
        if p == UNPOSITIONED {
            return Err(Error::MissingOp(graph.ops()[i]));
        }
    }
    Ok(())
}

/// Dense counterpart of [`check_positions`]: scans ops in canonical graph
/// order (deterministic, unlike hash iteration).
fn dense_check_positions(graph: &TrainGraph, pos: &[u32]) -> Result<()> {
    for (idx, &p) in pos.iter().enumerate() {
        if p == UNPOSITIONED {
            continue;
        }
        for &d in graph.dep_indices(idx) {
            let q = pos[d];
            if q != UNPOSITIONED && q >= p {
                return Err(Error::DependencyViolation {
                    op: graph.ops()[idx],
                    missing_dep: graph.ops()[d],
                });
            }
        }
    }
    Ok(())
}

/// Requires `pos` (from [`index_positions`]) to cover every operation of
/// the graph.
///
/// # Errors
///
/// Returns [`Error::MissingOp`] naming the first absent operation (in
/// canonical graph order).
pub fn require_complete(graph: &TrainGraph, pos: &HashMap<Op, usize>) -> Result<()> {
    for &op in graph.ops() {
        if !pos.contains_key(&op) {
            return Err(Error::MissingOp(op));
        }
    }
    Ok(())
}

/// Checks that every dependency present in `pos` is positioned before its
/// dependent. Dependencies absent from `pos` are assumed to have completed
/// before the (partial) order starts.
///
/// # Errors
///
/// Returns [`Error::DependencyViolation`] for the first out-of-order pair.
pub fn check_positions(graph: &TrainGraph, pos: &HashMap<Op, usize>) -> Result<()> {
    for (&op, &i) in pos {
        for dep in graph.deps(op)? {
            if let Some(&j) = pos.get(&dep) {
                if j >= i {
                    return Err(Error::DependencyViolation {
                        op,
                        missing_dep: dep,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Validates that `order` is a complete topological linearization of
/// `graph`: every operation appears exactly once and no operation precedes
/// one of its dependencies.
///
/// # Errors
///
/// - [`Error::UnknownOp`] if `order` contains an op not in the graph.
/// - [`Error::DuplicateOp`] if an op appears twice.
/// - [`Error::MissingOp`] if an op of the graph is absent.
/// - [`Error::DependencyViolation`] if the order breaks a dependency.
pub fn validate_order(graph: &TrainGraph, order: &[Op]) -> Result<()> {
    let pos = dense_positions(graph, order.iter().copied())?;
    dense_require_complete(graph, &pos)?;
    dense_check_positions(graph, &pos)
}

/// Validates that `order` is a *partial* topological linearization: each
/// operation appears at most once, and every dependency that is itself part
/// of `order` appears earlier. Dependencies outside `order` are assumed to
/// have completed before the partial schedule starts (e.g. when scheduling
/// only the backward pass).
///
/// # Errors
///
/// Same as [`validate_order`] except that missing operations are allowed.
pub fn validate_partial_order(graph: &TrainGraph, order: &[Op]) -> Result<()> {
    let pos = dense_positions(graph, order.iter().copied())?;
    dense_check_positions(graph, &pos)
}

/// Merges a (possibly partial) multi-lane schedule into one topological
/// order of the union of per-lane issue orders and the dependency edges
/// between *scheduled* operations — Kahn's algorithm over the union graph.
/// Dependencies on unscheduled operations are assumed satisfied, matching
/// [`validate_partial_order`]'s contract.
///
/// The merged order is the linearization used by sequential analyses
/// (memory accounting, replay); its existence is exactly the
/// interleaving-feasibility property checked by [`validate_schedule`].
///
/// The schedule must already be indexable (no unknown/duplicate ops);
/// call [`index_positions`] first.
///
/// # Errors
///
/// Returns [`Error::DependencyViolation`] when the union graph has a
/// cycle, i.e. the lanes cannot be interleaved without breaking a
/// dependency or a lane's issue order (the reported pair lies on the
/// cycle).
pub fn merge_lanes(graph: &TrainGraph, schedule: &Schedule) -> Result<Vec<Op>> {
    let n = graph.len();
    let mut scheduled = vec![false; n];
    for (_, op) in schedule.iter_ops() {
        let i = graph.op_index(op).ok_or(Error::UnknownOp(op))?;
        scheduled[i] = true;
    }
    let mut extra_succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg: Vec<usize> = (0..n)
        .map(|i| {
            if !scheduled[i] {
                return 0;
            }
            graph
                .dep_indices(i)
                .iter()
                .filter(|&&d| scheduled[d])
                .count()
        })
        .collect();
    for lane in &schedule.lanes {
        for w in lane.ops.windows(2) {
            let a = graph.op_index(w[0]).expect("checked above");
            let b = graph.op_index(w[1]).expect("checked above");
            extra_succ[a].push(b);
            indeg[b] += 1;
        }
    }
    let total = scheduled.iter().filter(|&&s| s).count();
    let mut ready: Vec<usize> = (0..n).filter(|&i| scheduled[i] && indeg[i] == 0).collect();
    let mut merged = Vec::with_capacity(total);
    while let Some(i) = ready.pop() {
        merged.push(graph.ops()[i]);
        for &j in graph.dependent_indices(i) {
            if scheduled[j] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    ready.push(j);
                }
            }
        }
        for &j in &extra_succ[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                ready.push(j);
            }
        }
    }
    if merged.len() != total {
        // Find a blocked op and one of its unsatisfied dependencies to
        // produce an actionable error message.
        let blocked = (0..n)
            .find(|&i| scheduled[i] && indeg[i] > 0)
            .expect("cycle implies a blocked op");
        let op = graph.ops()[blocked];
        let missing_dep = graph
            .dep_indices(blocked)
            .iter()
            .map(|&d| graph.ops()[d])
            .find(|&d| graph.op_index(d).map(|x| scheduled[x]) == Some(true))
            .unwrap_or(op);
        return Err(Error::DependencyViolation { op, missing_dep });
    }
    Ok(merged)
}

/// Validates a multi-lane [`Schedule`]: each operation appears on exactly
/// one lane, all graph operations are covered, and there exists an
/// interleaving of the lanes respecting both per-lane order and the
/// dependency DAG (i.e. the union of lane orders and dependencies is
/// acyclic).
///
/// This is the structural subset of the `ooo-verify` analyzer's checks;
/// run that crate's `Verifier` for the full hazard analysis
/// (happens-before races, deadlock cycles, memory liveness, ooo
/// legality).
///
/// # Errors
///
/// Same classes as [`validate_order`]; a [`Error::DependencyViolation`] is
/// reported when the lanes cannot be interleaved without breaking a
/// dependency (the reported pair lies on the detected cycle).
pub fn validate_schedule(graph: &TrainGraph, schedule: &Schedule) -> Result<()> {
    let pos = dense_positions(graph, schedule.iter_ops().map(|(_, op)| op))?;
    dense_require_complete(graph, &pos)?;
    merge_lanes(graph, schedule).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::LayerId;

    fn g(l: usize) -> TrainGraph {
        TrainGraph::single_gpu(l)
    }

    #[test]
    fn conventional_order_validates() {
        let graph = g(6);
        validate_order(&graph, &graph.conventional_backprop()).unwrap();
    }

    #[test]
    fn missing_op_detected() {
        let graph = g(3);
        let mut order = graph.conventional_backprop();
        order.pop();
        assert!(matches!(
            validate_order(&graph, &order),
            Err(Error::MissingOp(_))
        ));
    }

    #[test]
    fn duplicate_op_detected() {
        let graph = g(3);
        let mut order = graph.conventional_backprop();
        let first = order[0];
        order.push(first);
        assert_eq!(
            validate_order(&graph, &order),
            Err(Error::DuplicateOp(first))
        );
    }

    #[test]
    fn unknown_op_detected() {
        let graph = g(3);
        let mut order = graph.conventional_backprop();
        order.push(Op::Forward(LayerId(99)));
        assert_eq!(
            validate_order(&graph, &order),
            Err(Error::UnknownOp(Op::Forward(LayerId(99))))
        );
    }

    #[test]
    fn dependency_violation_detected() {
        let graph = g(3);
        let mut order = graph.conventional_backprop();
        // Move the loss to the end: everything now precedes its dependency.
        order.rotate_left(1);
        assert!(matches!(
            validate_order(&graph, &order),
            Err(Error::DependencyViolation { .. })
        ));
    }

    #[test]
    fn partial_order_allows_subsets() {
        let graph = g(4);
        let order = vec![
            Op::Loss,
            Op::OutputGrad(LayerId(4)),
            Op::WeightGrad(LayerId(4)),
        ];
        validate_partial_order(&graph, &order).unwrap();
        // But still rejects in-subset violations.
        let bad = vec![Op::OutputGrad(LayerId(4)), Op::Loss];
        assert!(matches!(
            validate_partial_order(&graph, &bad),
            Err(Error::DependencyViolation { .. })
        ));
    }

    #[test]
    fn two_lane_schedule_validates() {
        let graph = g(4);
        // Main stream: loss, dO chain, updates, forwards. Sub-stream: dW.
        let mut main = vec![Op::Loss];
        for i in (2..=4).rev() {
            main.push(Op::OutputGrad(LayerId(i)));
        }
        for i in (1..=4).rev() {
            main.push(Op::Update(LayerId(i)));
        }
        for i in 1..=4 {
            main.push(Op::Forward(LayerId(i)));
        }
        let sub: Vec<Op> = (1..=4).rev().map(|i| Op::WeightGrad(LayerId(i))).collect();
        let mut s = Schedule::new();
        s.add_lane("main", main);
        s.add_lane("sub", sub);
        validate_schedule(&graph, &s).unwrap();
    }

    #[test]
    fn cross_lane_cycle_detected() {
        let graph = g(2);
        // Lane orders that cannot be interleaved: lane A wants U2 before
        // Loss, but U2 transitively depends on Loss.
        let mut s = Schedule::new();
        s.add_lane("a", vec![Op::Update(LayerId(2)), Op::Loss]);
        s.add_lane(
            "b",
            vec![
                Op::OutputGrad(LayerId(2)),
                Op::WeightGrad(LayerId(2)),
                Op::WeightGrad(LayerId(1)),
                Op::Update(LayerId(1)),
                Op::Forward(LayerId(1)),
                Op::Forward(LayerId(2)),
            ],
        );
        assert!(matches!(
            validate_schedule(&graph, &s),
            Err(Error::DependencyViolation { .. })
        ));
    }

    #[test]
    fn schedule_lane_lookup() {
        let mut s = Schedule::new();
        let a = s.add_lane("a", vec![Op::Loss]);
        let b = s.add_lane("b", vec![Op::WeightGrad(LayerId(1))]);
        assert_eq!(s.lane_of(Op::Loss), Some(a));
        assert_eq!(s.lane_of(Op::WeightGrad(LayerId(1))), Some(b));
        assert_eq!(s.lane_of(Op::Forward(LayerId(1))), None);
        assert_eq!(s.num_ops(), 2);
    }
}
