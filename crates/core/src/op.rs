//! Typed operations of one training iteration.
//!
//! The paper's Section 2 formulates the scheduling problem over the
//! operation set `C = {F_1, dW_1, S[dW_1], ...}`. This module defines that
//! operation alphabet. Layers are numbered `1..=L` as in the paper; layer
//! `L+1` conceptually holds the loss.

use std::fmt;

/// A 1-based layer index, matching the paper's notation (`1..=L`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LayerId(pub usize);

impl LayerId {
    /// Returns the raw 1-based index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One operation of a training iteration.
///
/// The variants mirror the paper's notation:
///
/// - `Forward(i)` is `F_i`, the forward computation of layer `i`.
/// - `Loss` is the loss-gradient computation; the paper writes it as
///   `dO_{L+1}` and pins it to time zero.
/// - `OutputGrad(i)` is `dO_i`: the gradient of the loss w.r.t. layer `i`'s
///   *input*, i.e. the activation gradient passed to layer `i-1`.
/// - `WeightGrad(i)` is `dW_i`: the gradient w.r.t. layer `i`'s weights.
///   This is the operation that out-of-order backprop is allowed to move.
/// - `Update(i)` is `U_i`, the optimizer step for layer `i`.
/// - `SyncWeightGrad(i)` is `S[dW_i]`: the parameter communication of
///   data-parallel training (all-reduce or PS push/pull).
/// - `SyncOutputGrad(i)` is `S[dO_i]`: the activation-gradient transfer of
///   pipeline-parallel training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Op {
    /// Forward computation `F_i`.
    Forward(LayerId),
    /// Loss-gradient computation, the root of the backward pass.
    Loss,
    /// Output-gradient computation `dO_i`.
    OutputGrad(LayerId),
    /// Weight-gradient computation `dW_i`.
    WeightGrad(LayerId),
    /// Weight update `U_i`.
    Update(LayerId),
    /// Parameter synchronization `S[dW_i]` of data-parallel training.
    SyncWeightGrad(LayerId),
    /// Activation-gradient transfer `S[dO_i]` of pipeline-parallel training.
    SyncOutputGrad(LayerId),
}

impl Op {
    /// Returns the layer this operation belongs to, or `None` for [`Op::Loss`].
    pub fn layer(self) -> Option<LayerId> {
        match self {
            Op::Forward(l)
            | Op::OutputGrad(l)
            | Op::WeightGrad(l)
            | Op::Update(l)
            | Op::SyncWeightGrad(l)
            | Op::SyncOutputGrad(l) => Some(l),
            Op::Loss => None,
        }
    }

    /// Returns `true` for the computation operations (`F`, `dO`, `dW`,
    /// `U`, loss), i.e. operations that occupy a compute device.
    pub fn is_compute(self) -> bool {
        !self.is_sync()
    }

    /// Returns `true` for the synchronization operations (`S[..]`), i.e.
    /// operations that occupy a communication link.
    pub fn is_sync(self) -> bool {
        matches!(self, Op::SyncWeightGrad(_) | Op::SyncOutputGrad(_))
    }

    /// Returns `true` if this is a backward-pass operation (loss, `dO`, or
    /// `dW`).
    pub fn is_backward(self) -> bool {
        matches!(self, Op::Loss | Op::OutputGrad(_) | Op::WeightGrad(_))
    }

    /// Returns `true` for weight-gradient computations, the operations that
    /// out-of-order backprop reorders.
    pub fn is_weight_grad(self) -> bool {
        matches!(self, Op::WeightGrad(_))
    }

    /// Returns `true` for the `dW`-class operations — the weight gradient
    /// itself plus its private consumers (`S[dW_i]`, `U_i`). These are the
    /// only operations out-of-order backprop may move relative to the
    /// conventional order; everything else is on the backward critical
    /// path or the next iteration's forward chain.
    pub fn is_weight_grad_class(self) -> bool {
        matches!(
            self,
            Op::WeightGrad(_) | Op::SyncWeightGrad(_) | Op::Update(_)
        )
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Forward(l) => write!(f, "F{}", l.0),
            Op::Loss => write!(f, "Loss"),
            Op::OutputGrad(l) => write!(f, "dO{}", l.0),
            Op::WeightGrad(l) => write!(f, "dW{}", l.0),
            Op::Update(l) => write!(f, "U{}", l.0),
            Op::SyncWeightGrad(l) => write!(f, "S[dW{}]", l.0),
            Op::SyncOutputGrad(l) => write!(f, "S[dO{}]", l.0),
        }
    }
}

impl std::str::FromStr for Op {
    type Err = String;

    /// Parses the paper notation produced by [`fmt::Display`]: `F4`,
    /// `dO4`, `dW4`, `U4`, `S[dW4]`, `S[dO4]`, `Loss`.
    fn from_str(s: &str) -> Result<Self, String> {
        fn layer(digits: &str, s: &str) -> Result<LayerId, String> {
            digits
                .parse::<usize>()
                .map(LayerId)
                .map_err(|_| format!("invalid op: {s:?}"))
        }
        if s == "Loss" {
            return Ok(Op::Loss);
        }
        if let Some(rest) = s.strip_prefix("S[dW").and_then(|r| r.strip_suffix(']')) {
            return layer(rest, s).map(Op::SyncWeightGrad);
        }
        if let Some(rest) = s.strip_prefix("S[dO").and_then(|r| r.strip_suffix(']')) {
            return layer(rest, s).map(Op::SyncOutputGrad);
        }
        if let Some(rest) = s.strip_prefix("dO") {
            return layer(rest, s).map(Op::OutputGrad);
        }
        if let Some(rest) = s.strip_prefix("dW") {
            return layer(rest, s).map(Op::WeightGrad);
        }
        if let Some(rest) = s.strip_prefix('F') {
            return layer(rest, s).map(Op::Forward);
        }
        if let Some(rest) = s.strip_prefix('U') {
            return layer(rest, s).map(Op::Update);
        }
        Err(format!("invalid op: {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_accessor() {
        assert_eq!(Op::Forward(LayerId(3)).layer(), Some(LayerId(3)));
        assert_eq!(Op::Loss.layer(), None);
        assert_eq!(Op::SyncWeightGrad(LayerId(1)).layer(), Some(LayerId(1)));
    }

    #[test]
    fn classification() {
        assert!(Op::Forward(LayerId(1)).is_compute());
        assert!(!Op::Forward(LayerId(1)).is_sync());
        assert!(Op::SyncWeightGrad(LayerId(1)).is_sync());
        assert!(!Op::SyncWeightGrad(LayerId(1)).is_compute());
        assert!(Op::Loss.is_backward());
        assert!(Op::OutputGrad(LayerId(2)).is_backward());
        assert!(Op::WeightGrad(LayerId(2)).is_backward());
        assert!(!Op::Update(LayerId(2)).is_backward());
        assert!(Op::WeightGrad(LayerId(2)).is_weight_grad());
        assert!(!Op::OutputGrad(LayerId(2)).is_weight_grad());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Op::Forward(LayerId(4)).to_string(), "F4");
        assert_eq!(Op::OutputGrad(LayerId(4)).to_string(), "dO4");
        assert_eq!(Op::WeightGrad(LayerId(4)).to_string(), "dW4");
        assert_eq!(Op::SyncWeightGrad(LayerId(4)).to_string(), "S[dW4]");
        assert_eq!(Op::Loss.to_string(), "Loss");
    }

    #[test]
    fn parse_round_trips_display() {
        let ops = [
            Op::Forward(LayerId(4)),
            Op::Loss,
            Op::OutputGrad(LayerId(12)),
            Op::WeightGrad(LayerId(1)),
            Op::Update(LayerId(7)),
            Op::SyncWeightGrad(LayerId(30)),
            Op::SyncOutputGrad(LayerId(2)),
        ];
        for op in ops {
            assert_eq!(op.to_string().parse::<Op>().unwrap(), op);
        }
        for bad in ["", "G4", "dW", "S[dWx]", "F-1", "loss"] {
            assert!(bad.parse::<Op>().is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut ops = vec![
            Op::WeightGrad(LayerId(1)),
            Op::Forward(LayerId(2)),
            Op::Loss,
            Op::Forward(LayerId(1)),
        ];
        ops.sort();
        // The derived order is only used for deterministic tie-breaking;
        // what matters is that it is total and stable.
        let again = {
            let mut v = ops.clone();
            v.sort();
            v
        };
        assert_eq!(ops, again);
    }
}
