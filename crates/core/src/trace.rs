//! Structured execution tracing shared by the three simulators.
//!
//! The paper derives out-of-order backprop from per-kernel GPU timelines
//! (Section 2): idle SM intervals and serialized `dW` chains only become
//! visible when every kernel, transfer, and stall is laid out on a common
//! time axis. This module is that axis. A [`Timeline`] holds named
//! [`Lane`]s of non-overlapping [`Span`]s (kernels, transfers, pipeline
//! tasks, explicit stalls) plus sampled [`Counter`]s (e.g. SM slots in
//! use), and can
//!
//! - check its own well-formedness ([`Timeline::validate`]),
//! - reduce itself to headline metrics ([`Timeline::summarize`]): per-lane
//!   busy/stall time and utilization, time-weighted counter means, and
//! - round-trip through the Chrome trace-event JSON format
//!   ([`Timeline::to_chrome_json`] / [`Timeline::from_chrome_json`]) so
//!   any trace loads directly in Perfetto or `chrome://tracing`.
//!
//! The emitters live next to the simulators: `gpusim` renders its kernel
//! records and occupancy samples, `netsim` its link service intervals, and
//! the `cluster` engines their per-device compute/communication lanes.

use crate::error::{Error, Result};
use crate::json::{obj, Value};
use crate::SimTime;

/// Span category used for explicit idle intervals.
///
/// Spans in this category count toward a lane's stall time instead of its
/// busy time in [`Timeline::summarize`].
pub const CAT_STALL: &str = "stall";

/// One closed interval of activity on a lane.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Display name (e.g. a kernel or tensor name).
    pub name: String,
    /// Category: `"kernel"`, `"transfer"`, `"compute"`, [`CAT_STALL`], …
    pub cat: String,
    /// Start time in simulated nanoseconds.
    pub start_ns: SimTime,
    /// End time in simulated nanoseconds (`end_ns >= start_ns`).
    pub end_ns: SimTime,
    /// Numeric key/value annotations (block counts, bytes, layer ids, …).
    pub args: Vec<(String, f64)>,
}

impl Span {
    /// A span without annotations.
    pub fn new(
        name: impl Into<String>,
        cat: impl Into<String>,
        start_ns: SimTime,
        end_ns: SimTime,
    ) -> Self {
        Span {
            name: name.into(),
            cat: cat.into(),
            start_ns,
            end_ns,
            args: Vec::new(),
        }
    }

    /// The span's duration in nanoseconds.
    pub fn duration_ns(&self) -> SimTime {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A named sequence of non-overlapping spans (one GPU stream, one link
/// direction, one pipeline device, …). Maps to one Chrome-trace thread.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Lane {
    /// Display name (e.g. `"stream0"`, `"uplink"`, `"gpu2"`).
    pub name: String,
    /// Spans, kept ordered by `start_ns`.
    pub spans: Vec<Span>,
}

/// A sampled scalar tracked over time (e.g. SM slots in use).
///
/// Each sample `(t, v)` means the value is `v` from `t` until the next
/// sample (or the end of the timeline).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Counter {
    /// Display name (e.g. `"sm_slots_in_use"`).
    pub name: String,
    /// The value's physical maximum, when one exists; lets
    /// [`Timeline::summarize`] report the mean as an occupancy fraction.
    pub capacity: Option<f64>,
    /// `(time_ns, value)` samples ordered by time.
    pub samples: Vec<(SimTime, f64)>,
}

/// A complete trace: lanes plus counters under one display name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Timeline {
    /// Display name for the whole trace (engine/model identifier).
    pub name: String,
    /// Span lanes, in display order.
    pub lanes: Vec<Lane>,
    /// Counters, in display order.
    pub counters: Vec<Counter>,
}

impl Timeline {
    /// An empty timeline with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        Timeline {
            name: name.into(),
            ..Timeline::default()
        }
    }

    /// Returns the lane with the given name, creating it (at the end of
    /// the display order) when absent.
    pub fn lane_mut(&mut self, name: &str) -> &mut Lane {
        if let Some(i) = self.lanes.iter().position(|l| l.name == name) {
            return &mut self.lanes[i];
        }
        self.lanes.push(Lane {
            name: name.to_string(),
            spans: Vec::new(),
        });
        self.lanes.last_mut().expect("just pushed")
    }

    /// Returns the counter with the given name, creating it when absent.
    pub fn counter_mut(&mut self, name: &str, capacity: Option<f64>) -> &mut Counter {
        if let Some(i) = self.counters.iter().position(|c| c.name == name) {
            return &mut self.counters[i];
        }
        self.counters.push(Counter {
            name: name.to_string(),
            capacity,
            samples: Vec::new(),
        });
        self.counters.last_mut().expect("just pushed")
    }

    /// The end of the timeline: the maximum span end or counter sample
    /// time, or 0 for an empty trace.
    pub fn horizon_ns(&self) -> SimTime {
        let span_max = self
            .lanes
            .iter()
            .flat_map(|l| l.spans.iter().map(|s| s.end_ns))
            .max()
            .unwrap_or(0);
        let counter_max = self
            .counters
            .iter()
            .flat_map(|c| c.samples.iter().map(|&(t, _)| t))
            .max()
            .unwrap_or(0);
        span_max.max(counter_max)
    }

    /// Checks structural well-formedness.
    ///
    /// Every span must satisfy `end_ns >= start_ns`; within one lane
    /// spans must be ordered by start time and must not overlap; counter
    /// samples must be ordered by time.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MalformedTrace`] naming the first offending lane,
    /// span, or counter.
    pub fn validate(&self) -> Result<()> {
        for lane in &self.lanes {
            for (i, s) in lane.spans.iter().enumerate() {
                if s.end_ns < s.start_ns {
                    return Err(Error::MalformedTrace(format!(
                        "lane {:?} span {:?} (index {i}) ends at {} before it starts at {}",
                        lane.name, s.name, s.end_ns, s.start_ns
                    )));
                }
                if i > 0 {
                    let prev = &lane.spans[i - 1];
                    if s.start_ns < prev.start_ns {
                        return Err(Error::MalformedTrace(format!(
                            "lane {:?} spans out of order: {:?} at {} after {:?} at {}",
                            lane.name, s.name, s.start_ns, prev.name, prev.start_ns
                        )));
                    }
                    if s.start_ns < prev.end_ns {
                        return Err(Error::MalformedTrace(format!(
                            "lane {:?} spans overlap: {:?} starts at {} before {:?} ends at {}",
                            lane.name, s.name, s.start_ns, prev.name, prev.end_ns
                        )));
                    }
                }
            }
        }
        for c in &self.counters {
            for w in c.samples.windows(2) {
                if w[1].0 < w[0].0 {
                    return Err(Error::MalformedTrace(format!(
                        "counter {:?} samples out of order at t = {}",
                        c.name, w[1].0
                    )));
                }
            }
        }
        Ok(())
    }

    /// Reduces the timeline to its headline metrics.
    ///
    /// The reported horizon is [`Timeline::horizon_ns`]; all utilizations
    /// are fractions of that shared horizon so that lanes are directly
    /// comparable.
    pub fn summarize(&self) -> TraceSummary {
        let horizon = self.horizon_ns();
        let lanes = self
            .lanes
            .iter()
            .map(|lane| {
                let busy_ns: SimTime = lane
                    .spans
                    .iter()
                    .filter(|s| s.cat != CAT_STALL)
                    .map(Span::duration_ns)
                    .sum();
                let stall_ns: SimTime = lane
                    .spans
                    .iter()
                    .filter(|s| s.cat == CAT_STALL)
                    .map(Span::duration_ns)
                    .sum();
                LaneSummary {
                    lane: lane.name.clone(),
                    span_count: lane.spans.len(),
                    busy_ns,
                    stall_ns,
                    utilization: if horizon == 0 {
                        0.0
                    } else {
                        busy_ns as f64 / horizon as f64
                    },
                }
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|c| {
                let mean = counter_time_weighted_mean(c, horizon);
                CounterSummary {
                    counter: c.name.clone(),
                    mean,
                    capacity: c.capacity,
                    mean_fraction: c.capacity.filter(|&cap| cap > 0.0).map(|cap| mean / cap),
                }
            })
            .collect();
        TraceSummary {
            name: self.name.clone(),
            horizon_ns: horizon,
            lanes,
            counters,
        }
    }

    /// Serializes to a Chrome trace-event [`Value`]
    /// (`{"traceEvents": […], "displayTimeUnit": "ns", …}`).
    ///
    /// Lanes become threads of process 0 (named via `"M"` metadata
    /// events), spans become `"X"` complete events, counters become
    /// `"C"` counter events. Timestamps are microseconds, as the format
    /// requires; nanosecond precision survives in the fraction.
    pub fn to_chrome_value(&self) -> Value {
        let mut events: Vec<Value> = Vec::new();
        for (tid, lane) in self.lanes.iter().enumerate() {
            events.push(obj([
                ("name", "thread_name".into()),
                ("ph", "M".into()),
                ("pid", 0usize.into()),
                ("tid", tid.into()),
                ("args", obj([("name", lane.name.as_str().into())])),
            ]));
            for s in &lane.spans {
                let mut ev = vec![
                    ("name".to_string(), Value::Str(s.name.clone())),
                    ("cat".to_string(), Value::Str(s.cat.clone())),
                    ("ph".to_string(), Value::Str("X".to_string())),
                    ("ts".to_string(), Value::Num(ns_to_us(s.start_ns))),
                    ("dur".to_string(), Value::Num(ns_to_us(s.duration_ns()))),
                    ("pid".to_string(), Value::Num(0.0)),
                    ("tid".to_string(), Value::Num(tid as f64)),
                ];
                if !s.args.is_empty() {
                    ev.push((
                        "args".to_string(),
                        Value::Obj(
                            s.args
                                .iter()
                                .map(|(k, v)| (k.clone(), Value::Num(*v)))
                                .collect(),
                        ),
                    ));
                }
                events.push(Value::Obj(ev));
            }
        }
        for c in &self.counters {
            for &(t, v) in &c.samples {
                events.push(obj([
                    ("name", c.name.as_str().into()),
                    ("ph", "C".into()),
                    ("ts", Value::Num(ns_to_us(t))),
                    ("pid", 0usize.into()),
                    ("args", obj([("value", Value::Num(v))])),
                ]));
            }
        }
        let capacities: Vec<(String, Value)> = self
            .counters
            .iter()
            .filter_map(|c| c.capacity.map(|cap| (c.name.clone(), Value::Num(cap))))
            .collect();
        obj([
            ("traceEvents", Value::Arr(events)),
            ("displayTimeUnit", "ns".into()),
            (
                "otherData",
                Value::Obj(vec![
                    ("name".to_string(), Value::Str(self.name.clone())),
                    ("counterCapacities".to_string(), Value::Obj(capacities)),
                ]),
            ),
        ])
    }

    /// Serializes to pretty-printed Chrome trace-event JSON.
    pub fn to_chrome_json(&self) -> String {
        self.to_chrome_value().to_pretty()
    }

    /// Reconstructs a timeline from a Chrome trace-event [`Value`]
    /// produced by [`Timeline::to_chrome_value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::MalformedTrace`] when the document is not a
    /// Chrome trace object or an event is missing a required field.
    pub fn from_chrome_value(v: &Value) -> Result<Timeline> {
        let bad = |msg: &str| Error::MalformedTrace(msg.to_string());
        let events = v
            .get("traceEvents")
            .and_then(Value::as_arr)
            .ok_or_else(|| bad("missing \"traceEvents\" array"))?;
        let other = v.get("otherData");
        let mut tl = Timeline::new(
            other
                .and_then(|o| o.get("name"))
                .and_then(Value::as_str)
                .unwrap_or(""),
        );
        let capacities = other
            .and_then(|o| o.get("counterCapacities"))
            .and_then(Value::as_obj)
            .unwrap_or(&[]);
        // tid -> lane name (from metadata), plus spans gathered per tid.
        let mut lane_names: Vec<(usize, String)> = Vec::new();
        let mut lane_spans: Vec<(usize, Vec<Span>)> = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            let ph = ev
                .get("ph")
                .and_then(Value::as_str)
                .ok_or_else(|| Error::MalformedTrace(format!("event {i}: missing \"ph\"")))?;
            let field_ns = |key: &str| -> Result<SimTime> {
                ev.get(key)
                    .and_then(Value::as_f64)
                    .map(us_to_ns)
                    .ok_or_else(|| {
                        Error::MalformedTrace(format!("event {i}: missing number {key:?}"))
                    })
            };
            let name = |key: &str| -> Result<String> {
                ev.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| {
                        Error::MalformedTrace(format!("event {i}: missing string {key:?}"))
                    })
            };
            match ph {
                "M" if ev.get("name").and_then(Value::as_str) == Some("thread_name") => {
                    let tid = ev
                        .get("tid")
                        .and_then(Value::as_usize)
                        .ok_or_else(|| Error::MalformedTrace(format!("event {i}: bad tid")))?;
                    let lane = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                        .ok_or_else(|| {
                            Error::MalformedTrace(format!(
                                "event {i}: thread_name without args.name"
                            ))
                        })?;
                    lane_names.push((tid, lane.to_string()));
                }
                "X" => {
                    let tid = ev
                        .get("tid")
                        .and_then(Value::as_usize)
                        .ok_or_else(|| Error::MalformedTrace(format!("event {i}: bad tid")))?;
                    let start_ns = field_ns("ts")?;
                    let mut span = Span::new(
                        name("name")?,
                        name("cat").unwrap_or_default(),
                        start_ns,
                        start_ns + field_ns("dur")?,
                    );
                    if let Some(args) = ev.get("args").and_then(Value::as_obj) {
                        span.args = args
                            .iter()
                            .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                            .collect();
                    }
                    match lane_spans.iter_mut().find(|(t, _)| *t == tid) {
                        Some((_, spans)) => spans.push(span),
                        None => lane_spans.push((tid, vec![span])),
                    }
                }
                "C" => {
                    let cname = name("name")?;
                    let t = field_ns("ts")?;
                    let value = ev
                        .get("args")
                        .and_then(|a| a.get("value"))
                        .and_then(Value::as_f64)
                        .ok_or_else(|| {
                            Error::MalformedTrace(format!("event {i}: counter without args.value"))
                        })?;
                    let capacity = capacities
                        .iter()
                        .find(|(k, _)| *k == cname)
                        .and_then(|(_, v)| v.as_f64());
                    tl.counter_mut(&cname, capacity).samples.push((t, value));
                }
                _ => {} // Other phases (instants, flows, …) are ignored.
            }
        }
        lane_names.sort_by_key(|&(tid, _)| tid);
        for (tid, lname) in &lane_names {
            let spans = lane_spans
                .iter_mut()
                .find(|(t, _)| t == tid)
                .map(|(_, s)| std::mem::take(s))
                .unwrap_or_default();
            tl.lanes.push(Lane {
                name: lname.clone(),
                spans,
            });
        }
        // Spans whose tid had no thread_name metadata get synthetic lanes.
        lane_spans.retain(|(_, s)| !s.is_empty());
        lane_spans.sort_by_key(|&(tid, _)| tid);
        for (tid, spans) in lane_spans {
            tl.lanes.push(Lane {
                name: format!("tid{tid}"),
                spans,
            });
        }
        Ok(tl)
    }

    /// Reconstructs a timeline from Chrome trace-event JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MalformedTrace`] on both JSON syntax errors and
    /// schema violations.
    pub fn from_chrome_json(text: &str) -> Result<Timeline> {
        let v = Value::parse(text).map_err(Error::MalformedTrace)?;
        Timeline::from_chrome_value(&v)
    }
}

/// Per-lane reduction of a [`Timeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSummary {
    /// Lane name.
    pub lane: String,
    /// Number of spans on the lane.
    pub span_count: usize,
    /// Total duration of non-stall spans.
    pub busy_ns: SimTime,
    /// Total duration of explicit [`CAT_STALL`] spans.
    pub stall_ns: SimTime,
    /// `busy_ns` as a fraction of the timeline horizon.
    pub utilization: f64,
}

/// Per-counter reduction of a [`Timeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSummary {
    /// Counter name.
    pub counter: String,
    /// Time-weighted mean value over the timeline horizon.
    pub mean: f64,
    /// Declared capacity, when present.
    pub capacity: Option<f64>,
    /// `mean / capacity` when a positive capacity is declared — e.g. SM
    /// occupancy as a fraction.
    pub mean_fraction: Option<f64>,
}

/// Headline metrics derived from a [`Timeline`] by
/// [`Timeline::summarize`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Timeline display name.
    pub name: String,
    /// Timeline horizon (see [`Timeline::horizon_ns`]).
    pub horizon_ns: SimTime,
    /// One entry per lane, in display order.
    pub lanes: Vec<LaneSummary>,
    /// One entry per counter, in display order.
    pub counters: Vec<CounterSummary>,
}

impl TraceSummary {
    /// Looks up a lane summary by name.
    pub fn lane(&self, name: &str) -> Option<&LaneSummary> {
        self.lanes.iter().find(|l| l.lane == name)
    }

    /// Looks up a counter summary by name.
    pub fn counter(&self, name: &str) -> Option<&CounterSummary> {
        self.counters.iter().find(|c| c.counter == name)
    }

    /// Renders the summary as an aligned human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace {:?}: horizon {} ns, {} lanes, {} counters\n",
            self.name,
            self.horizon_ns,
            self.lanes.len(),
            self.counters.len()
        ));
        let width = self
            .lanes
            .iter()
            .map(|l| l.lane.len())
            .chain(self.counters.iter().map(|c| c.counter.len()))
            .max()
            .unwrap_or(4)
            .max(4);
        for l in &self.lanes {
            out.push_str(&format!(
                "  lane    {:width$}  busy {:>12} ns  stall {:>12} ns  util {:>6.1}%  ({} spans)\n",
                l.lane,
                l.busy_ns,
                l.stall_ns,
                l.utilization * 100.0,
                l.span_count,
            ));
        }
        for c in &self.counters {
            match (c.capacity, c.mean_fraction) {
                (Some(cap), Some(frac)) => out.push_str(&format!(
                    "  counter {:width$}  mean {:>12.2}     of {:>12.0}     occ  {:>6.1}%\n",
                    c.counter,
                    c.mean,
                    cap,
                    frac * 100.0,
                )),
                _ => out.push_str(&format!(
                    "  counter {:width$}  mean {:>12.2}\n",
                    c.counter, c.mean
                )),
            }
        }
        out
    }
}

/// The integral of a counter over `[first_sample_time, horizon_ns]`,
/// in value·nanoseconds. Each sample holds until the next one; the last
/// holds until the horizon.
pub fn counter_integral(counter: &Counter, horizon_ns: SimTime) -> f64 {
    let mut total = 0.0;
    for (i, &(t, v)) in counter.samples.iter().enumerate() {
        let until = counter
            .samples
            .get(i + 1)
            .map(|&(t2, _)| t2)
            .unwrap_or(horizon_ns)
            .max(t);
        total += v * (until - t) as f64;
    }
    total
}

/// The time-weighted mean of a counter over `[0, horizon_ns]`, treating
/// the value as 0 before the first sample.
pub fn counter_time_weighted_mean(counter: &Counter, horizon_ns: SimTime) -> f64 {
    if horizon_ns == 0 {
        return 0.0;
    }
    counter_integral(counter, horizon_ns) / horizon_ns as f64
}

fn ns_to_us(ns: SimTime) -> f64 {
    ns as f64 / 1000.0
}

fn us_to_ns(us: f64) -> SimTime {
    (us * 1000.0).round() as SimTime
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_timeline() -> Timeline {
        let mut tl = Timeline::new("sample");
        let lane = tl.lane_mut("stream0");
        lane.spans.push(Span::new("F1", "kernel", 0, 100));
        lane.spans.push(Span::new("idle", CAT_STALL, 100, 150));
        let mut s = Span::new("dW1", "kernel", 150, 400);
        s.args.push(("blocks".to_string(), 8.0));
        lane.spans.push(s);
        let lane = tl.lane_mut("uplink");
        lane.spans.push(Span::new("S[dW1]", "transfer", 200, 380));
        let c = tl.counter_mut("sm_slots_in_use", Some(4.0));
        c.samples.push((0, 2.0));
        c.samples.push((100, 0.0));
        c.samples.push((150, 4.0));
        tl
    }

    #[test]
    fn validate_accepts_well_formed() {
        sample_timeline().validate().unwrap();
    }

    #[test]
    fn validate_rejects_overlap_and_disorder() {
        let mut tl = sample_timeline();
        tl.lanes[0].spans[1].start_ns = 90; // overlaps F1
        assert!(matches!(
            tl.validate(),
            Err(Error::MalformedTrace(msg)) if msg.contains("overlap")
        ));

        let mut tl = sample_timeline();
        tl.lanes[0].spans[2].end_ns = 120; // ends before it starts
        assert!(tl.validate().is_err());

        let mut tl = sample_timeline();
        tl.counters[0].samples.swap(0, 2);
        assert!(matches!(
            tl.validate(),
            Err(Error::MalformedTrace(msg)) if msg.contains("counter")
        ));
    }

    #[test]
    fn summarize_matches_hand_computation() {
        let s = sample_timeline().summarize();
        assert_eq!(s.horizon_ns, 400);
        let l0 = s.lane("stream0").unwrap();
        assert_eq!(l0.busy_ns, 350);
        assert_eq!(l0.stall_ns, 50);
        assert!((l0.utilization - 350.0 / 400.0).abs() < 1e-12);
        let up = s.lane("uplink").unwrap();
        assert_eq!(up.busy_ns, 180);
        assert_eq!(up.stall_ns, 0);
        // Counter: 2.0 for 100 ns, 0.0 for 50 ns, 4.0 for 250 ns.
        let c = s.counter("sm_slots_in_use").unwrap();
        let expect = (2.0 * 100.0 + 4.0 * 250.0) / 400.0;
        assert!((c.mean - expect).abs() < 1e-12);
        assert!((c.mean_fraction.unwrap() - expect / 4.0).abs() < 1e-12);
    }

    #[test]
    fn chrome_round_trip_is_identity() {
        let tl = sample_timeline();
        let json = tl.to_chrome_json();
        let back = Timeline::from_chrome_json(&json).unwrap();
        assert_eq!(tl, back);
    }

    #[test]
    fn from_chrome_rejects_malformed_documents() {
        assert!(Timeline::from_chrome_json("{not json").is_err());
        assert!(Timeline::from_chrome_json("{\"a\": 1}").is_err());
        // An X event without a ts is a schema violation, not a panic.
        let doc = r#"{"traceEvents": [{"ph": "X", "name": "k", "tid": 0, "dur": 1}]}"#;
        assert!(matches!(
            Timeline::from_chrome_json(doc),
            Err(Error::MalformedTrace(msg)) if msg.contains("ts")
        ));
    }

    #[test]
    fn spans_without_metadata_get_synthetic_lanes() {
        let doc = r#"{"traceEvents": [
            {"ph": "X", "name": "k", "cat": "kernel", "ts": 1.5, "dur": 2, "pid": 0, "tid": 7}
        ]}"#;
        let tl = Timeline::from_chrome_json(doc).unwrap();
        assert_eq!(tl.lanes.len(), 1);
        assert_eq!(tl.lanes[0].name, "tid7");
        assert_eq!(tl.lanes[0].spans[0].start_ns, 1500);
        assert_eq!(tl.lanes[0].spans[0].end_ns, 3500);
    }

    #[test]
    fn ns_survive_microsecond_encoding() {
        for ns in [0u64, 1, 999, 1000, 123_456_789, 10_u64.pow(15) + 1] {
            assert_eq!(us_to_ns(ns_to_us(ns)), ns);
        }
    }

    /// Golden fixture: the exact Chrome trace-event JSON for a small
    /// timeline. Guards the interchange format — a serialization change
    /// that breaks previously exported traces must show up here — and the
    /// fixture itself must parse back to the identical timeline.
    #[test]
    fn golden_chrome_json_is_stable() {
        let mut tl = Timeline::new("golden");
        let lane = tl.lane_mut("stream0");
        lane.spans.push(Span::new("F1", "kernel", 0, 1500));
        lane.spans.push(Span::new("idle", CAT_STALL, 1500, 2000));
        let mut s = Span::new("dW1", "kernel", 2000, 4500);
        s.args.push(("blocks".to_string(), 8.0));
        lane.spans.push(s);
        let c = tl.counter_mut("sm_slots_in_use", Some(4.0));
        c.samples.push((0, 2.0));
        c.samples.push((2000, 4.0));

        let golden = r#"{
  "traceEvents": [
    {
      "name": "thread_name",
      "ph": "M",
      "pid": 0,
      "tid": 0,
      "args": {
        "name": "stream0"
      }
    },
    {
      "name": "F1",
      "cat": "kernel",
      "ph": "X",
      "ts": 0,
      "dur": 1.5,
      "pid": 0,
      "tid": 0
    },
    {
      "name": "idle",
      "cat": "stall",
      "ph": "X",
      "ts": 1.5,
      "dur": 0.5,
      "pid": 0,
      "tid": 0
    },
    {
      "name": "dW1",
      "cat": "kernel",
      "ph": "X",
      "ts": 2,
      "dur": 2.5,
      "pid": 0,
      "tid": 0,
      "args": {
        "blocks": 8
      }
    },
    {
      "name": "sm_slots_in_use",
      "ph": "C",
      "ts": 0,
      "pid": 0,
      "args": {
        "value": 2
      }
    },
    {
      "name": "sm_slots_in_use",
      "ph": "C",
      "ts": 2,
      "pid": 0,
      "args": {
        "value": 4
      }
    }
  ],
  "displayTimeUnit": "ns",
  "otherData": {
    "name": "golden",
    "counterCapacities": {
      "sm_slots_in_use": 4
    }
  }
}"#;
        assert_eq!(tl.to_chrome_json(), golden);
        assert_eq!(Timeline::from_chrome_json(golden).unwrap(), tl);
    }
}
