//! Combining the scheduling techniques (the paper's Section 6).
//!
//! The three algorithms compose because they act on disjoint degrees of
//! freedom: reverse first-k fixes *when* the first `k` weight gradients
//! run (early, to start their critical synchronizations), while gradient
//! fast-forwarding delays the remaining `L-k` weight gradients (so output
//! gradients reach the next pipeline stage or the main stream promptly).
//! The paper leaves finding the optimal split as future work; here the
//! mechanism is implemented together with a simple search built on the
//! concave `k`-search.

use crate::error::Result;
use crate::graph::TrainGraph;
use crate::op::{LayerId, Op};
use crate::reverse_k::search_optimal_k;

/// Backward-pass order combining reverse first-k scheduling (layers
/// `1..=k`) with gradient fast-forwarding (layers `k+1..=L`):
///
/// 1. the loss and the full output-gradient chain `dO_L .. dO_2` (nothing
///    delays the critical path);
/// 2. `dW_1, dW_2, …, dW_k` — the reversed critical weight gradients whose
///    synchronizations gate the next forward pass;
/// 3. `dW_L, …, dW_{k+1}` — the fast-forwarded remainder, filling the
///    synchronization window.
///
/// # Errors
///
/// Returns [`crate::Error::InvalidConfig`] when `k` exceeds the layer
/// count.
pub fn combined_backward_order(graph: &TrainGraph, k: usize) -> Result<Vec<Op>> {
    let l = graph.layers();
    if k > l {
        return Err(crate::Error::InvalidConfig(format!(
            "k = {k} exceeds layer count {l}"
        )));
    }
    let mut order = vec![Op::Loss];
    for i in (1..=l).rev() {
        if graph.contains(Op::OutputGrad(LayerId(i))) {
            order.push(Op::OutputGrad(LayerId(i)));
        }
    }
    for i in 1..=k {
        order.push(Op::WeightGrad(LayerId(i)));
    }
    for i in ((k + 1)..=l).rev() {
        order.push(Op::WeightGrad(LayerId(i)));
    }
    Ok(order)
}

/// Splits the weight gradients for the "multi-stream + reverse first-k"
/// combination: layers `1..=k` go to the data-parallel reordering (their
/// synchronizations are critical) and layers `k+1..=L` to the sub-stream
/// of multi-region joint scheduling.
pub fn split_weight_grads(graph: &TrainGraph, k: usize) -> (Vec<Op>, Vec<Op>) {
    let l = graph.layers();
    let k = k.min(l);
    let first: Vec<Op> = (1..=k).map(|i| Op::WeightGrad(LayerId(i))).collect();
    let rest: Vec<Op> = ((k + 1)..=l)
        .rev()
        .map(|i| Op::WeightGrad(LayerId(i)))
        .collect();
    (first, rest)
}

/// Searches for the best split `k` for a combined schedule using the same
/// concave heuristic as reverse first-k; `throughput(k)` evaluates a full
/// combined schedule (e.g. via the cluster simulator).
pub fn choose_split_k<F>(layers: usize, throughput: F) -> usize
where
    F: FnMut(usize) -> f64,
{
    search_optimal_k(layers, throughput)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::validate_partial_order;

    #[test]
    fn combined_order_is_valid_for_all_k() {
        for l in 2..=12 {
            let g = TrainGraph::data_parallel(l);
            for k in 0..=l {
                let order = combined_backward_order(&g, k).unwrap();
                validate_partial_order(&g, &order).unwrap();
                assert_eq!(order.iter().filter(|o| o.is_weight_grad()).count(), l);
            }
        }
    }

    #[test]
    fn combined_order_structure() {
        let g = TrainGraph::data_parallel(6);
        let order = combined_backward_order(&g, 2).unwrap();
        // dO chain first (after the loss), then dW_1, dW_2, then dW_6..dW_3.
        assert_eq!(order[0], Op::Loss);
        assert_eq!(order[1], Op::OutputGrad(LayerId(6)));
        assert_eq!(order[6], Op::WeightGrad(LayerId(1)));
        assert_eq!(order[7], Op::WeightGrad(LayerId(2)));
        assert_eq!(order[8], Op::WeightGrad(LayerId(6)));
        assert_eq!(*order.last().unwrap(), Op::WeightGrad(LayerId(3)));
    }

    #[test]
    fn oversized_k_rejected() {
        let g = TrainGraph::data_parallel(3);
        assert!(combined_backward_order(&g, 4).is_err());
    }

    #[test]
    fn split_covers_all_weight_grads() {
        let g = TrainGraph::single_gpu(9);
        let (a, b) = split_weight_grads(&g, 4);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 5);
        assert_eq!(a[0], Op::WeightGrad(LayerId(1)));
        assert_eq!(b[0], Op::WeightGrad(LayerId(9)));
    }

    #[test]
    fn choose_split_finds_peak() {
        let k = choose_split_k(40, |k| -((k as f64 - 11.0).abs()));
        assert_eq!(k, 11);
    }
}
