//! Acceptance tests of the end-to-end tracing path: single-GPU ResNet-50
//! through the simulator, Chrome-JSON export, re-import, and the
//! summarize metrics — which must agree exactly with totals recomputed
//! from the raw spans.

use ooo_cluster::single::{run_traced, Engine};
use ooo_core::trace::{counter_time_weighted_mean, Timeline, CAT_STALL};
use ooo_models::zoo::resnet;
use ooo_models::GpuProfile;

#[test]
fn resnet50_summarize_agrees_with_raw_spans_across_export() {
    let (report, timeline) =
        run_traced(&resnet(50), 64, &GpuProfile::v100(), Engine::OooXla).expect("simulation");
    timeline.validate().expect("well-formed timeline");

    // Round-trip through the on-disk format the `ooo-trace` CLI emits.
    let json = timeline.to_chrome_json();
    let back = Timeline::from_chrome_json(&json).expect("re-import");
    assert_eq!(timeline, back, "export is not lossless");

    // The summary must agree with totals recomputed from raw spans.
    let summary = back.summarize();
    assert_eq!(summary.horizon_ns, timeline.horizon_ns());
    for lane in &back.lanes {
        let busy: u64 = lane
            .spans
            .iter()
            .filter(|s| s.cat != CAT_STALL)
            .map(|s| s.end_ns - s.start_ns)
            .sum();
        let stall: u64 = lane
            .spans
            .iter()
            .filter(|s| s.cat == CAT_STALL)
            .map(|s| s.end_ns - s.start_ns)
            .sum();
        let ls = summary.lane(&lane.name).expect("lane summarized");
        assert_eq!(ls.busy_ns, busy, "lane {} busy", lane.name);
        assert_eq!(ls.stall_ns, stall, "lane {} stall", lane.name);
        assert_eq!(ls.span_count, lane.spans.len());
        let util = busy as f64 / summary.horizon_ns as f64;
        assert!(
            (ls.utilization - util).abs() < 1e-12,
            "lane {} utilization",
            lane.name
        );
    }
    for c in &back.counters {
        let cs = summary.counter(&c.name).expect("counter summarized");
        let mean = counter_time_weighted_mean(c, summary.horizon_ns);
        assert!((cs.mean - mean).abs() < 1e-9, "counter {} mean", c.name);
    }

    // The trace covers the simulated iterations and both streams worked.
    assert!(summary.horizon_ns >= report.iter_ns);
    assert!(summary.lane("stream0").unwrap().busy_ns > 0);
    assert!(summary.lane("stream1").unwrap().busy_ns > 0);
}

#[test]
fn exported_json_has_the_chrome_trace_shape() {
    let (_, timeline) =
        run_traced(&resnet(50), 32, &GpuProfile::v100(), Engine::Xla).expect("simulation");
    let json = timeline.to_chrome_json();
    // Perfetto/chrome://tracing requirements: a traceEvents array of
    // objects each carrying a phase, and complete events with ts+dur.
    let v = ooo_core::json::Value::parse(&json).expect("self-parse");
    let events = v
        .get("traceEvents")
        .and_then(ooo_core::json::Value::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(ooo_core::json::Value::as_str)
            .expect("event phase");
        match ph {
            "X" => {
                assert!(ev
                    .get("ts")
                    .and_then(ooo_core::json::Value::as_f64)
                    .is_some());
                assert!(ev
                    .get("dur")
                    .and_then(ooo_core::json::Value::as_f64)
                    .is_some());
                assert!(ev
                    .get("name")
                    .and_then(ooo_core::json::Value::as_str)
                    .is_some());
            }
            "C" => {
                assert!(ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(ooo_core::json::Value::as_f64)
                    .is_some());
            }
            "M" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
}
