//! Pipeline-parallel training engine (the paper's Section 8.4).
//!
//! Thin orchestration over `ooo-core`'s pipeline simulator: model costs
//! come from the zoo (scaled to the micro-batch size), transfer times
//! from the interconnect, and multiple iterations are simulated so
//! PipeDream's steady state is measured fairly.

use crate::{Error, Result, SimTime};
use ooo_core::pipeline::{simulate_pipeline, PipelineConfig, PipelineResult, Strategy};
// The op-level schedule builder lives in `ooo_core::pipeline` so the
// static analyzers can evaluate strategies without depending on this
// crate; re-exported here for engine users.
pub use ooo_core::pipeline::op_level_schedule;
use ooo_models::cost::to_pipe_cost;
use ooo_models::{GpuProfile, ModelSpec};
use ooo_netsim::link::LinkSpec;

/// One pipeline configuration's outcome.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Steady-state time per mini-batch.
    pub iter_ns: SimTime,
    /// Throughput in samples (sequences) per second.
    pub throughput: f64,
    /// Mean compute utilization across devices.
    pub mean_utilization: f64,
    /// The raw simulation result.
    pub result: PipelineResult,
}

/// Runs one pipeline configuration.
///
/// `batch` is the global mini-batch; it is split into `micro_batches`
/// micro-batches. `modulo_group` configures OOO-Pipe2's allocation
/// granularity (1 = per layer; the paper groups two transformers on
/// 10 GbE).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for batches that do not divide and
/// propagates simulator errors.
#[allow(clippy::too_many_arguments)] // one experiment configuration per argument
pub fn run(
    model: &ModelSpec,
    batch: usize,
    micro_batches: usize,
    gpu: &GpuProfile,
    link: &LinkSpec,
    devices: usize,
    strategy: Strategy,
    modulo_group: usize,
    iterations: usize,
) -> Result<PipelineReport> {
    run_inner(
        model,
        batch,
        micro_batches,
        gpu,
        link,
        devices,
        strategy,
        modulo_group,
        iterations,
        None,
    )
}

/// Like [`run`] with the OOO-Pipe2 strategy, but the modulo group is
/// chosen by the [`ooo_tune`] autotuner instead of being passed in: the
/// op-level schedule is tuned under the exact predictor (regroup moves
/// across every modulo group plus in-lane `dW` deferrals, verifier-gated
/// and simulation-certified), and the engine then runs OOO-Pipe2 with
/// the winning group. Returns the report together with the tuning
/// outcome, whose `group` is the chosen modulo group.
///
/// # Errors
///
/// As [`run`], plus [`Error::InvalidConfig`] when tuning or
/// certification fails (which would indicate an engine bug: op-level
/// strategy schedules are verifier-clean by construction).
pub fn run_tuned(
    model: &ModelSpec,
    batch: usize,
    micro_batches: usize,
    gpu: &GpuProfile,
    link: &LinkSpec,
    devices: usize,
    iterations: usize,
) -> Result<(PipelineReport, ooo_tune::pipeline::TunedPipeline)> {
    let layers = model.num_layers();
    let tuned = ooo_tune::pipeline::tune_pipeline(
        layers,
        devices,
        Strategy::OooPipe2,
        1,
        &ooo_core::cost::UnitCost,
        &ooo_tune::TuneOptions::default(),
    )
    .map_err(|e| Error::InvalidConfig(format!("autotuning failed: {e}")))?;
    ooo_tune::certify_schedule(&tuned.graph, &tuned.schedule, &ooo_core::cost::UnitCost)
        .map_err(|e| Error::InvalidConfig(format!("certification failed: {e}")))?;
    let report = run(
        model,
        batch,
        micro_batches,
        gpu,
        link,
        devices,
        Strategy::OooPipe2,
        tuned.group,
        iterations,
    )?;
    Ok((report, tuned))
}

/// Like [`run_tuned`], but the tuned op-level schedule is additionally
/// put before the [`ooo_cert`] exact solver under fixed device
/// placement (stage assignment is part of the pipeline strategy, so
/// only per-lane orderings are searched): it either proves the tuned
/// orderings optimal, exhibits a strictly better witness, or returns
/// certified bounds when the node budget runs out. Returns the report,
/// the tuning outcome, and the certificate.
///
/// # Errors
///
/// As [`run_tuned`], plus [`Error::InvalidConfig`] when the certifier
/// rejects the tuned schedule (which would indicate an engine bug:
/// tuned schedules evaluate by construction).
#[allow(clippy::too_many_arguments)]
pub fn run_tuned_certified(
    model: &ModelSpec,
    batch: usize,
    micro_batches: usize,
    gpu: &GpuProfile,
    link: &LinkSpec,
    devices: usize,
    iterations: usize,
    budget: &ooo_cert::Budget,
) -> Result<(
    PipelineReport,
    ooo_tune::pipeline::TunedPipeline,
    ooo_cert::Solved,
)> {
    let (report, tuned) = run_tuned(model, batch, micro_batches, gpu, link, devices, iterations)?;
    let solved = ooo_cert::certify_with(
        &tuned.graph,
        &tuned.schedule,
        &ooo_core::cost::UnitCost,
        ooo_cert::Placement::Fixed,
        budget,
    )
    .map_err(|e| Error::InvalidConfig(format!("certification failed: {e}")))?;
    Ok((report, tuned, solved))
}

/// Like [`run`] with one pipeline stage straggling: every computation
/// placed on `straggler_device` runs `factor`× slower (a factor ≤ 1
/// reproduces [`run`] exactly). This is the per-stage slowdown 2BP-style
/// backprop splitting is sensitive to.
///
/// # Errors
///
/// As [`run`].
#[allow(clippy::too_many_arguments)]
pub fn run_with_stage_slowdown(
    model: &ModelSpec,
    batch: usize,
    micro_batches: usize,
    gpu: &GpuProfile,
    link: &LinkSpec,
    devices: usize,
    strategy: Strategy,
    modulo_group: usize,
    iterations: usize,
    straggler_device: usize,
    factor: f64,
) -> Result<PipelineReport> {
    run_inner(
        model,
        batch,
        micro_batches,
        gpu,
        link,
        devices,
        strategy,
        modulo_group,
        iterations,
        Some((straggler_device, factor)),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_inner(
    model: &ModelSpec,
    batch: usize,
    micro_batches: usize,
    gpu: &GpuProfile,
    link: &LinkSpec,
    devices: usize,
    strategy: Strategy,
    modulo_group: usize,
    iterations: usize,
    straggler: Option<(usize, f64)>,
) -> Result<PipelineReport> {
    if micro_batches == 0 || !batch.is_multiple_of(micro_batches) {
        return Err(Error::InvalidConfig(format!(
            "batch {batch} not divisible into {micro_batches} micro-batches"
        )));
    }
    let micro = batch / micro_batches;
    // Debug builds re-check the strategy's op-level schedule (device
    // lanes plus the activation-gradient link lane) with the static
    // analyzer before the micro-batch simulation runs it.
    crate::checks::schedule_lazy(
        || op_level_schedule(model.num_layers(), devices, strategy, modulo_group),
        true,
        "pipeline op-level schedule",
    );
    crate::checks::advise_lazy(
        || op_level_schedule(model.num_layers(), devices, strategy, modulo_group),
        "pipeline op-level schedule",
    );
    let mut cost = to_pipe_cost(model, micro, gpu, |bytes| link.transfer_ns(bytes));
    if let Some((dev, factor)) = straggler {
        if factor > 1.0 && factor.is_finite() {
            let layers = model.num_layers();
            let alloc = strategy.allocation(layers, devices.max(1), modulo_group);
            let scale = |t: SimTime| (t as f64 * factor) as SimTime;
            for i in 1..=layers {
                if alloc.device_of(i, layers, devices.max(1)) == dev {
                    cost.forward[i - 1] = scale(cost.forward[i - 1]);
                    cost.output_grad[i - 1] = scale(cost.output_grad[i - 1]);
                    cost.weight_grad[i - 1] = scale(cost.weight_grad[i - 1]);
                }
            }
        }
    }
    let config = PipelineConfig {
        layers: model.num_layers(),
        devices,
        micro_batches,
        iterations,
        strategy,
        modulo_group,
        cost,
    };
    let result = simulate_pipeline(&config)?;
    let iter_ns =
        result.steady_state_iteration_time(iterations.saturating_sub(2).min(1)) as SimTime;
    let throughput = batch as f64 * 1e9 / iter_ns.max(1) as f64;
    let mean_utilization =
        (0..devices).map(|d| result.utilization(d)).sum::<f64>() / devices.max(1) as f64;
    Ok(PipelineReport {
        iter_ns,
        throughput,
        mean_utilization,
        result,
    })
}

/// Single-GPU reference throughput for normalization (Figure 11a's
/// y-axis): the whole model on one device.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn single_gpu_reference(
    model: &ModelSpec,
    batch: usize,
    gpu: &GpuProfile,
    iterations: usize,
) -> Result<PipelineReport> {
    run(
        model,
        batch,
        1,
        gpu,
        &LinkSpec::nvlink(),
        1,
        Strategy::ModelParallel,
        1,
        iterations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_models::zoo::{bert, ffnn16, rnn16};

    fn v100() -> GpuProfile {
        GpuProfile::v100()
    }

    #[test]
    fn ffnn_strategies_rank_as_figure_11a() {
        let m = ffnn16(4_096);
        let nv = LinkSpec::nvlink();
        let mk = |s: Strategy, micros: usize| {
            run(&m, 1_024, micros, &v100(), &nv, 4, s, 1, 4)
                .unwrap()
                .throughput
        };
        let mp = mk(Strategy::ModelParallel, 1);
        let gpipe = mk(Strategy::GPipe, 4);
        let pipe1 = mk(Strategy::OooPipe1, 4);
        let pipe2 = mk(Strategy::OooPipe2, 4);
        assert!(gpipe > mp, "GPipe {gpipe} vs MP {mp}");
        assert!(pipe1 >= gpipe, "Pipe1 {pipe1} vs GPipe {gpipe}");
        assert!(pipe2 > pipe1, "Pipe2 {pipe2} vs Pipe1 {pipe1}");
        // The paper: OOO-Pipe2 is ~1.5x GPipe for the 16-layer FFNN.
        let speedup = pipe2 / gpipe;
        assert!((1.2..2.2).contains(&speedup), "FFNN Pipe2/GPipe {speedup}");
    }

    #[test]
    fn stage_straggler_slows_pipeline_and_noop_is_exact() {
        let m = ffnn16(4_096);
        let nv = LinkSpec::nvlink();
        let base = run(&m, 1_024, 4, &v100(), &nv, 4, Strategy::OooPipe2, 1, 4).unwrap();
        let noop = run_with_stage_slowdown(
            &m,
            1_024,
            4,
            &v100(),
            &nv,
            4,
            Strategy::OooPipe2,
            1,
            4,
            2,
            1.0,
        )
        .unwrap();
        assert_eq!(base.iter_ns, noop.iter_ns);
        // A straggler on any stage inflates the steady-state iteration.
        for dev in 0..4 {
            let slow = run_with_stage_slowdown(
                &m,
                1_024,
                4,
                &v100(),
                &nv,
                4,
                Strategy::OooPipe2,
                1,
                4,
                dev,
                3.0,
            )
            .unwrap();
            assert!(
                slow.iter_ns > base.iter_ns,
                "device {dev}: straggled {} vs base {}",
                slow.iter_ns,
                base.iter_ns
            );
        }
    }

    #[test]
    fn bert24_speedup_band() {
        // Figure 11a: BERT-24 on 4 GPUs, OOO-Pipe2 ~1.59x GPipe.
        let m = bert(24, 128);
        let nv = LinkSpec::nvlink();
        let gpipe = run(&m, 96, 4, &v100(), &nv, 4, Strategy::GPipe, 1, 4)
            .unwrap()
            .throughput;
        let pipe2 = run(&m, 96, 4, &v100(), &nv, 4, Strategy::OooPipe2, 1, 4)
            .unwrap()
            .throughput;
        let speedup = pipe2 / gpipe;
        assert!((1.15..2.2).contains(&speedup), "BERT Pipe2/GPipe {speedup}");
    }

    #[test]
    fn rnn_without_micro_batches_benefits() {
        // The paper runs the RNN without micro-batches; OOO-Pipe2 is
        // 1.47x cross-layer model parallelism.
        let m = rnn16(1_024, 50);
        let nv = LinkSpec::nvlink();
        let mp = run(&m, 1_024, 1, &v100(), &nv, 4, Strategy::ModelParallel, 1, 4).unwrap();
        let p2 = run(&m, 1_024, 1, &v100(), &nv, 4, Strategy::OooPipe2, 1, 4).unwrap();
        let speedup = p2.throughput / mp.throughput;
        assert!((1.2..2.3).contains(&speedup), "RNN speedup {speedup}");
    }

    #[test]
    fn ethernet_prefers_grouped_modulo() {
        // Figure 11b: at transformer granularity 10 GbE halves OOO-Pipe2's
        // throughput; grouping two transformers recovers it.
        let m = bert(24, 128);
        let eth = LinkSpec::ethernet_10g();
        let fine = run(&m, 96, 4, &v100(), &eth, 4, Strategy::OooPipe2, 1, 4)
            .unwrap()
            .throughput;
        let grouped = run(&m, 96, 4, &v100(), &eth, 4, Strategy::OooPipe2, 2, 4)
            .unwrap()
            .throughput;
        assert!(grouped > fine, "grouped {grouped} vs fine {fine}");
    }

    #[test]
    fn utilization_improves_with_ooo() {
        let m = ffnn16(4_096);
        let nv = LinkSpec::nvlink();
        let gpipe = run(&m, 1_024, 4, &v100(), &nv, 4, Strategy::GPipe, 1, 3).unwrap();
        let pipe2 = run(&m, 1_024, 4, &v100(), &nv, 4, Strategy::OooPipe2, 1, 3).unwrap();
        assert!(pipe2.mean_utilization > gpipe.mean_utilization);
    }

    #[test]
    fn pipedream_reported_as_reference() {
        let m = bert(24, 128);
        let nv = LinkSpec::nvlink();
        let gpipe = run(&m, 96, 4, &v100(), &nv, 4, Strategy::GPipe, 1, 6)
            .unwrap()
            .throughput;
        let pd = run(&m, 96, 4, &v100(), &nv, 4, Strategy::PipeDream, 1, 6)
            .unwrap()
            .throughput;
        // PipeDream's steady state beats GPipe (it avoids the flush), at
        // the cost of staleness the paper excludes from head-to-head
        // comparison.
        assert!(pd >= gpipe * 0.95, "PipeDream {pd} vs GPipe {gpipe}");
    }

    #[test]
    fn indivisible_batch_rejected() {
        let m = ffnn16(128);
        let nv = LinkSpec::nvlink();
        assert!(run(&m, 10, 3, &v100(), &nv, 2, Strategy::GPipe, 1, 2).is_err());
    }

    #[test]
    fn single_gpu_reference_runs() {
        let m = ffnn16(1_024);
        let r = single_gpu_reference(&m, 256, &v100(), 3).unwrap();
        assert!(r.throughput > 0.0);
    }

    #[test]
    fn tuned_pipeline_never_predicts_worse_than_ooo_pipe2() {
        let m = ffnn16(1_024);
        let (r, tuned) = run_tuned(&m, 256, 4, &v100(), &LinkSpec::nvlink(), 4, 4).unwrap();
        assert!(tuned.predicted <= tuned.baseline);
        assert!(tuned.group >= 1 && tuned.group <= m.num_layers());
        assert!(r.throughput > 0.0);
    }
}
