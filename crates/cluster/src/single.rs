//! Single-GPU training engines (the paper's Section 8.2).
//!
//! One training iteration is simulated on the `ooo-gpusim` device as
//! `[loss, backward kernels, next forward pass]` — the window the paper's
//! Section 2 formulation optimizes. Two consecutive iterations are
//! simulated and the steady-state time of the second is reported, so that
//! cross-iteration issue pipelining (the masking effect of Figure 2) is
//! captured.
//!
//! Engines:
//!
//! - [`Engine::TensorFlow`] — unfused kernels (separate activation
//!   kernels), slow per-kernel issue;
//! - [`Engine::Xla`] — fused kernels, per-kernel issue;
//! - [`Engine::Nimble`] — fused kernels, pre-compiled issue, single
//!   stream, but an ahead-of-time memory plan that roughly doubles
//!   memory (the paper observes Nimble OOM at batch 64+);
//! - [`Engine::OooXlaOpt1`] — XLA + pre-compiled kernel issue;
//! - [`Engine::OooXla`] — Opt1 + multi-stream out-of-order computation
//!   scheduled by Algorithm 1 with co-run profiles measured on the GPU
//!   simulator.

use crate::{Error, Result, SimTime};
use ooo_core::graph::TrainGraph;
use ooo_core::memory::memory_profile;
use ooo_core::multi_region::{
    merged_order, schedule_with_memory_budget, MultiRegionSchedule, RegionSpec, SpeedupProfile,
};
use ooo_core::op::{LayerId, Op};
use ooo_gpusim::engine::{co_run_speedup, Command, GpuSim, IssueMode, Slowdown, StreamSpec};
use ooo_gpusim::kernel::Kernel;
use ooo_gpusim::spec::GpuSpec;
use ooo_gpusim::trace::Trace;
use ooo_models::cost::{model_kernels, to_table_cost, LayerKernels};
use ooo_models::{GpuProfile, ModelSpec};

/// Single-GPU training engine under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Plain TensorFlow: unfused kernels, slow executor.
    TensorFlow,
    /// TensorFlow XLA: fused kernels, per-kernel issue (the baseline).
    Xla,
    /// Nimble: pre-compiled issue, single stream, 2x memory plan.
    Nimble,
    /// OOO-XLA with only pre-compiled kernel issue (the paper's Opt1).
    OooXlaOpt1,
    /// OOO-XLA with pre-compiled issue and multi-stream out-of-order
    /// computation (Opt1 + Opt2).
    OooXla,
}

impl Engine {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::TensorFlow => "TF",
            Engine::Xla => "XLA",
            Engine::Nimble => "Nimble",
            Engine::OooXlaOpt1 => "OOO-XLA(Opt1)",
            Engine::OooXla => "OOO-XLA",
        }
    }

    /// Memory multiplier relative to the XLA baseline.
    fn memory_factor(self) -> f64 {
        match self {
            // Nimble's ahead-of-time allocation plan; the paper observes
            // OOM at batch 64 where XLA still fits.
            Engine::Nimble => 2.4,
            _ => 1.0,
        }
    }
}

/// Usable GPU memory (bytes): the 16 GB cards keep ~1.5 GB for the
/// driver, CUDA context, and framework reserves.
pub fn gpu_capacity(gpu: &GpuProfile) -> u64 {
    match gpu.name {
        "V100" => 14_500_000_000,
        "P100" => 14_500_000_000,
        _ => 11_000_000_000,
    }
}

/// Result of a single-GPU run.
#[derive(Debug, Clone)]
pub struct SingleGpuReport {
    /// Steady-state time of one training iteration.
    pub iter_ns: SimTime,
    /// Training throughput in samples per second.
    pub throughput: f64,
    /// Peak memory estimate in bytes.
    pub peak_mem: u64,
    /// The kernel-level trace of the simulated iterations.
    pub trace: Trace,
}

fn gpuspec(gpu: &GpuProfile) -> GpuSpec {
    GpuSpec {
        name: gpu.name,
        num_sms: gpu.block_slots,
        blocks_per_sm: 1,
        kernel_setup_ns: gpu.kernel_setup_ns,
        relative_throughput: 1.0,
    }
}

fn to_kernel(p: &ooo_models::cost::KernelProfile, issue_scale: f64) -> Kernel {
    Kernel::new(
        &p.name,
        p.blocks,
        p.block_time_ns,
        (p.issue_ns as f64 * issue_scale) as SimTime,
    )
}

/// Estimated resident memory for training `model` at `batch` (weights +
/// optimizer state + activations/workspace).
pub fn memory_estimate(model: &ModelSpec, batch: usize, engine: Engine) -> u64 {
    let params = model.param_bytes();
    let acts: u64 = model
        .layers
        .iter()
        .map(|l| l.activation_bytes_per_sample * batch as u64)
        .sum();
    // Weights + gradient + two optimizer slots, activations kept for
    // backward plus gradient/workspace headroom.
    let base = params * 4 + (acts as f64 * 2.6) as u64;
    (base as f64 * engine.memory_factor()) as u64
}

struct SimSpeedupProfile<'a> {
    spec: &'a GpuSpec,
    region_kernels: Vec<Vec<Kernel>>,
    dw_kernels: &'a [(Op, Kernel)],
    // Algorithm 1 queries each (kernel, region) pair many times while it
    // fills regions; co-run simulations are memoized to keep planning
    // linear in practice.
    cache: std::cell::RefCell<std::collections::HashMap<(Op, usize), f64>>,
}

impl SpeedupProfile for SimSpeedupProfile<'_> {
    fn speedup(&self, op: Op, region: usize) -> f64 {
        if let Some(&cached) = self.cache.borrow().get(&(op, region)) {
            return cached;
        }
        let Some((_, k)) = self.dw_kernels.iter().find(|(o, _)| *o == op) else {
            return 1.0;
        };
        let s = co_run_speedup(
            self.spec,
            &self.region_kernels[region],
            std::slice::from_ref(k),
        )
        .map(|(_, _, s)| s)
        .unwrap_or(1.0);
        self.cache.borrow_mut().insert((op, region), s);
        s
    }

    fn sub_time(&self, op: Op, _region: usize) -> ooo_core::SimTime {
        self.dw_kernels
            .iter()
            .find(|(o, _)| *o == op)
            .map(|(_, k)| k.isolated_exec_ns(self.spec.block_slots()) + self.spec.kernel_setup_ns)
            .unwrap_or(1)
    }
}

/// Runs one engine on one model/batch/GPU combination.
///
/// # Errors
///
/// Returns [`Error::OutOfMemory`] when the configuration does not fit the
/// GPU (the paper's "N/A" table entries) and propagates simulator errors.
pub fn run(
    model: &ModelSpec,
    batch: usize,
    gpu: &GpuProfile,
    engine: Engine,
) -> Result<SingleGpuReport> {
    run_inner(model, batch, gpu, engine, None)
}

/// Like [`run`] with a device [`Slowdown`] injected into the GPU
/// simulation — the single-GPU straggler fault. A no-op slowdown
/// reproduces [`run`] exactly.
///
/// # Errors
///
/// As [`run`].
pub fn run_straggled(
    model: &ModelSpec,
    batch: usize,
    gpu: &GpuProfile,
    engine: Engine,
    slowdown: Slowdown,
) -> Result<SingleGpuReport> {
    run_inner(model, batch, gpu, engine, Some(slowdown))
}

fn run_inner(
    model: &ModelSpec,
    batch: usize,
    gpu: &GpuProfile,
    engine: Engine,
    slowdown: Option<Slowdown>,
) -> Result<SingleGpuReport> {
    let required = memory_estimate(model, batch, engine);
    let capacity = gpu_capacity(gpu);
    if required > capacity {
        return Err(Error::OutOfMemory { required, capacity });
    }
    let spec = gpuspec(gpu);
    let kernels = model_kernels(model, batch, gpu);
    let l = kernels.len();

    let issue_mode = match engine {
        Engine::TensorFlow | Engine::Xla => IssueMode::PerKernel,
        Engine::Nimble | Engine::OooXlaOpt1 | Engine::OooXla => {
            IssueMode::PreCompiled { launch_ns: 10_000 }
        }
    };
    // Calibration: the zoo's per-kernel issue costs are TensorFlow-level;
    // XLA's fused clusters dispatch much faster (the paper measures XLA
    // 1.1-3.1x over TF and OOO-XLA 1.03-1.58x over XLA).
    let issue_scale = match engine {
        Engine::TensorFlow => 1.0,
        _ => 0.35,
    };
    // TF additionally issues the unfused elementwise kernels XLA folds
    // into its neighbours.
    let unfused = matches!(engine, Engine::TensorFlow);
    let elementwise = |name: &str, src: &ooo_models::cost::KernelProfile| {
        Kernel::new(name, src.blocks, 400, 18_000)
    };

    let iterations = 3usize;
    let mut iter_end_markers: Vec<String> = Vec::new();

    let streams = if engine == Engine::OooXla {
        // Two prioritized streams; the sub-stream order comes from
        // Algorithm 1 with simulator-measured co-run profiles.
        let schedule = plan_multi_region(model, &kernels, &spec, batch, gpu)?;
        let sub_order: Vec<Op> = schedule.per_region.iter().flatten().copied().collect();
        for _ in 0..iterations {
            iter_end_markers.push(kernels[l - 1].forward.name.clone());
        }
        build_ooo_streams(&kernels, l, iterations, &sub_order)
    } else {
        let mut cmds: Vec<Command> = Vec::new();
        for _ in 0..iterations {
            let mut kern: Vec<Kernel> = vec![Kernel::new("loss", 64, 1_000, 0)];
            for i in (1..=l).rev() {
                if i >= 2 {
                    kern.push(to_kernel(&kernels[i - 1].output_grad, issue_scale));
                    if unfused {
                        kern.push(elementwise(
                            &format!("{}.act_grad", kernels[i - 1].output_grad.name),
                            &kernels[i - 1].output_grad,
                        ));
                    }
                }
                kern.push(to_kernel(&kernels[i - 1].weight_grad, issue_scale));
            }
            let marker_from = kern.len();
            for i in 1..=l {
                kern.push(to_kernel(&kernels[i - 1].forward, issue_scale));
                if unfused {
                    kern.push(elementwise(
                        &format!("{}.act", kernels[i - 1].forward.name),
                        &kernels[i - 1].forward,
                    ));
                }
            }
            let _ = marker_from;
            iter_end_markers.push(kernels[l - 1].forward.name.clone());
            cmds.extend(kern.into_iter().map(Command::Launch));
        }
        vec![StreamSpec {
            priority: 0,
            commands: cmds,
        }]
    };

    let mut sim = GpuSim::new(spec, issue_mode);
    if let Some(s) = slowdown {
        sim = sim.with_slowdown(s);
    }
    let trace = sim.run(streams)?;
    // Steady-state: completion of the last forward of iteration 2 minus
    // iteration 1. The two iterations launch identical kernel names; take
    // the two completions of the end-marker kernel.
    let marker = &iter_end_markers[0];
    let mut ends: Vec<SimTime> = trace
        .records
        .iter()
        .filter(|r| &r.name == marker)
        .map(|r| r.exec_end)
        .collect();
    ends.sort_unstable();
    let iter_ns = match ends.len() {
        0 | 1 => trace.makespan() / iterations as SimTime,
        n => (ends[n - 1] - ends[0]) / (n as SimTime - 1),
    };
    let throughput = batch as f64 * 1e9 / iter_ns.max(1) as f64;

    // Peak memory: the engine estimate plus the delayed-dW overhead of
    // the out-of-order schedule (Figure 9's delta; ~0.1% in the paper).
    let mut peak_mem = required;
    if engine == Engine::OooXla {
        // The delayed weight gradients keep some buffers alive longer;
        // add the exact delta over the conventional schedule's peak.
        let (ooo_peak, conv_peak) = ooo_memory_delta(model, batch, gpu)?;
        peak_mem += ooo_peak.saturating_sub(conv_peak);
    }
    Ok(SingleGpuReport {
        iter_ns,
        throughput,
        peak_mem,
        trace,
    })
}

/// Like [`run`], additionally rendering the kernel-level trace as a
/// [`Timeline`](ooo_core::trace::Timeline): one lane per stream with
/// issue-stall spans, plus the `sm_slots_in_use` occupancy counter.
///
/// # Errors
///
/// As [`run`].
pub fn run_traced(
    model: &ModelSpec,
    batch: usize,
    gpu: &GpuProfile,
    engine: Engine,
) -> Result<(SingleGpuReport, ooo_core::trace::Timeline)> {
    let report = run(model, batch, gpu, engine)?;
    let name = format!("single/{}/{}", engine.name(), model.name);
    let timeline = report.trace.to_timeline(&name);
    Ok((report, timeline))
}

/// Builds the two prioritized GPU streams of the OOO-XLA engine for a
/// given sub-stream weight-gradient order. Events enforce the true
/// dependencies in both directions: a dW kernel waits for its incoming
/// gradient on the main stream, and the next iteration's forward of
/// layer i waits for the previous iteration's dW_i (the weight must be
/// updated before it is used).
fn build_ooo_streams(
    kernels: &[LayerKernels],
    l: usize,
    iterations: usize,
    sub_order: &[Op],
) -> Vec<StreamSpec> {
    let mut main: Vec<Command> = Vec::new();
    let mut sub: Vec<Command> = Vec::new();
    for iter in 0..iterations as u32 {
        let ev = |layer: usize| 1_000_000 * (iter + 1) + layer as u32;
        let ev_dw = |layer: usize| 500_000_000 + 1_000_000 * (iter + 1) + layer as u32;
        let ev_dw_prev = |layer: usize| 500_000_000 + 1_000_000 * iter + layer as u32;
        // Backward critical path: loss then dO_L..dO_2.
        main.push(Command::Launch(Kernel::new("loss", 64, 1_000, 0)));
        main.push(Command::RecordEvent(ev(l + 1)));
        for i in (2..=l).rev() {
            main.push(Command::Launch(to_kernel(&kernels[i - 1].output_grad, 1.0)));
            main.push(Command::RecordEvent(ev(i)));
        }
        for i in 1..=l {
            if iter > 0 {
                main.push(Command::WaitEvent(ev_dw_prev(i)));
            }
            main.push(Command::Launch(to_kernel(&kernels[i - 1].forward, 1.0)));
        }
        for op in sub_order {
            if let Op::WeightGrad(LayerId(i)) = *op {
                sub.push(Command::WaitEvent(ev((i + 1).min(l + 1))));
                sub.push(Command::Launch(to_kernel(&kernels[i - 1].weight_grad, 1.0)));
                sub.push(Command::RecordEvent(ev_dw(i)));
            }
        }
    }
    vec![
        StreamSpec {
            priority: 10,
            commands: main,
        },
        StreamSpec {
            priority: 0,
            commands: sub,
        },
    ]
}

/// Runs the OOO-XLA engine with an explicit sub-stream weight-gradient
/// order instead of Algorithm 1's (for ablation studies).
///
/// # Errors
///
/// Returns [`Error::OutOfMemory`] and simulator errors as
/// [`run`] does, plus [`Error::InvalidConfig`] when `sub_order` does not
/// cover every weight gradient exactly once.
pub fn run_ooo_with_sub_order(
    model: &ModelSpec,
    batch: usize,
    gpu: &GpuProfile,
    sub_order: &[Op],
) -> Result<SingleGpuReport> {
    let l = model.num_layers();
    let mut seen = vec![false; l + 1];
    for op in sub_order {
        match *op {
            Op::WeightGrad(LayerId(i)) if i >= 1 && i <= l && !seen[i] => seen[i] = true,
            other => {
                return Err(Error::InvalidConfig(format!(
                    "sub order must list each dW exactly once; got {other}"
                )))
            }
        }
    }
    if !seen[1..].iter().all(|&s| s) {
        return Err(Error::InvalidConfig(
            "sub order misses weight gradients".into(),
        ));
    }
    let required = memory_estimate(model, batch, Engine::OooXla);
    let capacity = gpu_capacity(gpu);
    if required > capacity {
        return Err(Error::OutOfMemory { required, capacity });
    }
    let spec = gpuspec(gpu);
    let kernels = model_kernels(model, batch, gpu);
    let iterations = 3;
    let streams = build_ooo_streams(&kernels, l, iterations, sub_order);
    let trace = GpuSim::new(spec, IssueMode::PreCompiled { launch_ns: 10_000 }).run(streams)?;
    let marker = kernels[l - 1].forward.name.clone();
    let mut ends: Vec<SimTime> = trace
        .records
        .iter()
        .filter(|r| r.name == marker)
        .map(|r| r.exec_end)
        .collect();
    ends.sort_unstable();
    let iter_ns = match ends.len() {
        0 | 1 => trace.makespan() / iterations as SimTime,
        n => (ends[n - 1] - ends[0]) / (n as SimTime - 1),
    };
    Ok(SingleGpuReport {
        iter_ns,
        throughput: batch as f64 * 1e9 / iter_ns.max(1) as f64,
        peak_mem: required,
        trace,
    })
}

/// Runs the OOO-XLA engine with an autotuned sub-stream order: the
/// multi-region plan of Algorithm 1 is the heuristic baseline, then the
/// [`ooo_tune`] local search re-orders the sub-stream weight gradients
/// under the exact makespan predictor (verifier-gated, certified by
/// simulation) before the GPU simulator runs the winner. Returns the
/// report together with the tuning outcome (baseline vs tuned predicted
/// makespan and the move trajectory).
///
/// # Errors
///
/// Everything [`run`] returns, plus [`Error::InvalidConfig`] when
/// tuning or certification fails (which would indicate an engine bug:
/// Algorithm 1's plans are verifier-clean by construction).
pub fn run_ooo_tuned(
    model: &ModelSpec,
    batch: usize,
    gpu: &GpuProfile,
) -> Result<(SingleGpuReport, ooo_tune::Tuned)> {
    let l = model.num_layers();
    let graph = TrainGraph::single_gpu(l);
    let kernels = model_kernels(model, batch, gpu);
    let spec = gpuspec(gpu);
    let plan = plan_multi_region(model, &kernels, &spec, batch, gpu)?;
    let (regions, _) = build_regions(model, &kernels, &spec);
    let baseline = plan.to_schedule(&regions);
    let cost = to_table_cost(model, batch, gpu);
    // The sub-stream stays a sub-stream: `run_ooo_with_sub_order` wants
    // every dW there, so only in-lane re-ordering is allowed. The plan
    // is partial (updates are implicit in this engine).
    let opts = ooo_tune::TuneOptions {
        cross_lane: false,
        require_complete: false,
        ..ooo_tune::TuneOptions::default()
    };
    let tuned = ooo_tune::tune_schedule(&graph, &baseline, &cost, &opts)
        .map_err(|e| Error::InvalidConfig(format!("autotuning failed: {e}")))?;
    ooo_tune::certify_schedule(&graph, &tuned.schedule, &cost)
        .map_err(|e| Error::InvalidConfig(format!("certification failed: {e}")))?;
    let sub_order: Vec<Op> = tuned
        .schedule
        .lanes
        .iter()
        .find(|lane| lane.name == "sub-stream")
        .map(|lane| lane.ops.clone())
        .unwrap_or_default();
    let report = run_ooo_with_sub_order(model, batch, gpu, &sub_order)?;
    Ok((report, tuned))
}

/// Like [`run_ooo_tuned`], but the tuned schedule is additionally put
/// before the [`ooo_cert`] exact solver: under fixed lane placement
/// (the engine pins every `dW` to the sub-stream) the branch-and-bound
/// search either proves the tuned per-lane orderings optimal, exhibits
/// a strictly better witness, or returns certified bounds when the
/// node budget runs out. Returns the report, the tuning outcome, and
/// the certificate.
///
/// # Errors
///
/// As [`run_ooo_tuned`], plus [`Error::InvalidConfig`] when the
/// certifier rejects the tuned schedule (which would indicate an
/// engine bug: tuned schedules evaluate by construction).
pub fn run_ooo_certified(
    model: &ModelSpec,
    batch: usize,
    gpu: &GpuProfile,
    budget: &ooo_cert::Budget,
) -> Result<(SingleGpuReport, ooo_tune::Tuned, ooo_cert::Solved)> {
    let (report, tuned) = run_ooo_tuned(model, batch, gpu)?;
    let graph = TrainGraph::single_gpu(model.num_layers());
    let cost = to_table_cost(model, batch, gpu);
    let solved = ooo_cert::certify_with(
        &graph,
        &tuned.schedule,
        &cost,
        ooo_cert::Placement::Fixed,
        budget,
    )
    .map_err(|e| Error::InvalidConfig(format!("certification failed: {e}")))?;
    Ok((report, tuned, solved))
}

/// Runs Algorithm 1 for a model and returns the sub-stream schedule,
/// constrained to 1.1x the conventional schedule's peak memory — the
/// budget the paper uses throughout its single-GPU experiments.
fn plan_multi_region(
    model: &ModelSpec,
    kernels: &[LayerKernels],
    spec: &GpuSpec,
    batch: usize,
    gpu: &GpuProfile,
) -> Result<MultiRegionSchedule> {
    let l = kernels.len();
    let graph = TrainGraph::single_gpu(l);
    let (regions, region_kernels) = build_regions(model, kernels, spec);
    let dw_kernels: Vec<(Op, Kernel)> = (1..=l)
        .map(|i| {
            (
                Op::WeightGrad(LayerId(i)),
                to_kernel(&kernels[i - 1].weight_grad, 1.0),
            )
        })
        .collect();
    let profile = SimSpeedupProfile {
        spec,
        region_kernels,
        dw_kernels: &dw_kernels,
        cache: std::cell::RefCell::new(std::collections::HashMap::new()),
    };
    let subs: Vec<Op> = graph.weight_grads();
    let cost = to_table_cost(model, batch, gpu);
    let conv_peak = memory_profile(&graph, &graph.conventional_backprop(), &cost)?.peak;
    let budget = conv_peak + conv_peak / 10;
    let schedule = schedule_with_memory_budget(&graph, &regions, &subs, &profile, &cost, budget)?;
    // Debug builds re-check the two-stream plan with the static analyzer:
    // no race between the streams, no deadlock, within the memory budget,
    // and only dW-class ops moved. Updates are implicit in this engine,
    // so the schedule is partial.
    crate::checks::schedule_lazy(
        || (graph.clone(), schedule.to_schedule(&regions)),
        false,
        "multi-region joint schedule",
    );
    // And the performance advisor: the analysis must hold on every
    // engine-produced schedule (predictor succeeds, gap well-formed).
    crate::checks::advise_lazy(
        || (graph.clone(), schedule.to_schedule(&regions)),
        "multi-region joint schedule",
    );
    Ok(schedule)
}

/// Splits the backward critical path plus the next forward pass into
/// regions following the model's block structure (a DenseBlock per
/// region, as in the paper's Figure 8).
fn build_regions(
    model: &ModelSpec,
    kernels: &[LayerKernels],
    spec: &GpuSpec,
) -> (Vec<RegionSpec>, Vec<Vec<Kernel>>) {
    let l = kernels.len();
    let slots = spec.block_slots();
    let mut regions = Vec::new();
    let mut region_kernels = Vec::new();
    // Backward regions in reverse block order.
    let mut hi = l;
    for (name, count) in model.regions.iter().rev() {
        let lo = hi - count;
        let mut entries = Vec::new();
        let mut kern = Vec::new();
        if hi == l {
            entries.push((Op::Loss, 1_000));
        }
        for i in (lo + 1..=hi).rev() {
            if i >= 2 {
                let k = to_kernel(&kernels[i - 1].output_grad, 1.0);
                entries.push((
                    Op::OutputGrad(LayerId(i)),
                    k.isolated_exec_ns(slots) + spec.kernel_setup_ns,
                ));
                kern.push(k);
            }
        }
        if !entries.is_empty() {
            regions.push(RegionSpec {
                name: format!("bwd.{name}"),
                entries,
            });
            region_kernels.push(kern);
        }
        hi = lo;
    }
    // Forward regions in block order.
    let mut lo = 0;
    for (name, count) in &model.regions {
        let hi = lo + count;
        let mut entries = Vec::new();
        let mut kern = Vec::new();
        for i in lo + 1..=hi {
            let k = to_kernel(&kernels[i - 1].forward, 1.0);
            entries.push((
                Op::Forward(LayerId(i)),
                k.isolated_exec_ns(slots) + spec.kernel_setup_ns,
            ));
            kern.push(k);
        }
        regions.push(RegionSpec {
            name: format!("fwd.{name}"),
            entries,
        });
        region_kernels.push(kern);
        lo = hi;
    }
    (regions, region_kernels)
}

/// Memory peaks of the out-of-order and conventional schedules:
/// `(ooo_peak, conventional_peak)` in activation bytes.
fn ooo_memory_delta(model: &ModelSpec, batch: usize, gpu: &GpuProfile) -> Result<(u64, u64)> {
    let l = model.num_layers();
    let graph = TrainGraph::single_gpu(l);
    let cost = to_table_cost(model, batch, gpu);
    let kernels = model_kernels(model, batch, gpu);
    let spec = gpuspec(gpu);
    let schedule = plan_multi_region(model, &kernels, &spec, batch, gpu)?;
    let (regions, _) = build_regions(model, &kernels, &spec);
    let order = merged_order(&regions, &schedule);
    let profile = memory_profile(&graph, &order, &cost)?;
    let conv = memory_profile(&graph, &graph.conventional_backprop(), &cost)?;
    Ok((profile.peak, conv.peak))
}

/// The Figure 8 view: which weight-gradient kernels Algorithm 1 assigns
/// to each region of the main-stream timeline.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn region_plan(
    model: &ModelSpec,
    batch: usize,
    gpu: &GpuProfile,
) -> Result<Vec<(String, Vec<String>)>> {
    let kernels = model_kernels(model, batch, gpu);
    let spec = gpuspec(gpu);
    let schedule = plan_multi_region(model, &kernels, &spec, batch, gpu)?;
    let (regions, _) = build_regions(model, &kernels, &spec);
    Ok(regions
        .iter()
        .zip(&schedule.per_region)
        .map(|(r, ops)| {
            let names = ops
                .iter()
                .filter_map(|op| match op {
                    Op::WeightGrad(LayerId(i)) => Some(kernels[i - 1].weight_grad.name.clone()),
                    _ => None,
                })
                .collect();
            (r.name.clone(), names)
        })
        .collect())
}

/// One memory series: `(layer, bytes-in-use)` at each output-gradient
/// computation.
pub type MemorySeries = Vec<(usize, u64)>;

/// The Figure 9 data series: memory usage at each output-gradient
/// computation for the conventional and the out-of-order schedule.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn memory_series(
    model: &ModelSpec,
    batch: usize,
    gpu: &GpuProfile,
) -> Result<(MemorySeries, MemorySeries)> {
    let l = model.num_layers();
    let graph = TrainGraph::single_gpu(l);
    let cost = to_table_cost(model, batch, gpu);
    let conv = memory_profile(&graph, &graph.conventional_backprop(), &cost)?;
    let kernels = model_kernels(model, batch, gpu);
    let spec = gpuspec(gpu);
    let schedule = plan_multi_region(model, &kernels, &spec, batch, gpu)?;
    let (regions, _) = build_regions(model, &kernels, &spec);
    let order = merged_order(&regions, &schedule);
    let ooo = memory_profile(&graph, &order, &cost)?;
    let series = |p: &ooo_core::memory::MemoryProfile| {
        p.at_output_grads()
            .into_iter()
            .map(|(lid, m)| (lid.0, m))
            .collect::<Vec<_>>()
    };
    Ok((series(&conv), series(&ooo)))
}

/// Per-kernel `(name, issue-gap, exec)` series of the backward+forward
/// window under the XLA engine — the data behind the paper's Figures 1
/// and 2.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn issue_analysis(
    model: &ModelSpec,
    batch: usize,
    gpu: &GpuProfile,
) -> Result<Vec<(String, SimTime, SimTime)>> {
    let report = run(model, batch, gpu, Engine::Xla)?;
    Ok(report.trace.issue_gap_vs_exec(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_models::zoo::{densenet121, mobilenet_v3_large, resnet};

    #[test]
    fn engines_rank_as_in_the_paper() {
        let m = densenet121(12, 32);
        let gpu = GpuProfile::v100();
        let tf = run(&m, 32, &gpu, Engine::TensorFlow).unwrap().throughput;
        let xla = run(&m, 32, &gpu, Engine::Xla).unwrap().throughput;
        let opt1 = run(&m, 32, &gpu, Engine::OooXlaOpt1).unwrap().throughput;
        let full = run(&m, 32, &gpu, Engine::OooXla).unwrap().throughput;
        assert!(xla > tf, "XLA {xla} vs TF {tf}");
        assert!(opt1 > xla, "Opt1 {opt1} vs XLA {xla}");
        assert!(full >= opt1 * 0.99, "full {full} vs opt1 {opt1}");
        // The paper's overall single-GPU band: 1.03-1.58x over XLA.
        let speedup = full / xla;
        assert!((1.02..2.2).contains(&speedup), "OOO/XLA = {speedup}");
    }

    #[test]
    fn traced_single_gpu_timeline_is_well_formed() {
        let m = resnet(50);
        let gpu = GpuProfile::v100();
        let (r, tl) = run_traced(&m, 64, &gpu, Engine::OooXla).unwrap();
        tl.validate().unwrap();
        // Two prioritized streams → two lanes, both busy.
        let summary = tl.summarize();
        for lane in ["stream0", "stream1"] {
            assert!(summary.lane(lane).unwrap().busy_ns > 0, "{lane} idle");
        }
        // The horizon covers the simulated iterations.
        assert!(tl.horizon_ns() >= r.iter_ns);
        // The occupancy counter never exceeds the device's block slots.
        let occ = summary.counter("sm_slots_in_use").unwrap();
        assert!(occ.mean > 0.0);
        assert!(occ.mean_fraction.unwrap() <= 1.0);
    }

    #[test]
    fn straggled_gpu_slows_training_and_noop_is_exact() {
        let m = resnet(50);
        let gpu = GpuProfile::v100();
        let base = run(&m, 64, &gpu, Engine::OooXla).unwrap();
        let noop = run_straggled(
            &m,
            64,
            &gpu,
            Engine::OooXla,
            Slowdown {
                factor: 1.0,
                start_ns: 0,
                end_ns: SimTime::MAX,
            },
        )
        .unwrap();
        assert_eq!(base.iter_ns, noop.iter_ns);
        let slow = run_straggled(
            &m,
            64,
            &gpu,
            Engine::OooXla,
            Slowdown {
                factor: 2.0,
                start_ns: 0,
                end_ns: SimTime::MAX,
            },
        )
        .unwrap();
        assert!(
            slow.iter_ns > base.iter_ns,
            "straggled {} vs base {}",
            slow.iter_ns,
            base.iter_ns
        );
        slow.trace.to_timeline("straggled").validate().unwrap();
    }

    #[test]
    fn nimble_matches_opt1_speed_but_ooms_at_64() {
        let m = resnet(50);
        let gpu = GpuProfile::v100();
        let nim = run(&m, 32, &gpu, Engine::Nimble).unwrap();
        let opt1 = run(&m, 32, &gpu, Engine::OooXlaOpt1).unwrap();
        assert_eq!(nim.iter_ns, opt1.iter_ns);
        assert!(matches!(
            run(&m, 64, &gpu, Engine::Nimble),
            Err(Error::OutOfMemory { .. })
        ));
        // XLA itself still fits at 64.
        assert!(run(&m, 64, &gpu, Engine::Xla).is_ok());
    }

    #[test]
    fn mobilenet_small_alpha_gains_most() {
        // The paper's largest single-GPU speedup (1.58x) is MobileNet
        // alpha=0.25 at batch 32: lighter kernels are more issue-bound.
        let gpu = GpuProfile::v100();
        let small = {
            let m = mobilenet_v3_large(0.25);
            run(&m, 32, &gpu, Engine::OooXla).unwrap().throughput
                / run(&m, 32, &gpu, Engine::Xla).unwrap().throughput
        };
        let large = {
            let m = mobilenet_v3_large(1.0);
            run(&m, 32, &gpu, Engine::OooXla).unwrap().throughput
                / run(&m, 32, &gpu, Engine::Xla).unwrap().throughput
        };
        assert!(
            small > large,
            "alpha 0.25 speedup {small} <= alpha 1.0 {large}"
        );
    }

    #[test]
    fn resnet_gains_are_modest() {
        let m = resnet(50);
        let gpu = GpuProfile::v100();
        let xla = run(&m, 64, &gpu, Engine::Xla).unwrap().throughput;
        let full = run(&m, 64, &gpu, Engine::OooXla).unwrap().throughput;
        let speedup = full / xla;
        assert!((1.0..1.35).contains(&speedup), "ResNet speedup {speedup}");
    }

    #[test]
    fn ooo_memory_overhead_is_tiny() {
        let m = densenet121(12, 32);
        let gpu = GpuProfile::v100();
        let xla = run(&m, 32, &gpu, Engine::Xla).unwrap().peak_mem;
        let ooo = run(&m, 32, &gpu, Engine::OooXla).unwrap().peak_mem;
        let overhead = ooo as f64 / xla as f64;
        // The paper observes +0.1% under a 1.1x budget; our coarser
        // buffer model stays within a few percent.
        assert!(overhead < 1.05, "memory overhead {overhead}");
    }

    #[test]
    fn issue_analysis_shows_issue_bound_tail() {
        // Late DenseNet blocks expose substantial issue-induced idle time
        // relative to their execution (Figure 1's regime: overhead up to
        // 4x execution; exposure accumulates once early masking runs
        // out).
        let series = issue_analysis(&densenet121(12, 32), 32, &GpuProfile::v100()).unwrap();
        let late: Vec<&(String, SimTime, SimTime)> = series
            .iter()
            .filter(|(n, _, _)| n.contains("block3") || n.contains("block4"))
            .collect();
        assert!(!late.is_empty());
        let gap: SimTime = late.iter().map(|(_, g, _)| g).sum();
        let exec: SimTime = late.iter().map(|(_, _, e)| e).sum();
        assert!(
            gap * 5 >= exec,
            "late-block exposed gaps {gap} ns vs exec {exec} ns"
        );
    }

    #[test]
    fn batch_128_oom_pattern_matches_paper() {
        // Paper: with 128 batches XLA/OOO-XLA run out of memory for most
        // DenseNet and ResNet models on V100, while MobileNet still fits
        // (OOO-XLA 1.04-1.09x faster there).
        let gpu = GpuProfile::v100();
        assert!(matches!(
            run(&resnet(101), 128, &gpu, Engine::Xla),
            Err(Error::OutOfMemory { .. })
        ));
        let m = mobilenet_v3_large(1.0);
        let xla = run(&m, 128, &gpu, Engine::Xla).unwrap().throughput;
        let ooo = run(&m, 128, &gpu, Engine::OooXla).unwrap().throughput;
        let s = ooo / xla;
        assert!((1.0..1.35).contains(&s), "MobileNet b=128 speedup {s}");
    }

    #[test]
    fn memory_series_has_small_peak_delta() {
        let (conv, ooo) = memory_series(&densenet121(12, 32), 32, &GpuProfile::v100()).unwrap();
        assert!(!conv.is_empty() && !ooo.is_empty());
        let peak = |s: &[(usize, u64)]| s.iter().map(|&(_, m)| m).max().unwrap_or(0);
        let ratio = peak(&ooo) as f64 / peak(&conv) as f64;
        // Algorithm 1 runs under a 1.1x peak budget.
        assert!((0.9..1.2).contains(&ratio), "peak ratio {ratio}");
    }

    #[test]
    fn tuned_sub_order_is_certified_and_runs() {
        let m = mobilenet_v3_large(1.0);
        let gpu = GpuProfile::v100();
        let (r, tuned) = run_ooo_tuned(&m, 32, &gpu).unwrap();
        // The tuner never returns a schedule predicted worse than its input.
        assert!(tuned.predicted <= tuned.baseline);
        assert!(r.iter_ns > 0 && r.throughput > 0.0);
    }
}
