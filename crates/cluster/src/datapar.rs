//! Data-parallel training engines (the paper's Section 8.3).
//!
//! One synchronous iteration from a single worker's perspective: the GPU
//! runs the backward pass in a chosen order, gradient tensors are
//! synchronized over the worker's bottleneck link by a chunk-preemptive
//! priority queue (`ooo-netsim`), and the next forward pass is gated
//! per-layer on its parameters being synchronized.
//!
//! Systems:
//!
//! - [`CommSystem::Horovod`] — ring all-reduce wire volume, FIFO tensor
//!   order, heavy per-tensor negotiation;
//! - [`CommSystem::BytePS`] — push+pull wire volume, priority by layer
//!   (ByteScheduler), light coordination;
//! - [`CommSystem::OooBytePS`] — BytePS plus reverse first-k scheduling
//!   with the concave `k`-search.

use crate::{Result, SimTime};
use ooo_core::cost::{CostModel, TableCost};
use ooo_core::graph::TrainGraph;
use ooo_core::op::{LayerId, Op};
use ooo_core::reverse_k::{reverse_first_k, search_optimal_k};
use ooo_core::trace::{Span, Timeline, CAT_STALL};
use ooo_models::cost::to_table_cost;
use ooo_models::{GpuProfile, ModelSpec};
use ooo_netsim::collective::{
    worker_bottleneck_bytes_per_sec, BYTEPS_TENSOR_OVERHEAD_NS, HOROVOD_TENSOR_OVERHEAD_NS,
};
use ooo_netsim::commsim::{
    finish_of, intervals_to_lane, simulate_queue_faulty, CommRequest, LinkFault, LossHandling,
    Policy,
};
use ooo_netsim::link::LinkSpec;
use ooo_netsim::topology::ClusterTopology;

/// Parameter-communication system under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommSystem {
    /// Horovod: ring all-reduce, FIFO, no reordering.
    Horovod,
    /// BytePS with communication prioritization (the baseline).
    BytePS,
    /// BytePS plus reverse first-k scheduling (ours).
    OooBytePS,
}

impl CommSystem {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CommSystem::Horovod => "Horovod",
            CommSystem::BytePS => "BytePS",
            CommSystem::OooBytePS => "OOO-BytePS",
        }
    }
}

/// Result of one data-parallel configuration.
#[derive(Debug, Clone)]
pub struct DataParReport {
    /// Steady-state iteration time.
    pub iter_ns: SimTime,
    /// Global throughput in samples per second.
    pub throughput: f64,
    /// The `k` chosen by reverse first-k (0 for baselines).
    pub k: usize,
    /// Iteration time in excess of pure compute — the exposed
    /// communication the paper's Figure 4 minimizes.
    pub exposed_sync_ns: SimTime,
}

/// Chunk size of the priority transmission queue (ByteScheduler-style
/// tensor partitioning).
const CHUNK_BYTES: u64 = 512 * 1024;

fn effective_link(topology: &ClusterTopology, gpus: usize, overhead_ns: SimTime) -> LinkSpec {
    LinkSpec {
        name: "worker-bottleneck",
        bytes_per_sec: worker_bottleneck_bytes_per_sec(topology, gpus),
        latency_ns: overhead_ns,
    }
}

/// Simulates one iteration with a fixed backward order. Returns the
/// iteration time.
///
/// Parameter-server traffic is full duplex: gradients are *pushed* on the
/// uplink queue and updated parameters *pulled* on the downlink queue;
/// a layer's pull becomes ready when its push (and the server's
/// aggregation) completes. Both queues are chunk-preemptive priority
/// queues keyed by layer index.
#[allow(clippy::too_many_arguments)]
fn simulate_iteration(
    cost: &TableCost,
    wire_bytes: &[u64],
    order: &[Op],
    link: &LinkSpec,
    policy: Policy,
    agg_latency_ns: SimTime,
    fault: &LinkFault,
    loss: LossHandling,
) -> SimTime {
    let l = cost.layers();
    // 1. Backward compute, sequential in the given order.
    let mut t: SimTime = 0;
    let mut dw_finish = vec![0u64; l + 1];
    for &op in order {
        t += cost.duration(op);
        if let Op::WeightGrad(LayerId(i)) = op {
            dw_finish[i] = t;
        }
    }
    let backward_end = t;
    // 2. Push queue on the uplink.
    let push: Vec<CommRequest> = (1..=l)
        .map(|i| CommRequest {
            id: i,
            bytes: wire_bytes[i - 1],
            ready_ns: dw_finish[i],
            priority: i as i64,
        })
        .collect();
    let (push_done, _) = simulate_queue_faulty(link, CHUNK_BYTES, policy, &push, fault, loss);
    // 3. Pull queue on the downlink, gated per layer on the push.
    let pull: Vec<CommRequest> = (1..=l)
        .map(|i| CommRequest {
            id: i,
            bytes: wire_bytes[i - 1],
            ready_ns: finish_of(&push_done, i).unwrap_or(0),
            priority: i as i64,
        })
        .collect();
    let (pull_done, _) = simulate_queue_faulty(link, CHUNK_BYTES, policy, &pull, fault, loss);
    // 4. Forward pass gated per layer on its pulled parameters. Each
    //    synchronization additionally carries the aggregation latency
    //    tail (end-to-end, pipelined across tensors — it delays
    //    completion but does not occupy the wire).
    let mut t = backward_end;
    for i in 1..=l {
        let sync = finish_of(&pull_done, i)
            .unwrap_or(0)
            .saturating_add(agg_latency_ns);
        t = t.max(sync) + cost.duration(Op::Forward(LayerId(i)));
    }
    t
}

/// [`simulate_iteration`] with full tracing: rebuilds the same iteration
/// and renders it as a [`Timeline`] with a `compute` lane (backward ops,
/// sync-gated forward ops, explicit stall spans where the forward pass
/// waits on parameters) and `uplink`/`downlink` lanes carrying the push
/// and pull queues' service intervals.
#[allow(clippy::too_many_arguments)]
fn simulate_iteration_traced(
    cost: &TableCost,
    wire_bytes: &[u64],
    order: &[Op],
    link: &LinkSpec,
    policy: Policy,
    agg_latency_ns: SimTime,
    fault: &LinkFault,
    loss: LossHandling,
    name: &str,
) -> (SimTime, Timeline) {
    let l = cost.layers();
    let mut tl = Timeline::new(name);
    let mut compute: Vec<Span> = Vec::new();
    let mut t: SimTime = 0;
    let mut dw_finish = vec![0u64; l + 1];
    for &op in order {
        let d = cost.duration(op);
        let mut span = Span::new(op.to_string(), "compute", t, t + d);
        if let Some(layer) = op.layer() {
            span.args.push(("layer".into(), layer.0 as f64));
        }
        compute.push(span);
        t += d;
        if let Op::WeightGrad(LayerId(i)) = op {
            dw_finish[i] = t;
        }
    }
    let backward_end = t;
    let push: Vec<CommRequest> = (1..=l)
        .map(|i| CommRequest {
            id: i,
            bytes: wire_bytes[i - 1],
            ready_ns: dw_finish[i],
            priority: i as i64,
        })
        .collect();
    let (push_done, push_iv) = simulate_queue_faulty(link, CHUNK_BYTES, policy, &push, fault, loss);
    let pull: Vec<CommRequest> = (1..=l)
        .map(|i| CommRequest {
            id: i,
            bytes: wire_bytes[i - 1],
            ready_ns: finish_of(&push_done, i).unwrap_or(0),
            priority: i as i64,
        })
        .collect();
    let (pull_done, pull_iv) = simulate_queue_faulty(link, CHUNK_BYTES, policy, &pull, fault, loss);
    let mut t = backward_end;
    for i in 1..=l {
        let sync = finish_of(&pull_done, i)
            .unwrap_or(0)
            .saturating_add(agg_latency_ns);
        if sync > t {
            compute.push(Span::new(format!("wait S[dW{i}]"), CAT_STALL, t, sync));
            t = sync;
        }
        let d = cost.duration(Op::Forward(LayerId(i)));
        let mut span = Span::new(Op::Forward(LayerId(i)).to_string(), "compute", t, t + d);
        span.args.push(("layer".into(), i as f64));
        compute.push(span);
        t += d;
    }
    tl.lane_mut("compute").spans = compute;
    tl.lanes.push(intervals_to_lane("uplink", &push_iv, |i| {
        format!("push S[dW{i}]")
    }));
    tl.lanes.push(intervals_to_lane("downlink", &pull_iv, |i| {
        format!("pull S[dW{i}]")
    }));
    (t, tl)
}

/// Per-tensor aggregation-latency tail: the time between a worker's push
/// completing and the aggregated parameters being available, growing with
/// worker count (barrier over all workers, server queueing, and TCP
/// incast on Ethernet). This is the component the paper's Section 8.3
/// discussion measures as the 350 ms first-layer synchronization on 16
/// V100s — large, and hideable only by *starting* the critical
/// synchronizations earlier, which is exactly what reverse first-k does.
fn aggregation_latency_ns(topology: &ClusterTopology, gpus: usize) -> SimTime {
    if gpus <= 1 {
        0
    } else if topology.single_node(gpus) {
        // NVLink/PCIe aggregation within one machine.
        200_000 * gpus as SimTime
    } else {
        6_000_000 * gpus as SimTime
    }
}

/// The shared per-configuration state of [`run`] and [`run_traced`]:
/// cost table, dependency graph, wire volumes, queue discipline, link
/// and aggregation tail.
struct Setup {
    cost: TableCost,
    graph: TrainGraph,
    wire_bytes: Vec<u64>,
    policy: Policy,
    link: LinkSpec,
    tau: SimTime,
}

fn setup(
    model: &ModelSpec,
    per_gpu_batch: usize,
    gpu: &GpuProfile,
    topology: &ClusterTopology,
    gpus: usize,
    system: CommSystem,
) -> Setup {
    let cost = to_table_cost(model, per_gpu_batch, gpu);
    let l = cost.layers();
    let graph = TrainGraph::data_parallel(l);
    let n = gpus.max(1) as f64;
    // Per-direction wire volume per worker. Every GPU pushes its own
    // gradients and pulls the updated parameters (the push and pull are
    // separate queues in `simulate_iteration`); Horovod's ring moves
    // 2(n-1)/n of the bytes each way.
    let wire_bytes: Vec<u64> = model
        .layers
        .iter()
        .map(|layer| match system {
            _ if gpus <= 1 => 0,
            CommSystem::Horovod => ((n - 1.0) / n * layer.param_bytes as f64) as u64,
            _ => layer.param_bytes,
        })
        .collect();
    let (policy, overhead) = match system {
        CommSystem::Horovod => (Policy::Fifo, HOROVOD_TENSOR_OVERHEAD_NS),
        CommSystem::BytePS | CommSystem::OooBytePS => (Policy::Priority, BYTEPS_TENSOR_OVERHEAD_NS),
    };
    let link = effective_link(topology, gpus, overhead);
    let tau = aggregation_latency_ns(topology, gpus)
        * match system {
            // Horovod's negotiate-then-allreduce protocol roughly doubles
            // the tail.
            CommSystem::Horovod => 2,
            _ => 1,
        };
    Setup {
        cost,
        graph,
        wire_bytes,
        policy,
        link,
        tau,
    }
}

/// Runs one data-parallel configuration.
///
/// # Errors
///
/// Propagates scheduling errors (invalid `k`, malformed orders).
pub fn run(
    model: &ModelSpec,
    per_gpu_batch: usize,
    gpu: &GpuProfile,
    topology: &ClusterTopology,
    gpus: usize,
    system: CommSystem,
) -> Result<DataParReport> {
    let s = setup(model, per_gpu_batch, gpu, topology, gpus, system);
    let l = s.cost.layers();
    let eval = |k: usize| -> Result<SimTime> {
        let order = reverse_first_k::<TableCost>(&s.graph, k, None)?;
        // Debug builds re-check the backward order with the static
        // analyzer (partial: the order covers only the backward pass).
        crate::checks::order_lazy(
            || (s.graph.clone(), order.clone()),
            false,
            "reverse first-k order",
        );
        crate::checks::advise_lazy(
            || {
                (
                    s.graph.clone(),
                    ooo_core::Schedule::single_lane("gpu", order.clone()),
                )
            },
            "reverse first-k order",
        );
        Ok(simulate_iteration(
            &s.cost,
            &s.wire_bytes,
            &order,
            &s.link,
            s.policy,
            s.tau,
            &LinkFault::none(),
            LossHandling::RestartTensor,
        ))
    };

    let (k, iter_ns) = match system {
        CommSystem::Horovod | CommSystem::BytePS => (0, eval(0)?),
        CommSystem::OooBytePS => {
            let best_k = search_optimal_k(l, |k| {
                eval(k)
                    .map(|t| 1e9 / t.max(1) as f64)
                    .unwrap_or(f64::NEG_INFINITY)
            });
            (best_k, eval(best_k)?)
        }
    };

    let pure_compute: SimTime = s.cost.total_backward() + s.cost.total_forward();
    Ok(DataParReport {
        iter_ns,
        throughput: (per_gpu_batch * gpus) as f64 * 1e9 / iter_ns.max(1) as f64,
        k,
        exposed_sync_ns: iter_ns.saturating_sub(pure_compute),
    })
}

/// Like [`run`], additionally returning the traced [`Timeline`] of one
/// steady-state iteration at the chosen `k`: a `compute` lane with
/// explicit stall spans where the forward pass waits on parameter
/// synchronization, plus `uplink`/`downlink` lanes showing per-transfer
/// link occupancy.
///
/// # Errors
///
/// Propagates scheduling errors (invalid `k`, malformed orders).
pub fn run_traced(
    model: &ModelSpec,
    per_gpu_batch: usize,
    gpu: &GpuProfile,
    topology: &ClusterTopology,
    gpus: usize,
    system: CommSystem,
) -> Result<(DataParReport, Timeline)> {
    let report = run(model, per_gpu_batch, gpu, topology, gpus, system)?;
    let s = setup(model, per_gpu_batch, gpu, topology, gpus, system);
    let order = reverse_first_k::<TableCost>(&s.graph, report.k, None)?;
    let name = format!("datapar/{}/{}gpus", system.name(), gpus);
    let (_, timeline) = simulate_iteration_traced(
        &s.cost,
        &s.wire_bytes,
        &order,
        &s.link,
        s.policy,
        s.tau,
        &LinkFault::none(),
        LossHandling::RestartTensor,
        &name,
    );
    Ok((report, timeline))
}

/// A deterministic fault environment for one data-parallel run: a
/// whole-worker compute slowdown (GPU straggler), a static bandwidth
/// degradation of the bottleneck link (this is where the
/// [`LinkSpec::degraded`] knob feeds a cluster engine), and a windowed
/// [`LinkFault`] applied to the push/pull queues with a loss-handling
/// strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEnv {
    /// Multiplier on every compute duration (effective only when > 1).
    pub compute_factor: f64,
    /// Divisor on the bottleneck link's bandwidth (effective only
    /// when > 1).
    pub degrade_factor: f64,
    /// Outage/degradation windows on the communication queues.
    pub link_fault: LinkFault,
    /// What a sender does with transfers an outage killed.
    pub loss: LossHandling,
}

impl FaultEnv {
    /// An environment that injects nothing.
    pub fn none() -> Self {
        FaultEnv {
            compute_factor: 1.0,
            degrade_factor: 1.0,
            link_fault: LinkFault::none(),
            loss: LossHandling::RestartTensor,
        }
    }

    /// Whether this environment can perturb a run at all.
    pub fn is_noop(&self) -> bool {
        let live = |f: f64| f > 1.0 && f.is_finite();
        !live(self.compute_factor) && !live(self.degrade_factor) && self.link_fault.is_noop()
    }
}

/// A copy of `cost` with every compute duration stretched by `factor`
/// (straggler injection). Factors ≤ 1 return the table unchanged, so a
/// no-op environment reproduces the fault-free arithmetic exactly.
fn scaled_cost(cost: &TableCost, factor: f64) -> TableCost {
    if factor <= 1.0 || !factor.is_finite() {
        return cost.clone();
    }
    let scale = |t: SimTime| (t as f64 * factor) as SimTime;
    let mut c = cost.clone();
    c.loss = scale(c.loss);
    for i in 1..=c.layers() {
        let lc = c.layer_mut(LayerId(i));
        lc.forward = scale(lc.forward);
        lc.output_grad = scale(lc.output_grad);
        lc.weight_grad = scale(lc.weight_grad);
        lc.update = scale(lc.update);
    }
    c
}

/// Runs one data-parallel configuration under a [`FaultEnv`], returning
/// the report and the traced timeline of the faulted iteration.
///
/// `fixed_k` pins the reverse first-k depth (e.g. the stale `k` tuned on
/// healthy hardware — the no-recovery stance); `None` re-runs
/// `search_optimal_k` against the *faulted* costs, which is the
/// re-tuning recovery policy. Baseline systems always use `k = 0`.
///
/// With `env.is_noop()` and `fixed_k: None` this reproduces
/// [`run_traced`] exactly.
///
/// # Errors
///
/// Propagates scheduling errors (invalid `k`, malformed orders).
#[allow(clippy::too_many_arguments)]
pub fn run_fault_injected(
    model: &ModelSpec,
    per_gpu_batch: usize,
    gpu: &GpuProfile,
    topology: &ClusterTopology,
    gpus: usize,
    system: CommSystem,
    env: &FaultEnv,
    fixed_k: Option<usize>,
) -> Result<(DataParReport, Timeline)> {
    let mut s = setup(model, per_gpu_batch, gpu, topology, gpus, system);
    s.cost = scaled_cost(&s.cost, env.compute_factor);
    if env.degrade_factor > 1.0 && env.degrade_factor.is_finite() {
        s.link = s.link.degraded(env.degrade_factor);
    }
    let l = s.cost.layers();
    let eval = |k: usize| -> Result<SimTime> {
        let order = reverse_first_k::<TableCost>(&s.graph, k, None)?;
        crate::checks::order_lazy(
            || (s.graph.clone(), order.clone()),
            false,
            "reverse first-k order (fault-injected)",
        );
        crate::checks::advise_lazy(
            || {
                (
                    s.graph.clone(),
                    ooo_core::Schedule::single_lane("gpu", order.clone()),
                )
            },
            "reverse first-k order (fault-injected)",
        );
        Ok(simulate_iteration(
            &s.cost,
            &s.wire_bytes,
            &order,
            &s.link,
            s.policy,
            s.tau,
            &env.link_fault,
            env.loss,
        ))
    };
    let k = match (system, fixed_k) {
        (_, Some(k)) => k.min(l),
        (CommSystem::Horovod | CommSystem::BytePS, None) => 0,
        (CommSystem::OooBytePS, None) => search_optimal_k(l, |k| {
            eval(k)
                .map(|t| 1e9 / t.max(1) as f64)
                .unwrap_or(f64::NEG_INFINITY)
        }),
    };
    let iter_ns = eval(k)?;
    let order = reverse_first_k::<TableCost>(&s.graph, k, None)?;
    let name = format!("datapar/{}/{}gpus/faulted", system.name(), gpus);
    let (_, timeline) = simulate_iteration_traced(
        &s.cost,
        &s.wire_bytes,
        &order,
        &s.link,
        s.policy,
        s.tau,
        &env.link_fault,
        env.loss,
        &name,
    );
    let pure_compute: SimTime = s.cost.total_backward() + s.cost.total_forward();
    Ok((
        DataParReport {
            iter_ns,
            throughput: (per_gpu_batch * gpus) as f64 * 1e9 / iter_ns.max(1) as f64,
            k,
            exposed_sync_ns: iter_ns.saturating_sub(pure_compute),
        },
        timeline,
    ))
}

/// Like [`run`] with the OOO-BytePS system but a *fixed* `k` instead of
/// the heuristic search — used by the k-sweep ablation.
///
/// # Errors
///
/// Propagates scheduling errors (including `k` beyond the layer count).
pub fn run_with_fixed_k(
    model: &ModelSpec,
    per_gpu_batch: usize,
    gpu: &GpuProfile,
    topology: &ClusterTopology,
    gpus: usize,
    k: usize,
) -> Result<DataParReport> {
    let cost = to_table_cost(model, per_gpu_batch, gpu);
    let l = cost.layers();
    let graph = TrainGraph::data_parallel(l);
    let k = k.min(l);
    let wire_bytes: Vec<u64> = model
        .layers
        .iter()
        .map(|layer| if gpus <= 1 { 0 } else { layer.param_bytes })
        .collect();
    let link = effective_link(topology, gpus, BYTEPS_TENSOR_OVERHEAD_NS);
    let tau = aggregation_latency_ns(topology, gpus);
    let order = reverse_first_k::<TableCost>(&graph, k, None)?;
    crate::checks::order_lazy(
        || (graph.clone(), order.clone()),
        false,
        "reverse first-k order (fixed k)",
    );
    crate::checks::advise_lazy(
        || {
            (
                graph.clone(),
                ooo_core::Schedule::single_lane("gpu", order.clone()),
            )
        },
        "reverse first-k order (fixed k)",
    );
    let iter_ns = simulate_iteration(
        &cost,
        &wire_bytes,
        &order,
        &link,
        Policy::Priority,
        tau,
        &LinkFault::none(),
        LossHandling::RestartTensor,
    );
    let pure_compute: SimTime = cost.total_backward() + cost.total_forward();
    Ok(DataParReport {
        iter_ns,
        throughput: (per_gpu_batch * gpus) as f64 * 1e9 / iter_ns.max(1) as f64,
        k,
        exposed_sync_ns: iter_ns.saturating_sub(pure_compute),
    })
}

/// Like [`run`] with the OOO-BytePS system, but the backward order is
/// chosen by the [`ooo_tune`] autotuner instead of the concave
/// [`search_optimal_k`] heuristic: reverse-first-k jumps plus free `dW`
/// relocations, scored by the exact predictor over the statically
/// reconstructed two-lane schedule (with `S[dW_i]` costed as the
/// round-trip wire time of this link), gated by the verifier, and
/// certified against the core data-parallel simulator before the
/// chunk-level engine simulation runs the winner. Returns the report
/// together with the tuning outcome; `report.k` is the tuned order's
/// k-shape when it still is one (0 otherwise).
///
/// # Errors
///
/// Propagates scheduling errors, plus [`crate::Error::InvalidConfig`]
/// when tuning or certification fails (which would indicate an engine
/// bug: reverse-first-k orders are verifier-clean by construction).
pub fn run_tuned(
    model: &ModelSpec,
    per_gpu_batch: usize,
    gpu: &GpuProfile,
    topology: &ClusterTopology,
    gpus: usize,
) -> Result<(DataParReport, ooo_tune::order::TunedOrder)> {
    let s = setup(
        model,
        per_gpu_batch,
        gpu,
        topology,
        gpus,
        CommSystem::OooBytePS,
    );
    // The tuning cost table mirrors the engine: compute times from the
    // GPU profile, `S[dW_i]` as the push+pull wire time of this link.
    let mut tune_cost = s.cost.clone();
    for (i, &bytes) in s.wire_bytes.iter().enumerate() {
        tune_cost.layer_mut(LayerId(i + 1)).sync_weight = s.link.transfer_ns(2 * bytes);
    }
    let baseline = reverse_first_k::<TableCost>(&s.graph, 0, None)?;
    let tuned = ooo_tune::order::tune_backward_order(
        &s.graph,
        &baseline,
        Some(0),
        &tune_cost,
        ooo_core::datapar::CommPolicy::PriorityByLayer,
        ooo_tune::order::KFamily::ReverseFirstK,
        &ooo_tune::TuneOptions::default(),
    )
    .map_err(|e| crate::Error::InvalidConfig(format!("autotuning failed: {e}")))?;
    ooo_tune::order::certify_order(
        &s.graph,
        &tuned.order,
        &tune_cost,
        ooo_core::datapar::CommPolicy::PriorityByLayer,
    )
    .map_err(|e| crate::Error::InvalidConfig(format!("certification failed: {e}")))?;
    let iter_ns = simulate_iteration(
        &s.cost,
        &s.wire_bytes,
        &tuned.order,
        &s.link,
        s.policy,
        s.tau,
        &LinkFault::none(),
        LossHandling::RestartTensor,
    );
    let pure_compute: SimTime = s.cost.total_backward() + s.cost.total_forward();
    Ok((
        DataParReport {
            iter_ns,
            throughput: (per_gpu_batch * gpus) as f64 * 1e9 / iter_ns.max(1) as f64,
            k: tuned.k.unwrap_or(0),
            exposed_sync_ns: iter_ns.saturating_sub(pure_compute),
        },
        tuned,
    ))
}

/// Like [`run_tuned`], but the tuned backward order's two-lane
/// data-parallel realization is additionally put before the
/// [`ooo_cert`] exact solver, which either proves it optimal over all
/// same-class placements, exhibits a strictly better witness, or
/// returns certified bounds on budget exhaustion. Returns the report,
/// the tuning outcome, and the certificate.
///
/// # Errors
///
/// As [`run_tuned`], plus [`crate::Error::InvalidConfig`] when the
/// certifier rejects the tuned order (which would indicate an engine
/// bug: tuned orders are valid by construction).
pub fn run_certified(
    model: &ModelSpec,
    per_gpu_batch: usize,
    gpu: &GpuProfile,
    topology: &ClusterTopology,
    gpus: usize,
    budget: &ooo_cert::Budget,
) -> Result<(DataParReport, ooo_tune::order::TunedOrder, ooo_cert::Solved)> {
    let (report, tuned) = run_tuned(model, per_gpu_batch, gpu, topology, gpus)?;
    // Mirror `run_tuned`'s cost table: compute times from the GPU
    // profile, `S[dW_i]` as the push+pull wire time of this link.
    let s = setup(
        model,
        per_gpu_batch,
        gpu,
        topology,
        gpus,
        CommSystem::OooBytePS,
    );
    let mut tune_cost = s.cost.clone();
    for (i, &bytes) in s.wire_bytes.iter().enumerate() {
        tune_cost.layer_mut(LayerId(i + 1)).sync_weight = s.link.transfer_ns(2 * bytes);
    }
    let (_, solved) = ooo_cert::certify_order(
        &s.graph,
        &tuned.order,
        &tune_cost,
        ooo_core::datapar::CommPolicy::PriorityByLayer,
        budget,
    )
    .map_err(|e| crate::Error::InvalidConfig(format!("certification failed: {e}")))?;
    Ok((report, tuned, solved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_models::zoo::resnet;

    fn v100() -> GpuProfile {
        GpuProfile::v100()
    }

    #[test]
    fn single_gpu_has_no_sync_overhead() {
        let m = resnet(50);
        let r = run(
            &m,
            64,
            &v100(),
            &ClusterTopology::pub_a(),
            1,
            CommSystem::BytePS,
        )
        .unwrap();
        // Per-tensor latency still applies, but no bytes cross the wire;
        // exposure is bounded by coordination only.
        assert!(
            r.exposed_sync_ns < r.iter_ns / 5,
            "exposed {} of {}",
            r.exposed_sync_ns,
            r.iter_ns
        );
    }

    #[test]
    fn systems_rank_byteps_over_horovod() {
        let m = resnet(101);
        let topo = ClusterTopology::priv_b();
        let h = run(&m, 64, &GpuProfile::p100(), &topo, 20, CommSystem::Horovod).unwrap();
        let b = run(&m, 64, &GpuProfile::p100(), &topo, 20, CommSystem::BytePS).unwrap();
        assert!(
            b.throughput > h.throughput,
            "BytePS {} vs Horovod {}",
            b.throughput,
            h.throughput
        );
    }

    #[test]
    fn ooo_byteps_beats_byteps_at_scale() {
        // The paper's headline: 1.10-1.27x over BytePS with 16-48 GPUs.
        let m = resnet(50);
        let topo = ClusterTopology::pub_a();
        let b = run(&m, 128, &v100(), &topo, 16, CommSystem::BytePS).unwrap();
        let o = run(&m, 128, &v100(), &topo, 16, CommSystem::OooBytePS).unwrap();
        let speedup = o.throughput / b.throughput;
        assert!(o.k > 0, "search found k = 0");
        assert!(speedup >= 1.02, "speedup {speedup}");
        assert!(speedup < 1.6, "speedup {speedup} implausibly high");
    }

    #[test]
    fn nvlink_only_jobs_gain_little() {
        // On 2-4 NVLink GPUs the paper measures only 1-5%.
        let m = resnet(50);
        let topo = ClusterTopology::pub_a();
        let b = run(&m, 128, &v100(), &topo, 4, CommSystem::BytePS).unwrap();
        let o = run(&m, 128, &v100(), &topo, 4, CommSystem::OooBytePS).unwrap();
        let speedup = o.throughput / b.throughput;
        assert!((0.99..1.12).contains(&speedup), "NVLink speedup {speedup}");
    }

    #[test]
    fn scaling_efficiency_below_linear() {
        let m = resnet(50);
        let topo = ClusterTopology::pub_a();
        let t1 = run(&m, 128, &v100(), &topo, 1, CommSystem::BytePS)
            .unwrap()
            .throughput;
        let t16 = run(&m, 128, &v100(), &topo, 16, CommSystem::BytePS)
            .unwrap()
            .throughput;
        assert!(t16 > 4.0 * t1, "no scaling: {t16} vs {t1}");
        assert!(t16 < 16.0 * t1, "super-linear scaling is impossible");
    }

    #[test]
    fn traced_iteration_matches_report() {
        let m = resnet(50);
        let topo = ClusterTopology::pub_a();
        let (r, tl) = run_traced(&m, 128, &v100(), &topo, 16, CommSystem::OooBytePS).unwrap();
        tl.validate().unwrap();
        // The timeline's horizon is exactly the simulated iteration: the
        // compute lane ends at the last forward op.
        assert_eq!(tl.horizon_ns(), r.iter_ns);
        // The compute lane tiles the whole iteration: backward ops are
        // gapless from t=0 and every forward-pass wait is an explicit
        // stall span.
        let summary = tl.summarize();
        let compute = summary.lane("compute").unwrap();
        assert_eq!(compute.busy_ns + compute.stall_ns, r.iter_ns);
        // With 16 GPUs real bytes cross the wire in both directions.
        for lane in ["uplink", "downlink"] {
            let l = summary.lane(lane).unwrap();
            assert!(l.busy_ns > 0, "{lane} idle");
        }
    }

    #[test]
    fn noop_fault_env_reproduces_run_traced() {
        let m = resnet(50);
        let topo = ClusterTopology::pub_a();
        let (base, base_tl) =
            run_traced(&m, 128, &v100(), &topo, 16, CommSystem::OooBytePS).expect("fault-free run");
        let env = FaultEnv::none();
        assert!(env.is_noop());
        let (faulted, faulted_tl) = run_fault_injected(
            &m,
            128,
            &v100(),
            &topo,
            16,
            CommSystem::OooBytePS,
            &env,
            None,
        )
        .expect("noop-faulted run");
        assert_eq!(base.iter_ns, faulted.iter_ns);
        assert_eq!(base.k, faulted.k);
        assert_eq!(base.exposed_sync_ns, faulted.exposed_sync_ns);
        // Identical spans modulo the timeline name.
        let a = base_tl.summarize();
        let b = faulted_tl.summarize();
        for lane in ["compute", "uplink", "downlink"] {
            assert_eq!(
                a.lane(lane).map(|l| (l.busy_ns, l.stall_ns)),
                b.lane(lane).map(|l| (l.busy_ns, l.stall_ns)),
                "{lane} diverged"
            );
        }
    }

    #[test]
    fn degraded_link_strictly_increases_iteration_time() {
        // The `LinkSpec::degraded` knob, wired end-to-end through the
        // data-parallel engine.
        let m = resnet(50);
        let topo = ClusterTopology::pub_a();
        let base = run(&m, 128, &v100(), &topo, 16, CommSystem::BytePS).unwrap();
        let env = FaultEnv {
            degrade_factor: 4.0,
            ..FaultEnv::none()
        };
        let (degraded, tl) =
            run_fault_injected(&m, 128, &v100(), &topo, 16, CommSystem::BytePS, &env, None)
                .unwrap();
        assert!(
            degraded.iter_ns > base.iter_ns,
            "degraded {} vs base {}",
            degraded.iter_ns,
            base.iter_ns
        );
        tl.validate().unwrap();
    }

    #[test]
    fn straggler_inflates_compute_and_flap_inflates_sync() {
        let m = resnet(50);
        let topo = ClusterTopology::pub_a();
        let base = run(&m, 128, &v100(), &topo, 16, CommSystem::OooBytePS).unwrap();
        let straggle = FaultEnv {
            compute_factor: 1.5,
            ..FaultEnv::none()
        };
        let (s, s_tl) = run_fault_injected(
            &m,
            128,
            &v100(),
            &topo,
            16,
            CommSystem::OooBytePS,
            &straggle,
            None,
        )
        .unwrap();
        assert!(s.iter_ns > base.iter_ns);
        s_tl.validate().unwrap();
        let flap = FaultEnv {
            link_fault: LinkFault {
                degraded: vec![],
                outages: vec![(0, 40_000_000), (90_000_000, 120_000_000)],
            },
            loss: LossHandling::ResumeChunks {
                backoff_ns: 1_000_000,
                max_backoff_ns: 16_000_000,
            },
            ..FaultEnv::none()
        };
        let (f, f_tl) = run_fault_injected(
            &m,
            128,
            &v100(),
            &topo,
            16,
            CommSystem::OooBytePS,
            &flap,
            None,
        )
        .unwrap();
        assert!(f.exposed_sync_ns > base.exposed_sync_ns);
        f_tl.validate().unwrap();
    }

    #[test]
    fn throughput_monotone_in_gpus_for_ooo() {
        let m = resnet(101);
        let topo = ClusterTopology::pub_a();
        let mut prev = 0.0;
        for gpus in [1usize, 4, 8, 16] {
            let r = run(&m, 96, &v100(), &topo, gpus, CommSystem::OooBytePS).unwrap();
            assert!(
                r.throughput > prev,
                "{} GPUs: {} <= {prev}",
                gpus,
                r.throughput
            );
            prev = r.throughput;
        }
    }

    #[test]
    fn tuned_order_is_no_worse_than_its_baseline() {
        let m = resnet(50);
        let (r, tuned) = run_tuned(&m, 64, &v100(), &ClusterTopology::pub_a(), 8).unwrap();
        assert!(tuned.predicted <= tuned.baseline);
        assert_eq!(r.k, tuned.k.unwrap_or(0));
        assert!(r.iter_ns > 0 && r.throughput > 0.0);
    }
}
