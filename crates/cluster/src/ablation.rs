//! Ablation studies of the design choices DESIGN.md calls out: how much
//! each mechanism contributes, and where the trade-offs cross over.

use crate::datapar::{self, CommSystem};
use crate::pipeline::run as run_pipeline;
use crate::single::{self, Engine};
use crate::Result;
use ooo_core::op::{LayerId, Op};
use ooo_core::pipeline::Strategy;
use ooo_models::{GpuProfile, ModelSpec};
use ooo_netsim::link::LinkSpec;
use ooo_netsim::topology::ClusterTopology;

/// Throughputs of the three sub-stream ordering policies for multi-stream
/// ooo computation: no sub-stream (Opt1 only), eager in-readiness order
/// (the "without re-ordering" variant the paper notes already gives a
/// decent speedup), and Algorithm 1's jointly scheduled order.
///
/// # Errors
///
/// Propagates engine errors.
pub fn sub_order_ablation(
    model: &ModelSpec,
    batch: usize,
    gpu: &GpuProfile,
) -> Result<SubOrderAblation> {
    let opt1 = single::run(model, batch, gpu, Engine::OooXlaOpt1)?.throughput;
    // Eager: weight gradients in readiness order (dW_L .. dW_1), i.e.
    // multi-stream without multi-region joint scheduling.
    let l = model.num_layers();
    let eager: Vec<Op> = (1..=l).rev().map(|i| Op::WeightGrad(LayerId(i))).collect();
    let eager_tp = single::run_ooo_with_sub_order(model, batch, gpu, &eager)?.throughput;
    let algo1 = single::run(model, batch, gpu, Engine::OooXla)?.throughput;
    Ok(SubOrderAblation {
        opt1_only: opt1,
        eager: eager_tp,
        algorithm1: algo1,
    })
}

/// Result of [`sub_order_ablation`].
#[derive(Debug, Clone, Copy)]
pub struct SubOrderAblation {
    /// Pre-compiled issue, no sub-stream.
    pub opt1_only: f64,
    /// Sub-stream in readiness order (no joint scheduling).
    pub eager: f64,
    /// Algorithm 1's schedule.
    pub algorithm1: f64,
}

/// Sweep of the modulo-allocation group size for OOO-Pipe2 on a given
/// interconnect — the paper's communication/overlap trade-off (fine
/// grouping wins on NVLink, grouping by two transformers wins on 10 GbE).
///
/// # Errors
///
/// Propagates pipeline errors.
#[allow(clippy::too_many_arguments)]
pub fn modulo_group_sweep(
    model: &ModelSpec,
    batch: usize,
    micro_batches: usize,
    gpu: &GpuProfile,
    link: &LinkSpec,
    devices: usize,
    groups: &[usize],
    iterations: usize,
) -> Result<Vec<(usize, f64)>> {
    groups
        .iter()
        .map(|&g| {
            run_pipeline(
                model,
                batch,
                micro_batches,
                gpu,
                link,
                devices,
                Strategy::OooPipe2,
                g,
                iterations,
            )
            .map(|r| (g, r.throughput))
        })
        .collect()
}

/// Throughput as a function of `k` for reverse first-k scheduling — the
/// concavity assumption behind the paper's heuristic search, made
/// visible.
///
/// # Errors
///
/// Propagates data-parallel engine errors.
pub fn k_sweep(
    model: &ModelSpec,
    per_gpu_batch: usize,
    gpu: &GpuProfile,
    topology: &ClusterTopology,
    gpus: usize,
    ks: &[usize],
) -> Result<Vec<(usize, f64)>> {
    // Re-run the engine per k by constraining the search window to {k}.
    // The engine's internal search is bypassed by calling the baseline
    // with a pre-built order; we reuse the BytePS path and scale by the
    // measured best to keep the shape comparable.
    ks.iter()
        .map(|&k| {
            let r = datapar::run_with_fixed_k(model, per_gpu_batch, gpu, topology, gpus, k)?;
            Ok((k, r.throughput))
        })
        .collect()
}

/// Straggler injection: data-parallel OOO-BytePS gain when the inter-node
/// network degrades by `factor` — reverse first-k should keep (or grow)
/// its advantage as communication gets slower, with the searched `k`
/// moving up.
///
/// # Errors
///
/// Propagates data-parallel engine errors.
pub fn straggler_network(
    model: &ModelSpec,
    per_gpu_batch: usize,
    gpu: &GpuProfile,
    topology: &ClusterTopology,
    gpus: usize,
    factor: f64,
) -> Result<StragglerReport> {
    let mut slow = topology.clone();
    slow.inter = slow.inter.degraded(factor);
    let base = datapar::run(model, per_gpu_batch, gpu, &slow, gpus, CommSystem::BytePS)?;
    let ooo = datapar::run(
        model,
        per_gpu_batch,
        gpu,
        &slow,
        gpus,
        CommSystem::OooBytePS,
    )?;
    Ok(StragglerReport {
        byteps: base.throughput,
        ooo_byteps: ooo.throughput,
        chosen_k: ooo.k,
    })
}

/// Result of [`straggler_network`].
#[derive(Debug, Clone, Copy)]
pub struct StragglerReport {
    /// BytePS throughput on the degraded network.
    pub byteps: f64,
    /// OOO-BytePS throughput on the degraded network.
    pub ooo_byteps: f64,
    /// The `k` the search chose.
    pub chosen_k: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_models::zoo::{bert, densenet121, resnet};

    #[test]
    fn sub_order_ablation_ranks() {
        // Paper: multi-stream without re-ordering already helps (1.39x
        // example); joint scheduling helps at least as much.
        let a = sub_order_ablation(&densenet121(12, 32), 32, &GpuProfile::v100()).unwrap();
        assert!(
            a.eager > a.opt1_only,
            "eager {} vs opt1 {}",
            a.eager,
            a.opt1_only
        );
        assert!(
            a.algorithm1 >= a.eager * 0.97,
            "algo1 {} vs eager {}",
            a.algorithm1,
            a.eager
        );
    }

    #[test]
    fn modulo_sweep_crossover() {
        let m = bert(24, 128);
        let gpu = GpuProfile::v100();
        // NVLink: fine grouping best (or tied); Ethernet: group 2 beats 1.
        let nv =
            modulo_group_sweep(&m, 96, 4, &gpu, &LinkSpec::nvlink(), 4, &[1, 2, 4], 4).unwrap();
        assert!(
            nv[0].1 >= nv[2].1 * 0.98,
            "NVLink fine {} vs coarse {}",
            nv[0].1,
            nv[2].1
        );
        let eth =
            modulo_group_sweep(&m, 96, 4, &gpu, &LinkSpec::ethernet_10g(), 4, &[1, 2], 4).unwrap();
        assert!(
            eth[1].1 > eth[0].1,
            "Ethernet group2 {} vs group1 {}",
            eth[1].1,
            eth[0].1
        );
    }

    #[test]
    fn k_sweep_is_roughly_concave() {
        let m = resnet(50);
        let topo = ClusterTopology::pub_a();
        let ks = [0usize, 10, 20, 40, 80, 120, 160];
        let sweep = k_sweep(&m, 128, &GpuProfile::v100(), &topo, 16, &ks).unwrap();
        let best = sweep.iter().map(|&(_, t)| t).fold(f64::MIN, f64::max);
        // The best interior point beats both endpoints.
        assert!(best > sweep[0].1, "interior {best} vs k=0 {}", sweep[0].1);
        assert!(best >= sweep.last().unwrap().1, "interior {best} vs k=max");
    }

    #[test]
    fn straggler_increases_k_and_keeps_gain() {
        let m = resnet(50);
        let topo = ClusterTopology::pub_a();
        let gpu = GpuProfile::v100();
        let normal = straggler_network(&m, 128, &gpu, &topo, 16, 1.0).unwrap();
        let slow = straggler_network(&m, 128, &gpu, &topo, 16, 3.0).unwrap();
        assert!(normal.ooo_byteps > normal.byteps);
        assert!(slow.ooo_byteps > slow.byteps);
        // Slower network shifts work toward communication; the schedule
        // still recovers a gain.
        let gain_slow = slow.ooo_byteps / slow.byteps;
        assert!(gain_slow > 1.01, "gain under straggler {gain_slow}");
    }
}
