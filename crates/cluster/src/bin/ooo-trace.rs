//! `ooo-trace` — export and summarize simulator timelines.
//!
//! Runs one simulator configuration, collects its unified timeline
//! (see `ooo_core::trace`), and either exports it as Chrome trace-event
//! JSON — loadable in Perfetto or `chrome://tracing` — or prints the
//! headline metrics: per-lane busy/stall time and utilization plus the
//! time-weighted counter means (e.g. SM occupancy).
//!
//! ```text
//! ooo-trace export --system SYS [options] [--out FILE]
//! ooo-trace summarize (<trace.json> | --system SYS [options])
//!
//! systems and their options:
//!   single    --engine tf|xla|nimble|ooo-xla-opt1|ooo-xla   --batch N
//!   datapar   --comm horovod|byteps|ooo-byteps  --gpus N    --batch N
//!   pipeline  --strategy gpipe|pipedream|dapple|ooo-pipe1|ooo-pipe2
//!             --devices N  --micro N                        --batch N
//!   hybrid    --devices N  --replicas N  --k N  --micro N   --batch N
//!
//! models: resnet50 (default), resnet101, densenet121, mobilenet,
//!         bert24, ffnn16
//! ```
//!
//! Exit status: `0` on success, `1` when the simulation or the trace
//! parse fails, `2` on usage or I/O problems. Never panics.

use ooo_cluster::pipeline::run as run_pipeline;
use ooo_cluster::{datapar, hybrid, single};
use ooo_core::pipeline::Strategy;
use ooo_core::trace::Timeline;
use ooo_models::zoo;
use ooo_models::{GpuProfile, ModelSpec};
use ooo_netsim::link::LinkSpec;
use ooo_netsim::topology::ClusterTopology;
use std::process::ExitCode;

const USAGE: &str = "usage: ooo-trace <export|summarize> \
                     [<trace.json>] [--system single|datapar|pipeline|hybrid] \
                     [--model NAME] [--engine NAME] [--comm NAME] [--strategy NAME] \
                     [--batch N] [--micro N] [--gpus N] [--devices N] [--replicas N] \
                     [--k N] [--out FILE]";

#[derive(PartialEq, Eq, Clone, Copy)]
enum Cmd {
    Export,
    Summarize,
}

struct Args {
    cmd: Cmd,
    /// Positional trace file (summarize-from-file mode).
    input: Option<String>,
    system: Option<String>,
    model: String,
    engine: String,
    comm: String,
    strategy: String,
    batch: usize,
    micro: usize,
    gpus: usize,
    devices: usize,
    replicas: usize,
    k: usize,
    out: Option<String>,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    argv.next(); // program name
    let cmd = match argv.next().as_deref() {
        Some("export") => Cmd::Export,
        Some("summarize") => Cmd::Summarize,
        Some("--help") | Some("-h") | None => return Err(USAGE.to_string()),
        Some(other) => return Err(format!("unknown command: {other}\n{USAGE}")),
    };
    let mut args = Args {
        cmd,
        input: None,
        system: None,
        model: "resnet50".to_string(),
        engine: "ooo-xla".to_string(),
        comm: "ooo-byteps".to_string(),
        strategy: "ooo-pipe2".to_string(),
        batch: 64,
        micro: 4,
        gpus: 16,
        devices: 4,
        replicas: 4,
        k: 2,
        out: None,
    };
    let need_value = |argv: &mut std::env::Args, flag: &str| {
        argv.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let need_count = |argv: &mut std::env::Args, flag: &str| -> Result<usize, String> {
        let v = need_value(argv, flag)?;
        v.parse::<usize>()
            .map_err(|_| format!("{flag}: not a count: {v:?}"))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--system" => args.system = Some(need_value(&mut argv, "--system")?),
            "--model" => args.model = need_value(&mut argv, "--model")?,
            "--engine" => args.engine = need_value(&mut argv, "--engine")?,
            "--comm" => args.comm = need_value(&mut argv, "--comm")?,
            "--strategy" => args.strategy = need_value(&mut argv, "--strategy")?,
            "--batch" => args.batch = need_count(&mut argv, "--batch")?,
            "--micro" => args.micro = need_count(&mut argv, "--micro")?,
            "--gpus" => args.gpus = need_count(&mut argv, "--gpus")?,
            "--devices" => args.devices = need_count(&mut argv, "--devices")?,
            "--replicas" => args.replicas = need_count(&mut argv, "--replicas")?,
            "--k" => args.k = need_count(&mut argv, "--k")?,
            "--out" => args.out = Some(need_value(&mut argv, "--out")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => return Err(format!("unknown flag: {other}")),
            other if args.input.is_none() => args.input = Some(other.to_string()),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    match (args.cmd, &args.input, &args.system) {
        (Cmd::Export, Some(path), _) => Err(format!("export takes no input file, got {path:?}")),
        (Cmd::Export, None, None) => Err("export needs --system".to_string()),
        (Cmd::Summarize, None, None) => Err("summarize needs a trace file or --system".to_string()),
        (Cmd::Summarize, Some(path), Some(_)) => Err(format!(
            "summarize takes a trace file or --system, not both (got {path:?})"
        )),
        _ => Ok(args),
    }
}

fn model_by_name(name: &str) -> Result<ModelSpec, String> {
    Ok(match name {
        "resnet50" => zoo::resnet(50),
        "resnet101" => zoo::resnet(101),
        "densenet121" => zoo::densenet121(12, 32),
        "mobilenet" => zoo::mobilenet_v3_large(1.0),
        "bert24" => zoo::bert(24, 128),
        "ffnn16" => zoo::ffnn16(4096),
        other => return Err(format!("unknown model: {other}")),
    })
}

/// Runs the selected simulator and returns its timeline.
fn build_timeline(args: &Args) -> Result<Timeline, String> {
    let model = model_by_name(&args.model)?;
    let gpu = GpuProfile::v100();
    let system = args.system.as_deref().unwrap_or_default();
    match system {
        "single" => {
            let engine = match args.engine.as_str() {
                "tf" => single::Engine::TensorFlow,
                "xla" => single::Engine::Xla,
                "nimble" => single::Engine::Nimble,
                "ooo-xla-opt1" => single::Engine::OooXlaOpt1,
                "ooo-xla" => single::Engine::OooXla,
                other => return Err(format!("unknown engine: {other}")),
            };
            single::run_traced(&model, args.batch, &gpu, engine)
                .map(|(_, tl)| tl)
                .map_err(|e| format!("single-GPU simulation failed: {e}"))
        }
        "datapar" => {
            let comm = match args.comm.as_str() {
                "horovod" => datapar::CommSystem::Horovod,
                "byteps" => datapar::CommSystem::BytePS,
                "ooo-byteps" => datapar::CommSystem::OooBytePS,
                other => return Err(format!("unknown comm system: {other}")),
            };
            datapar::run_traced(
                &model,
                args.batch,
                &gpu,
                &ClusterTopology::pub_a(),
                args.gpus,
                comm,
            )
            .map(|(_, tl)| tl)
            .map_err(|e| format!("data-parallel simulation failed: {e}"))
        }
        "pipeline" => {
            let strategy = match args.strategy.as_str() {
                "gpipe" => Strategy::GPipe,
                "pipedream" => Strategy::PipeDream,
                "dapple" => Strategy::Dapple,
                "ooo-pipe1" => Strategy::OooPipe1,
                "ooo-pipe2" => Strategy::OooPipe2,
                other => return Err(format!("unknown strategy: {other}")),
            };
            run_pipeline(
                &model,
                args.batch,
                args.micro,
                &gpu,
                &LinkSpec::nvlink(),
                args.devices,
                strategy,
                1,
                2,
            )
            .map(|r| {
                r.result
                    .to_timeline(&format!("pipeline/{}/{}dev", args.strategy, args.devices))
            })
            .map_err(|e| format!("pipeline simulation failed: {e}"))
        }
        "hybrid" => hybrid::run_combined_traced(
            &model,
            args.batch,
            args.micro,
            &gpu,
            &LinkSpec::nvlink(),
            &LinkSpec::ethernet_10g(),
            args.devices,
            args.replicas,
            args.k,
            2,
        )
        .map(|(_, tl)| tl)
        .map_err(|e| format!("hybrid simulation failed: {e}")),
        other => Err(format!(
            "unknown system: {other:?} (want single|datapar|pipeline|hybrid)"
        )),
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let timeline = if let Some(path) = &args.input {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ooo-trace: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match Timeline::from_chrome_json(&text) {
            Ok(tl) => tl,
            Err(e) => {
                eprintln!("ooo-trace: cannot parse {path}: {e}");
                return ExitCode::from(1);
            }
        }
    } else {
        match build_timeline(&args) {
            Ok(tl) => tl,
            Err(msg) => {
                eprintln!("ooo-trace: {msg}");
                return ExitCode::from(1);
            }
        }
    };

    match args.cmd {
        Cmd::Export => {
            let json = timeline.to_chrome_json();
            match &args.out {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, json + "\n") {
                        eprintln!("ooo-trace: cannot write {path}: {e}");
                        return ExitCode::from(2);
                    }
                }
                None => println!("{json}"),
            }
        }
        Cmd::Summarize => {
            let rendered = timeline.summarize().render();
            match &args.out {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, rendered) {
                        eprintln!("ooo-trace: cannot write {path}: {e}");
                        return ExitCode::from(2);
                    }
                }
                None => print!("{rendered}"),
            }
        }
    }
    ExitCode::SUCCESS
}
