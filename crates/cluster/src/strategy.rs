//! The scheduling-strategy zoo.
//!
//! A [`Strategy`] is a named schedule generator: given a training
//! *shape* (single-GPU, data-parallel, or pipeline-parallel) it emits a
//! complete multi-lane [`Schedule`] over that shape's [`TrainGraph`].
//! The zoo wraps the paper's own schedulers (conventional backprop,
//! gradient fast-forwarding, reverse first-k, multi-region joint
//! scheduling, modulo-allocated OOO-Pipe2) next to three generators
//! reproduced from related work:
//!
//! - **layerpipe** — intra/inter-layer gradient pipelining (arXiv
//!   2108.06629): weight gradients *and* their optimizer updates run on
//!   a dedicated gradient worker, pipelined layer by layer against the
//!   output-gradient chain.
//! - **twobp** — two-stage backpropagation (arXiv 2405.18047): the
//!   backward pass is split into its dX stage (the full output-gradient
//!   chain) and a dW stage scheduled afterwards in *ascending* layer
//!   order, so the parameters the next forward pass needs first are
//!   synchronized and updated first.
//! - **gradinterleaved** — interleaved gradient computation (arXiv
//!   2002.05529): each `dW_i` is issued the moment its incoming
//!   gradient exists — *before* `dO_i` — on a single stream, with all
//!   updates deferred past the backward pass.
//!
//! Every generator funnels through one ready-queue topological emitter,
//! so all of them inherit the repository-wide `(priority desc, op id
//! asc)` tie-break rule ([`ooo_core::schedule::ReadyQueue`]) and are
//! byte-deterministic under shuffled inputs. Generated schedules thread
//! through the full contract stack via [`Generated`]: OV-cleanliness
//! (`ooo-verify`), exact tolerance-0 makespan prediction
//! (`verify::predict`), static-vs-instrumented memory reconciliation
//! (`verify::mem`), tuner seeding (`ooo-tune`), and — where the op count
//! permits — exact optimality brackets (`ooo-cert`).

use crate::{Error, Result};
use ooo_core::cost::CostModel;
use ooo_core::graph::TrainGraph;
use ooo_core::list_scheduling::simulate;
use ooo_core::multi_region::{backward_regions, multi_region_joint_schedule, SpeedupProfile};
use ooo_core::op::{LayerId, Op};
use ooo_core::pipeline::op_level_schedule;
use ooo_core::reverse_k::reverse_first_k;
use ooo_core::schedule::{ReadyQueue, Schedule};
use ooo_core::SimTime;
use ooo_verify::predict::predict_makespan;
use ooo_verify::{Verifier, VerifyConfig};

/// A training configuration a strategy can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Single-GPU training: no synchronization operations.
    SingleGpu {
        /// Layer count `L`.
        layers: usize,
    },
    /// Synchronous data-parallel training: `S[dW_i]` on a link lane.
    DataParallel {
        /// Layer count `L`.
        layers: usize,
    },
    /// Pipeline-parallel training: layers spread over `devices` with
    /// `S[dO_i]` transfers between stages.
    Pipeline {
        /// Layer count `L`.
        layers: usize,
        /// Device count.
        devices: usize,
    },
}

impl Shape {
    /// The layer count of the shape.
    pub fn layers(&self) -> usize {
        match *self {
            Shape::SingleGpu { layers }
            | Shape::DataParallel { layers }
            | Shape::Pipeline { layers, .. } => layers,
        }
    }

    /// Short kind tag ("single" / "datapar" / "pipeline").
    pub fn kind(&self) -> &'static str {
        match self {
            Shape::SingleGpu { .. } => "single",
            Shape::DataParallel { .. } => "datapar",
            Shape::Pipeline { .. } => "pipeline",
        }
    }

    /// Builds the shape's dependency graph.
    ///
    /// # Errors
    ///
    /// Propagates [`ooo_core::Error::InvalidConfig`] for zero layers.
    pub fn graph(&self) -> Result<TrainGraph> {
        let config = match *self {
            Shape::SingleGpu { layers } => ooo_core::graph::GraphConfig::single_gpu(layers),
            Shape::DataParallel { layers } => ooo_core::graph::GraphConfig::data_parallel(layers),
            Shape::Pipeline { layers, .. } => {
                ooo_core::graph::GraphConfig::pipeline_parallel(layers)
            }
        };
        Ok(TrainGraph::new(config)?)
    }
}

/// A strategy's output: the shape's graph plus a schedule over it.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The dependency graph the schedule targets.
    pub graph: TrainGraph,
    /// The generated multi-lane schedule.
    pub schedule: Schedule,
    /// Whether the schedule covers the whole graph (`false` only for
    /// partial generators such as the multi-region joint scheduler,
    /// which plans the backward pass in isolation).
    pub complete: bool,
}

impl Generated {
    /// Runs the `ooo-verify` analyzer over the schedule: structural
    /// rules, hazard analysis, ooo legality, and (when `memory_budget`
    /// is given) the OV301 liveness bound.
    pub fn verify(&self, cost: &dyn CostModel, memory_budget: Option<u64>) -> ooo_verify::Report {
        Verifier::new(&self.graph)
            .with_config(VerifyConfig {
                require_complete: self.complete,
                memory_budget,
                check_legality: true,
            })
            .with_cost(cost)
            .verify(&self.schedule)
    }

    /// The statically predicted makespan.
    ///
    /// # Errors
    ///
    /// Propagates predictor errors for malformed schedules.
    pub fn predicted(&self, cost: &dyn CostModel) -> Result<SimTime> {
        Ok(predict_makespan(&self.graph, &self.schedule, &cost)?.makespan())
    }

    /// Certifies the prediction contract at tolerance 0: the static
    /// prediction must equal the discrete-event simulation exactly.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] on any disagreement; core errors when
    /// the schedule does not simulate.
    pub fn certified(&self, cost: &dyn CostModel) -> Result<SimTime> {
        let predicted = self.predicted(cost)?;
        let simulated = simulate(&self.graph, &self.schedule, &cost)?.makespan();
        if predicted != simulated {
            return Err(Error::InvalidConfig(format!(
                "prediction contract violated: predicted {predicted} != simulated {simulated}"
            )));
        }
        Ok(simulated)
    }

    /// Reconciles the static memory ledger against the instrumented
    /// per-op counter on the simulated timeline. Returns `(ledger_peak,
    /// counter_peak)`; the conformance suite demands equality.
    ///
    /// # Errors
    ///
    /// Propagates predictor/simulator errors.
    pub fn mem_reconciled(&self, cost: &dyn CostModel) -> Result<(u64, u64)> {
        let ledger = ooo_verify::mem::schedule_peak(&self.graph, &self.schedule, &cost)?;
        let timeline = simulate(&self.graph, &self.schedule, &cost)?;
        let counter = ooo_verify::mem::instrument_timeline(&self.graph, &cost, &timeline);
        Ok((ledger, counter.peak))
    }

    /// Seeds `ooo-tune` with the generated schedule.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] wrapping the tuner's error when the
    /// seed fails its safety gate or does not evaluate.
    pub fn tuned(
        &self,
        cost: &(dyn CostModel + Sync),
        opts: &ooo_tune::TuneOptions,
    ) -> Result<ooo_tune::Tuned> {
        let mut opts = opts.clone();
        opts.require_complete = self.complete;
        ooo_tune::tune_schedule(&self.graph, &self.schedule, &cost, &opts)
            .map_err(|e| Error::InvalidConfig(format!("tuner rejected strategy output: {e}")))
    }

    /// Runs an `ooo-cert` optimality bracket when the instance fits the
    /// exact solver's 128-op ceiling; `None` for larger instances.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] wrapping solver errors on malformed
    /// schedules (never mere budget exhaustion, which yields an
    /// `Unknown` certificate instead).
    pub fn cert_bracket(
        &self,
        cost: &dyn CostModel,
        node_budget: u64,
    ) -> Result<Option<ooo_cert::Solved>> {
        if self.schedule.num_ops() > 128 {
            return Ok(None);
        }
        ooo_cert::certify(
            &self.graph,
            &self.schedule,
            &cost,
            &ooo_cert::Budget::nodes(node_budget),
        )
        .map(Some)
        .map_err(|e| Error::InvalidConfig(format!("certifier rejected strategy output: {e}")))
    }
}

/// A named schedule generator over training shapes.
pub trait Strategy {
    /// Stable CLI-friendly identifier ("fastforward", "twobp", ...).
    fn name(&self) -> &'static str;

    /// One-line description including the originating paper.
    fn description(&self) -> &'static str;

    /// Whether the strategy can target `shape`.
    fn applicable(&self, shape: Shape) -> bool;

    /// Whether generated schedules cover the whole graph. Partial
    /// generators (multi-region) return `false`; their outputs verify
    /// with `require_complete: false`.
    fn complete(&self) -> bool {
        true
    }

    /// Generates the schedule for `shape`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when `shape` is not applicable;
    /// propagated core errors otherwise.
    fn generate(&self, shape: Shape, cost: &dyn CostModel) -> Result<Generated>;
}

/// Rejects non-applicable shapes with a uniform error.
fn require_applicable(s: &dyn Strategy, shape: Shape) -> Result<()> {
    if !s.applicable(shape) {
        return Err(Error::InvalidConfig(format!(
            "strategy {:?} is not applicable to {} shapes",
            s.name(),
            shape.kind()
        )));
    }
    Ok(())
}

/// The shared topological emitter: a Kahn sweep over `graph` driven by
/// the repository's canonical [`ReadyQueue`] pick rule. Each popped op
/// is appended to the lane `lane_of` assigns it; the global pop order
/// is a topological linearization, so its per-lane projections always
/// admit a feasible interleaving (the pop order itself).
///
/// Because the queue breaks priority ties by dense arena id, the result
/// is a pure function of `(graph, lane_of, priority_of)` — independent
/// of insertion order, hash state, or platform.
fn emit(
    graph: &TrainGraph,
    lane_names: &[&str],
    lane_of: impl Fn(Op) -> usize,
    priority_of: impl Fn(Op) -> i64,
) -> Schedule {
    let n = graph.len();
    let mut indegree: Vec<usize> = (0..n).map(|i| graph.dep_indices(i).len()).collect();
    let mut queue = ReadyQueue::new();
    for (i, &op) in graph.ops().iter().enumerate() {
        if indegree[i] == 0 {
            queue.push(priority_of(op), i);
        }
    }
    let mut lanes: Vec<Vec<Op>> = vec![Vec::new(); lane_names.len()];
    while let Some((_, i)) = queue.pop() {
        let op = graph.ops()[i];
        lanes[lane_of(op)].push(op);
        for &j in graph.dependent_indices(i) {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                queue.push(priority_of(graph.ops()[j]), j);
            }
        }
    }
    let mut schedule = Schedule::new();
    for (name, ops) in lane_names.iter().zip(lanes) {
        schedule.add_lane(name, ops);
    }
    schedule
}

/// Emits a single/data-parallel schedule from per-class priorities:
/// lane layout is `main` (+ `sub` when `sub_of` assigns anything there,
/// + `link` for sync ops on data-parallel shapes).
fn emit_streams(
    graph: &TrainGraph,
    has_sub: bool,
    sub_of: impl Fn(Op) -> bool,
    priority_of: impl Fn(Op) -> i64,
) -> Schedule {
    let has_link = graph.config().sync_weight_grads || graph.config().sync_output_grads;
    let mut names: Vec<&str> = vec!["main"];
    let sub_lane = names.len();
    if has_sub {
        names.push("sub");
    }
    let link_lane = names.len();
    if has_link {
        names.push("link");
    }
    emit(
        graph,
        &names,
        |op| {
            if op.is_sync() {
                link_lane
            } else if has_sub && sub_of(op) {
                sub_lane
            } else {
                0
            }
        },
        priority_of,
    )
}

/// Conventional backprop: the framework baseline. Single-lane canonical
/// order on compute; on data-parallel shapes each `S[dW_i]` is served in
/// layer-descending completion order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Conventional;

impl Strategy for Conventional {
    fn name(&self) -> &'static str {
        "conventional"
    }

    fn description(&self) -> &'static str {
        "conventional per-layer backprop (framework baseline)"
    }

    fn applicable(&self, _shape: Shape) -> bool {
        true
    }

    fn generate(&self, shape: Shape, _cost: &dyn CostModel) -> Result<Generated> {
        require_applicable(self, shape)?;
        match shape {
            Shape::SingleGpu { .. } => {
                let graph = shape.graph()?;
                let schedule = Schedule::single_lane("main", graph.conventional_backprop());
                Ok(Generated {
                    graph,
                    schedule,
                    complete: true,
                })
            }
            Shape::DataParallel { .. } => {
                let graph = shape.graph()?;
                // Priority = negative arena id reproduces the canonical
                // conventional order exactly (min-id greedy topological
                // order of a topological numbering is that numbering).
                let schedule = emit_streams(
                    &graph,
                    false,
                    |_| false,
                    |op| -(graph.op_index(op).expect("op of graph") as i64),
                );
                Ok(Generated {
                    graph,
                    schedule,
                    complete: true,
                })
            }
            Shape::Pipeline { layers, devices } => {
                let (graph, schedule) = op_level_schedule(
                    layers,
                    devices,
                    ooo_core::pipeline::Strategy::ModelParallel,
                    1,
                );
                Ok(Generated {
                    graph,
                    schedule,
                    complete: true,
                })
            }
        }
    }
}

/// Gradient fast-forwarding (the paper's Section 5.2 applied across
/// shapes): the whole `dO` chain first, then per-layer `dW`/`S[dW]`/`U`
/// with weight gradients on a sub stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastForward;

impl Strategy for FastForward {
    fn name(&self) -> &'static str {
        "fastforward"
    }

    fn description(&self) -> &'static str {
        "gradient fast-forwarding: dO chain first, dW tail on a sub stream (this paper)"
    }

    fn applicable(&self, _shape: Shape) -> bool {
        true
    }

    fn generate(&self, shape: Shape, _cost: &dyn CostModel) -> Result<Generated> {
        require_applicable(self, shape)?;
        match shape {
            Shape::SingleGpu { .. } | Shape::DataParallel { .. } => {
                let graph = shape.graph()?;
                let schedule = emit_streams(
                    &graph,
                    true,
                    |op| op.is_weight_grad(),
                    |op| match op {
                        Op::Loss | Op::OutputGrad(_) => 4_000,
                        Op::SyncWeightGrad(_) | Op::SyncOutputGrad(_) => 3_400,
                        Op::Update(_) => 3_200,
                        Op::WeightGrad(_) => 3_000,
                        Op::Forward(_) => 2_000,
                    },
                );
                Ok(Generated {
                    graph,
                    schedule,
                    complete: true,
                })
            }
            Shape::Pipeline { layers, devices } => {
                let (graph, schedule) =
                    op_level_schedule(layers, devices, ooo_core::pipeline::Strategy::OooPipe1, 1);
                Ok(Generated {
                    graph,
                    schedule,
                    complete: true,
                })
            }
        }
    }
}

/// Reverse first-k (the paper's data-parallel Algorithm 2): the first
/// `k = max(1, L/4)` layers' weight gradients are deferred past the `dO`
/// chain and then computed in ascending order, starting their critical
/// synchronizations earliest.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReverseK;

impl Strategy for ReverseK {
    fn name(&self) -> &'static str {
        "reversek"
    }

    fn description(&self) -> &'static str {
        "reverse first-k weight-gradient deferral for data-parallel sync (this paper)"
    }

    fn applicable(&self, shape: Shape) -> bool {
        matches!(shape, Shape::DataParallel { .. })
    }

    fn generate(&self, shape: Shape, _cost: &dyn CostModel) -> Result<Generated> {
        require_applicable(self, shape)?;
        let graph = shape.graph()?;
        let l = graph.layers();
        let k = (l / 4).max(1);
        let backward = reverse_first_k(&graph, k, None::<(u64, &ooo_core::cost::UnitCost)>)?;
        let mut compute = backward.clone();
        for i in 1..=l {
            compute.push(Op::Update(LayerId(i)));
        }
        for i in 1..=l {
            compute.push(Op::Forward(LayerId(i)));
        }
        let link: Vec<Op> = backward
            .iter()
            .filter_map(|op| match op {
                Op::WeightGrad(i) => Some(Op::SyncWeightGrad(*i)),
                _ => None,
            })
            .collect();
        let mut schedule = Schedule::new();
        schedule.add_lane("main", compute);
        schedule.add_lane("link", link);
        Ok(Generated {
            graph,
            schedule,
            complete: true,
        })
    }
}

/// Region-independent co-run profile whose sub-stream kernel times come
/// from the cost model (the constant speedup stands in for profiling).
struct CostProfile<'a> {
    speedup: f64,
    cost: &'a dyn CostModel,
}

impl SpeedupProfile for CostProfile<'_> {
    fn speedup(&self, _op: Op, _region: usize) -> f64 {
        self.speedup
    }

    fn sub_time(&self, op: Op, _region: usize) -> SimTime {
        self.cost.duration(op)
    }
}

/// Multi-region joint scheduling (the paper's Algorithm 1): the
/// backward pass only, split into main-stream regions with weight
/// gradients assigned to their best co-run region. The output is a
/// *partial* schedule (updates/forwards implicit).
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiRegion;

impl Strategy for MultiRegion {
    fn name(&self) -> &'static str {
        "multiregion"
    }

    fn description(&self) -> &'static str {
        "multi-region joint main/sub-stream scheduling of the backward pass (this paper)"
    }

    fn applicable(&self, shape: Shape) -> bool {
        matches!(shape, Shape::SingleGpu { .. })
    }

    fn complete(&self) -> bool {
        false
    }

    fn generate(&self, shape: Shape, cost: &dyn CostModel) -> Result<Generated> {
        require_applicable(self, shape)?;
        let graph = shape.graph()?;
        let per_region = (graph.layers() / 4).max(2);
        let (regions, subs) = backward_regions(&graph, &cost, per_region);
        let profile = CostProfile { speedup: 1.3, cost };
        let plan = multi_region_joint_schedule(&graph, &regions, &subs, &profile)?;
        Ok(Generated {
            schedule: plan.to_schedule(&regions),
            graph,
            complete: false,
        })
    }
}

/// OOO-Pipe2 (the paper's Section 5.3): modulo layer allocation plus
/// gradient fast-forwarding across pipeline stages.
#[derive(Debug, Clone, Copy, Default)]
pub struct OooPipe2;

impl Strategy for OooPipe2 {
    fn name(&self) -> &'static str {
        "ooopipe2"
    }

    fn description(&self) -> &'static str {
        "modulo layer allocation with gradient fast-forwarding across stages (this paper)"
    }

    fn applicable(&self, shape: Shape) -> bool {
        matches!(shape, Shape::Pipeline { .. })
    }

    fn generate(&self, shape: Shape, _cost: &dyn CostModel) -> Result<Generated> {
        require_applicable(self, shape)?;
        let Shape::Pipeline { layers, devices } = shape else {
            unreachable!("checked by applicable");
        };
        let (graph, schedule) =
            op_level_schedule(layers, devices, ooo_core::pipeline::Strategy::OooPipe2, 1);
        Ok(Generated {
            graph,
            schedule,
            complete: true,
        })
    }
}

/// Layer-wise gradient pipelining (arXiv 2108.06629): a dedicated
/// gradient worker runs `dW_i` immediately followed by `U_i`, pipelined
/// layer by layer against the main stream's `dO` chain — updates leave
/// the critical path entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayerPipe;

impl Strategy for LayerPipe {
    fn name(&self) -> &'static str {
        "layerpipe"
    }

    fn description(&self) -> &'static str {
        "layer-wise gradient/update pipelining on a gradient worker (arXiv 2108.06629)"
    }

    fn applicable(&self, shape: Shape) -> bool {
        matches!(shape, Shape::SingleGpu { .. } | Shape::DataParallel { .. })
    }

    fn generate(&self, shape: Shape, _cost: &dyn CostModel) -> Result<Generated> {
        require_applicable(self, shape)?;
        let graph = shape.graph()?;
        // Updates ride the sub lane with their weight gradient: priority
        // S[dW] > U > dW makes each layer's S/U pop before the next dW.
        let schedule = emit_streams(
            &graph,
            true,
            |op| matches!(op, Op::WeightGrad(_) | Op::Update(_)),
            |op| match op {
                Op::Loss | Op::OutputGrad(_) => 4_000,
                Op::SyncWeightGrad(_) | Op::SyncOutputGrad(_) => 3_150,
                Op::Update(_) => 3_100,
                Op::WeightGrad(_) => 3_000,
                Op::Forward(_) => 2_000,
            },
        );
        Ok(Generated {
            graph,
            schedule,
            complete: true,
        })
    }
}

/// Two-stage backpropagation (arXiv 2405.18047): stage one is the full
/// `dO` chain; stage two computes weight gradients in *ascending* layer
/// order so layer 1's synchronization and update — the ones gating the
/// next forward pass — complete first.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoBp;

impl TwoBp {
    /// Class priorities: `dO` stage strictly above the ascending `dW`
    /// stage, syncs and updates ascending below it.
    fn priority(l: usize, op: Op) -> i64 {
        let asc = |i: LayerId| (l - i.index()) as i64;
        match op {
            Op::Loss | Op::OutputGrad(_) => 9_000,
            Op::SyncOutputGrad(_) => 8_000,
            Op::WeightGrad(i) => 6_000 + asc(i),
            Op::SyncWeightGrad(i) => 4_000 + asc(i),
            Op::Update(i) => 2_000 + asc(i),
            Op::Forward(_) => 0,
        }
    }
}

impl Strategy for TwoBp {
    fn name(&self) -> &'static str {
        "twobp"
    }

    fn description(&self) -> &'static str {
        "two-stage backprop: full dX stage, then ascending dW stage (arXiv 2405.18047)"
    }

    fn applicable(&self, _shape: Shape) -> bool {
        true
    }

    fn generate(&self, shape: Shape, _cost: &dyn CostModel) -> Result<Generated> {
        require_applicable(self, shape)?;
        match shape {
            Shape::SingleGpu { .. } | Shape::DataParallel { .. } => {
                let graph = shape.graph()?;
                let l = graph.layers();
                let schedule = emit_streams(
                    &graph,
                    true,
                    |op| op.is_weight_grad(),
                    |op| TwoBp::priority(l, op),
                );
                Ok(Generated {
                    graph,
                    schedule,
                    complete: true,
                })
            }
            Shape::Pipeline { layers, devices } => {
                let graph = shape.graph()?;
                let devices = devices.max(1);
                let alloc = ooo_core::pipeline::Allocation::Contiguous;
                let mut names: Vec<String> = (0..devices).map(|d| format!("gpu{d}")).collect();
                names.push("link".to_string());
                let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
                let schedule = emit(
                    &graph,
                    &name_refs,
                    |op| {
                        if op.is_sync() {
                            devices
                        } else {
                            let layer = op.layer().map_or(layers, LayerId::index);
                            alloc.device_of(layer, layers, devices)
                        }
                    },
                    |op| TwoBp::priority(layers, op),
                );
                Ok(Generated {
                    graph,
                    schedule,
                    complete: true,
                })
            }
        }
    }
}

/// Interleaved gradient computation (arXiv 2002.05529): on a single
/// stream, each `dW_i` is issued the moment its incoming gradient
/// exists — before `dO_i` — and updates are deferred past the whole
/// backward pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct GradInterleaved;

impl Strategy for GradInterleaved {
    fn name(&self) -> &'static str {
        "gradinterleaved"
    }

    fn description(&self) -> &'static str {
        "single-stream dW/dO interleaving with deferred updates (arXiv 2002.05529)"
    }

    fn applicable(&self, shape: Shape) -> bool {
        matches!(shape, Shape::SingleGpu { .. } | Shape::DataParallel { .. })
    }

    fn generate(&self, shape: Shape, _cost: &dyn CostModel) -> Result<Generated> {
        require_applicable(self, shape)?;
        let graph = shape.graph()?;
        let schedule = emit_streams(
            &graph,
            false,
            |_| false,
            |op| match op {
                Op::Loss => 5_000,
                Op::SyncWeightGrad(_) | Op::SyncOutputGrad(_) => 4_800,
                Op::WeightGrad(_) => 4_500,
                Op::OutputGrad(_) => 4_000,
                Op::Update(_) => 3_000,
                Op::Forward(_) => 2_000,
            },
        );
        Ok(Generated {
            graph,
            schedule,
            complete: true,
        })
    }
}

/// The full strategy zoo, in tournament order.
pub fn zoo() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(Conventional),
        Box::new(FastForward),
        Box::new(MultiRegion),
        Box::new(ReverseK),
        Box::new(OooPipe2),
        Box::new(LayerPipe),
        Box::new(TwoBp),
        Box::new(GradInterleaved),
    ]
}

/// All zoo strategy names, in tournament order.
pub fn strategy_names() -> Vec<&'static str> {
    zoo().iter().map(|s| s.name()).collect()
}

/// Looks a strategy up by its stable name.
pub fn strategy_by_name(name: &str) -> Option<Box<dyn Strategy>> {
    zoo().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_core::cost::UnitCost;

    fn shapes() -> Vec<Shape> {
        vec![
            Shape::SingleGpu { layers: 6 },
            Shape::DataParallel { layers: 6 },
            Shape::Pipeline {
                layers: 8,
                devices: 2,
            },
        ]
    }

    #[test]
    fn zoo_names_are_unique_and_resolvable() {
        let names = strategy_names();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert_eq!(strategy_by_name(n).unwrap().name(), n);
        }
        assert!(strategy_by_name("nonesuch").is_none());
    }

    #[test]
    fn every_applicable_pair_is_clean_and_certified() {
        for shape in shapes() {
            for s in zoo() {
                if !s.applicable(shape) {
                    assert!(s.generate(shape, &UnitCost).is_err());
                    continue;
                }
                let g = s.generate(shape, &UnitCost).unwrap();
                let report = g.verify(&UnitCost, None);
                assert!(
                    report.is_clean(),
                    "{} on {}: {report}",
                    s.name(),
                    shape.kind()
                );
                g.certified(&UnitCost)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", s.name(), shape.kind()));
            }
        }
    }

    #[test]
    fn strategies_produce_distinct_schedules_per_shape() {
        for shape in shapes() {
            let outputs: Vec<(String, Schedule)> = zoo()
                .iter()
                .filter(|s| s.applicable(shape))
                .map(|s| {
                    (
                        s.name().to_string(),
                        s.generate(shape, &UnitCost).unwrap().schedule,
                    )
                })
                .collect();
            for i in 0..outputs.len() {
                for j in i + 1..outputs.len() {
                    assert_ne!(
                        outputs[i].1,
                        outputs[j].1,
                        "{} and {} coincide on {}",
                        outputs[i].0,
                        outputs[j].0,
                        shape.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn conventional_datapar_matches_canonical_projection() {
        let shape = Shape::DataParallel { layers: 4 };
        let g = Conventional.generate(shape, &UnitCost).unwrap();
        let canonical: Vec<Op> = g
            .graph
            .conventional_backprop()
            .into_iter()
            .filter(|op| !op.is_sync())
            .collect();
        assert_eq!(g.schedule.lanes[0].ops, canonical);
        let syncs: Vec<Op> = (1..=4)
            .rev()
            .map(|i| Op::SyncWeightGrad(LayerId(i)))
            .collect();
        assert_eq!(g.schedule.lanes[1].ops, syncs);
    }

    #[test]
    fn gradinterleaved_issues_dw_before_do() {
        let g = GradInterleaved
            .generate(Shape::SingleGpu { layers: 3 }, &UnitCost)
            .unwrap();
        let main = &g.schedule.lanes[0].ops;
        let pos = |op: Op| main.iter().position(|&o| o == op).unwrap();
        assert!(pos(Op::WeightGrad(LayerId(3))) < pos(Op::OutputGrad(LayerId(3))));
        assert!(pos(Op::WeightGrad(LayerId(2))) < pos(Op::OutputGrad(LayerId(2))));
    }

    #[test]
    fn twobp_dw_stage_is_ascending() {
        let g = TwoBp
            .generate(Shape::DataParallel { layers: 5 }, &UnitCost)
            .unwrap();
        let sub: Vec<Op> = g.schedule.lanes[1].ops.clone();
        let expect: Vec<Op> = (1..=5).map(|i| Op::WeightGrad(LayerId(i))).collect();
        assert_eq!(sub, expect);
        let link: Vec<Op> = g.schedule.lanes[2].ops.clone();
        let expect: Vec<Op> = (1..=5).map(|i| Op::SyncWeightGrad(LayerId(i))).collect();
        assert_eq!(link, expect);
    }

    #[test]
    fn layerpipe_pipelines_updates_with_gradients() {
        let g = LayerPipe
            .generate(Shape::SingleGpu { layers: 3 }, &UnitCost)
            .unwrap();
        let sub = &g.schedule.lanes[1].ops;
        let expect = vec![
            Op::WeightGrad(LayerId(3)),
            Op::Update(LayerId(3)),
            Op::WeightGrad(LayerId(2)),
            Op::Update(LayerId(2)),
            Op::WeightGrad(LayerId(1)),
            Op::Update(LayerId(1)),
        ];
        assert_eq!(sub, &expect);
    }

    #[test]
    fn multiregion_is_partial_but_clean() {
        let s = MultiRegion;
        assert!(!s.complete());
        let g = s
            .generate(Shape::SingleGpu { layers: 8 }, &UnitCost)
            .unwrap();
        assert!(g.schedule.num_ops() < g.graph.len());
        assert!(g.verify(&UnitCost, None).is_clean());
        g.certified(&UnitCost).unwrap();
    }
}
