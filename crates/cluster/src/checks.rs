//! Debug-build schedule verification hooks.
//!
//! Every schedule this crate hands to a simulator was produced by one of
//! the paper's algorithms; in debug builds (and in release builds with
//! the `verify` feature enabled) each one is re-checked by the
//! `ooo-verify` static analyzer before use. A scheduler bug that races a
//! gradient buffer or deadlocks a pipeline then fails loudly at the
//! source instead of producing a silently wrong makespan. Plain release
//! builds compile the hooks to nothing; the closures are never called.

#[cfg(any(debug_assertions, feature = "verify"))]
pub(crate) fn order_lazy<F>(build: F, complete: bool, what: &str)
where
    F: FnOnce() -> (ooo_core::TrainGraph, Vec<ooo_core::Op>),
{
    use ooo_verify::{Verifier, VerifyConfig};
    let (graph, order) = build();
    let report = Verifier::new(&graph)
        .with_config(VerifyConfig {
            require_complete: complete,
            ..VerifyConfig::default()
        })
        .verify_order(&order);
    assert!(
        !report.has_errors(),
        "{what}: scheduler produced an unsafe order:\n{report}"
    );
}

#[cfg(not(any(debug_assertions, feature = "verify")))]
pub(crate) fn order_lazy<F>(_build: F, _complete: bool, _what: &str)
where
    F: FnOnce() -> (ooo_core::TrainGraph, Vec<ooo_core::Op>),
{
}

#[cfg(any(debug_assertions, feature = "verify"))]
pub(crate) fn schedule_lazy<F>(build: F, complete: bool, what: &str)
where
    F: FnOnce() -> (ooo_core::TrainGraph, ooo_core::Schedule),
{
    use ooo_verify::{Verifier, VerifyConfig};
    let (graph, schedule) = build();
    let report = Verifier::new(&graph)
        .with_config(VerifyConfig {
            require_complete: complete,
            ..VerifyConfig::default()
        })
        .verify(&schedule);
    assert!(
        !report.has_errors(),
        "{what}: scheduler produced an unsafe schedule:\n{report}"
    );
}

#[cfg(not(any(debug_assertions, feature = "verify")))]
pub(crate) fn schedule_lazy<F>(_build: F, _complete: bool, _what: &str)
where
    F: FnOnce() -> (ooo_core::TrainGraph, ooo_core::Schedule),
{
}

/// Runs the static performance advisor over a schedule the engine is
/// about to simulate, asserting the analysis itself is sound: it must
/// not error on an engine-produced schedule, and the reported gap must
/// be a valid ratio (≥ 1, the makespan can never beat the lower bound).
/// Advisories themselves are informational and do not fail the run.
#[cfg(any(debug_assertions, feature = "verify"))]
pub(crate) fn advise_lazy<F>(build: F, what: &str)
where
    F: FnOnce() -> (ooo_core::TrainGraph, ooo_core::Schedule),
{
    use ooo_verify::perf::PerfAdvisor;
    let (graph, schedule) = build();
    let report = PerfAdvisor::new(&graph)
        .analyze(&schedule)
        .unwrap_or_else(|e| panic!("{what}: performance analysis failed: {e}"));
    if let Some(gap) = report.optimality_gap {
        assert!(
            gap >= 1.0 - 1e-9,
            "{what}: predicted makespan {} beats the lower bound {} (gap {gap})",
            report.predicted_makespan,
            report.lower_bound
        );
    }
}

#[cfg(not(any(debug_assertions, feature = "verify")))]
pub(crate) fn advise_lazy<F>(_build: F, _what: &str)
where
    F: FnOnce() -> (ooo_core::TrainGraph, ooo_core::Schedule),
{
}
