//! Drill-down analyses matching the paper's discussion subsections.

use crate::{Result, SimTime};
use ooo_core::cost::CostModel;
use ooo_core::graph::TrainGraph;
use ooo_core::op::{LayerId, Op};
use ooo_core::reverse_k::reverse_first_k;
use ooo_models::cost::{model_kernels, to_table_cost};
use ooo_models::{GpuProfile, ModelSpec};
use ooo_netsim::collective::byteps_sync_ns;
use ooo_netsim::topology::ClusterTopology;

/// Per-region co-execution anatomy (the paper's Section 8.2 discussion of
/// R2 vs R5): for each backward region, the fraction of main-stream
/// kernels that already saturate the SM block slots, and the mean
/// occupancy headroom a sub-stream could fill.
#[derive(Debug, Clone)]
pub struct RegionAnatomy {
    /// Region name.
    pub name: String,
    /// Number of main-stream kernels in the region.
    pub kernels: usize,
    /// Fraction of kernels whose grids fill all block slots.
    pub saturated_fraction: f64,
    /// Mean free-slot fraction across the region's kernels.
    pub mean_headroom: f64,
}

/// Computes per-region saturation for a model's backward pass.
pub fn region_anatomy(model: &ModelSpec, batch: usize, gpu: &GpuProfile) -> Vec<RegionAnatomy> {
    let kernels = model_kernels(model, batch, gpu);
    let slots = gpu.block_slots;
    let mut out = Vec::new();
    let mut hi = kernels.len();
    for (name, count) in model.regions.iter().rev() {
        let lo = hi - count;
        let grids: Vec<u32> = (lo + 1..=hi)
            .rev()
            .filter(|&i| i >= 2)
            .map(|i| kernels[i - 1].output_grad.blocks)
            .collect();
        if !grids.is_empty() {
            let saturated = grids.iter().filter(|&&b| b >= slots).count();
            let headroom: f64 = grids
                .iter()
                .map(|&b| 1.0 - (b.min(slots) as f64 / slots as f64))
                .sum::<f64>()
                / grids.len() as f64;
            out.push(RegionAnatomy {
                name: format!("bwd.{name}"),
                kernels: grids.len(),
                saturated_fraction: saturated as f64 / grids.len() as f64,
                mean_headroom: headroom,
            });
        }
        hi = lo;
    }
    out
}

/// The Section 8.3 synchronization budget for data-parallel training:
/// how reverse first-k turns the first layer's exposed synchronization
/// into overlapped time.
#[derive(Debug, Clone)]
pub struct SyncBudget {
    /// Total backward compute time.
    pub backward_ns: SimTime,
    /// The first layer's synchronization time (the critical one).
    pub first_sync_ns: SimTime,
    /// How much earlier `dW_1` completes under reverse first-k than
    /// under the conventional order.
    pub dw1_advanced_ns: SimTime,
    /// The `k` used.
    pub k: usize,
}

/// Computes the budget for `model` on `gpus` GPUs of `topology`.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn sync_budget(
    model: &ModelSpec,
    batch: usize,
    gpu: &GpuProfile,
    topology: &ClusterTopology,
    gpus: usize,
    k: usize,
) -> Result<SyncBudget> {
    let cost = to_table_cost(model, batch, gpu);
    let l = cost.layers();
    let graph = TrainGraph::data_parallel(l);
    let dw1_finish = |order: &[Op]| -> SimTime {
        let mut t = 0;
        for &op in order {
            t += cost.duration(op);
            if op == Op::WeightGrad(LayerId(1)) {
                return t;
            }
        }
        t
    };
    let conv = reverse_first_k::<ooo_core::cost::TableCost>(&graph, 0, None)?;
    let ooo = reverse_first_k::<ooo_core::cost::TableCost>(&graph, k, None)?;
    let advanced = dw1_finish(&conv).saturating_sub(dw1_finish(&ooo));
    Ok(SyncBudget {
        backward_ns: cost.total_backward(),
        first_sync_ns: byteps_sync_ns(topology, gpus, model.layers[0].param_bytes),
        dw1_advanced_ns: advanced,
        k,
    })
}

/// The communication-to-computation ratio of pipeline-parallel training
/// at a given allocation granularity — the quantity the paper measures
/// for BERT as 0.05 (NVLink), 0.16 (PCIe), and 1.8 (10 GbE) at the
/// transformer level, and which decides the modulo grouping.
pub fn comm_comp_ratio(
    model: &ModelSpec,
    micro_batch: usize,
    gpu: &GpuProfile,
    link: &ooo_netsim::link::LinkSpec,
    group: usize,
) -> f64 {
    let group = group.max(1);
    // Per allocation unit of `group` layers: compute of the group vs the
    // transfer of its boundary activation (both directions).
    let mut compute: f64 = 0.0;
    let mut comm: f64 = 0.0;
    for (i, layer) in model.layers.iter().enumerate() {
        compute += gpu.exec_ns(layer.flops_per_sample * micro_batch as f64) as f64 * 3.0;
        if (i + 1) % group == 0 && i + 1 < model.layers.len() {
            comm += 2.0
                * link.transfer_ns(layer.activation_bytes_per_sample * micro_batch as u64) as f64;
        }
    }
    if compute == 0.0 {
        return 0.0;
    }
    comm / compute
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_models::zoo::{densenet121, resnet};

    #[test]
    fn densenet_late_regions_have_headroom() {
        // R5-analog: DenseBlock-4's backward kernels leave SM headroom;
        // early blocks are more saturated.
        let a = region_anatomy(&densenet121(12, 32), 32, &GpuProfile::v100());
        let b4 = a.iter().find(|r| r.name.contains("denseblock4")).unwrap();
        assert!(
            b4.mean_headroom > 0.1,
            "block4 headroom {}",
            b4.mean_headroom
        );
    }

    #[test]
    fn sync_budget_shape_matches_section_83() {
        // ResNet-50 on 16 V100s: sync of dW_1 is a large fraction of the
        // backward pass, and reversing the first ~45 layers advances dW_1
        // by a meaningful chunk of backward compute.
        let m = resnet(50);
        let b = sync_budget(
            &m,
            128,
            &GpuProfile::v100(),
            &ClusterTopology::pub_a(),
            16,
            45,
        )
        .unwrap();
        assert!(b.first_sync_ns > 0);
        assert!(b.dw1_advanced_ns > 0);
        assert!(b.dw1_advanced_ns < b.backward_ns);
    }

    #[test]
    fn comm_comp_ratio_progression_matches_paper() {
        // Paper (BERT, transformer granularity): 0.05 NVLink, 0.16 PCIe,
        // 1.8 on 10 GbE — a >30x spread with the same ordering.
        use ooo_netsim::link::LinkSpec;
        let m = ooo_models::zoo::bert(24, 128);
        let gpu = GpuProfile::v100();
        let nv = comm_comp_ratio(&m, 24, &gpu, &LinkSpec::nvlink(), 1);
        let pcie = comm_comp_ratio(&m, 24, &gpu, &LinkSpec::pcie3(), 1);
        let eth = comm_comp_ratio(&m, 24, &gpu, &LinkSpec::ethernet_10g(), 1);
        assert!(nv < pcie && pcie < eth, "{nv} {pcie} {eth}");
        assert!(eth / nv > 10.0, "spread {}", eth / nv);
        // Grouping by two halves the boundary count and thus the ratio.
        let eth_g2 = comm_comp_ratio(&m, 24, &gpu, &LinkSpec::ethernet_10g(), 2);
        assert!(eth_g2 < eth * 0.7, "grouped {eth_g2} vs fine {eth}");
    }

    #[test]
    fn k_zero_advances_nothing() {
        let m = resnet(50);
        let b = sync_budget(
            &m,
            128,
            &GpuProfile::v100(),
            &ClusterTopology::pub_a(),
            16,
            0,
        )
        .unwrap();
        assert_eq!(b.dw1_advanced_ns, 0);
    }
}
