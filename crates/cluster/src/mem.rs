//! Ledger-checked memory accounting for the cluster engines.
//!
//! Every entry point computes the peak-memory story of one engine
//! configuration **twice** — the exact static ledger
//! ([`ooo_verify::mem::ledger_of_schedule`]) from the schedule alone,
//! and the per-op counter instrumented into the discrete-event
//! simulation ([`ooo_verify::mem::instrument_timeline`]) — and refuses
//! to answer unless the two agree at tolerance 0. A disagreement means
//! either the predictor and the simulator diverged (a certification
//! bug) or the lifetime rules mis-attributed a buffer, so it surfaces
//! as [`Error::InvalidConfig`] rather than a silently wrong number.

use crate::{Error, Result};
use ooo_core::cost::CostModel;
use ooo_core::datapar::{simulate_data_parallel, CommPolicy};
use ooo_core::list_scheduling::simulate;
use ooo_core::schedule::Schedule;
use ooo_core::{Op, TrainGraph};
use ooo_verify::mem::{
    instrument_timeline, ledger_of_schedule, ledger_of_spans, spans_of_timeline, MemCounter,
    MemLedger,
};

/// The reconciled memory story of one engine run.
#[derive(Debug, Clone)]
pub struct CheckedMemory {
    /// The exact static ledger (intervals, peak witness, residency).
    pub ledger: MemLedger,
    /// The instrumented simulator counter that confirmed it.
    pub counter: MemCounter,
}

fn reconcile(ledger: MemLedger, counter: MemCounter, what: &str) -> Result<CheckedMemory> {
    let same = ledger.initial == counter.initial
        && ledger.peak == counter.peak
        && ledger.final_usage == counter.final_usage;
    if !same {
        return Err(Error::InvalidConfig(format!(
            "{what}: static ledger (initial {}, peak {}, final {}) disagrees with the \
             instrumented simulator (initial {}, peak {}, final {})",
            ledger.initial,
            ledger.peak,
            ledger.final_usage,
            counter.initial,
            counter.peak,
            counter.final_usage
        )));
    }
    Ok(CheckedMemory { ledger, counter })
}

/// The checked memory story of a multi-lane schedule (single-GPU
/// multi-region and pipeline engines): static ledger from the schedule,
/// counter from [`ooo_core::list_scheduling::simulate`].
///
/// # Errors
///
/// [`Error::Core`] when the schedule does not execute;
/// [`Error::InvalidConfig`] when ledger and counter disagree.
pub fn checked_schedule_memory<C: CostModel>(
    graph: &TrainGraph,
    schedule: &Schedule,
    cost: &C,
) -> Result<CheckedMemory> {
    let ledger = ledger_of_schedule(graph, schedule, cost)?;
    let timeline = simulate(graph, schedule, cost)?;
    let counter = instrument_timeline(graph, cost, &timeline);
    reconcile(ledger, counter, "schedule")
}

/// The checked memory story of a flat backward order under the
/// data-parallel wire simulator (data-parallel and hybrid engines):
/// static ledger from the simulated spans, counter from
/// [`ooo_core::datapar::simulate_data_parallel`] — the same timeline,
/// accounted through two independent code paths.
///
/// # Errors
///
/// [`Error::Core`] when the order does not execute;
/// [`Error::InvalidConfig`] when ledger and counter disagree.
pub fn checked_order_memory<C: CostModel>(
    graph: &TrainGraph,
    order: &[Op],
    cost: &C,
    policy: CommPolicy,
) -> Result<CheckedMemory> {
    let timeline = simulate_data_parallel(graph, order, cost, policy)?;
    let (ledger, _) = ledger_of_spans(graph, cost, &spans_of_timeline(&timeline), None);
    let counter = instrument_timeline(graph, cost, &timeline);
    reconcile(ledger, counter, "order")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_core::cost::UnitCost;
    use ooo_core::pipeline::{op_level_schedule, Strategy};
    use ooo_core::reverse_k::reverse_first_k;

    #[test]
    fn pipeline_schedules_reconcile() {
        for strategy in [Strategy::GPipe, Strategy::OooPipe2] {
            let (graph, schedule) = op_level_schedule(6, 3, strategy, 1);
            let checked = checked_schedule_memory(&graph, &schedule, &UnitCost).unwrap();
            assert!(checked.ledger.peak >= checked.ledger.final_usage);
            assert_eq!(checked.ledger.peak, checked.counter.peak);
        }
    }

    #[test]
    fn datapar_orders_reconcile() {
        let graph = TrainGraph::data_parallel(6);
        let order = reverse_first_k(&graph, 2, None::<(u64, &UnitCost)>).unwrap();
        let checked =
            checked_order_memory(&graph, &order, &UnitCost, CommPolicy::PriorityByLayer).unwrap();
        assert_eq!(checked.ledger.initial, checked.counter.initial);
        assert!(checked.ledger.peak > 0);
    }
}
