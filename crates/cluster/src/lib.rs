//! # ooo-cluster — end-to-end training-system simulations
//!
//! Combines the scheduling algorithms (`ooo-core`), the GPU model
//! (`ooo-gpusim`), the communication model (`ooo-netsim`), and the model
//! zoo (`ooo-models`) into the three experiment families of the paper's
//! evaluation:
//!
//! - [`single`] — single-GPU training under five executor engines
//!   (TensorFlow, XLA, Nimble, OOO-XLA with pre-compiled issue, OOO-XLA
//!   with pre-compiled issue + multi-stream ooo computation), including
//!   the OOM behaviour the paper reports for Nimble at large batches;
//! - [`datapar`] — synchronous data-parallel training under Horovod,
//!   BytePS, and OOO-BytePS (reverse first-k with the concave `k`-search)
//!   on the Table 2 clusters;
//! - [`pipeline`] — pipeline-parallel training under cross-layer model
//!   parallelism, GPipe, PipeDream, DAPPLE, Megatron-style interleaving,
//!   OOO-Pipe1, and OOO-Pipe2 with configurable modulo grouping;
//! - [`hybrid`] — the Section 6 combination of reverse first-k and
//!   gradient fast-forwarding;
//! - [`analysis`] — the drill-down numbers of the paper's discussion
//!   subsections (R2/R5 anatomy, the ResNet-50 synchronization budget);
//! - [`mem`] — ledger-checked memory accounting: the exact static
//!   ledger reconciled against a per-op counter instrumented into the
//!   engine simulations.

#![warn(missing_docs)]

pub mod ablation;
pub mod analysis;
mod checks;
pub mod datapar;
pub mod hybrid;
pub mod mem;
pub mod pipeline;
pub mod single;
pub mod strategy;

/// Simulated time in nanoseconds.
pub type SimTime = u64;

/// Errors from the cluster engines.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The configuration would not fit in GPU memory (the paper's "N/A"
    /// entries, e.g. Nimble at batch 64+).
    OutOfMemory {
        /// Bytes required.
        required: u64,
        /// Bytes available on the GPU.
        capacity: u64,
    },
    /// Underlying scheduling error.
    Core(ooo_core::Error),
    /// Underlying GPU-simulation error.
    Gpu(ooo_gpusim::Error),
    /// Structurally invalid configuration.
    InvalidConfig(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::OutOfMemory { required, capacity } => {
                write!(f, "out of memory: needs {required} B, GPU has {capacity} B")
            }
            Error::Core(e) => write!(f, "scheduling error: {e}"),
            Error::Gpu(e) => write!(f, "gpu simulation error: {e}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ooo_core::Error> for Error {
    fn from(e: ooo_core::Error) -> Self {
        Error::Core(e)
    }
}

impl From<ooo_gpusim::Error> for Error {
    fn from(e: ooo_gpusim::Error) -> Self {
        Error::Gpu(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
