//! Combined scheduling across parallelism dimensions (the paper's
//! Section 6).
//!
//! A first-order model of hybrid data+pipeline training: `replicas`
//! pipeline groups train data-parallel; after each pipeline iteration the
//! per-layer weight gradients are synchronized across replicas over each
//! node's NIC. Reverse first-k scheduling decides the *priority order* of
//! those synchronizations, and gradient fast-forwarding shapes the
//! pipeline itself — the combination the paper sketches and leaves the
//! optimal split of as future work.

use crate::pipeline::run as run_pipeline;
use crate::{Result, SimTime};
use ooo_core::pipeline::{Strategy, TaskKind};
use ooo_core::trace::Timeline;
use ooo_models::{GpuProfile, ModelSpec};
use ooo_netsim::commsim::{
    intervals_to_lane, simulate_queue_recorded, total_finish, CommRequest, Policy,
};
use ooo_netsim::link::LinkSpec;

/// Result of a hybrid run.
#[derive(Debug, Clone)]
pub struct HybridReport {
    /// Steady-state iteration time including exposed synchronization.
    pub iter_ns: SimTime,
    /// Global throughput (samples/s across all replicas).
    pub throughput: f64,
    /// The split point used.
    pub k: usize,
}

/// Runs hybrid data+pipeline training with reverse-first-k applied to the
/// first `k` layers' synchronizations.
///
/// # Errors
///
/// Propagates pipeline-simulation errors.
#[allow(clippy::too_many_arguments)]
pub fn run_combined(
    model: &ModelSpec,
    batch: usize,
    micro_batches: usize,
    gpu: &GpuProfile,
    intra_link: &LinkSpec,
    sync_link: &LinkSpec,
    devices: usize,
    replicas: usize,
    k: usize,
    iterations: usize,
) -> Result<HybridReport> {
    run_combined_inner(
        model,
        batch,
        micro_batches,
        gpu,
        intra_link,
        sync_link,
        devices,
        replicas,
        k,
        iterations,
        false,
    )
    .map(|(r, _)| r)
}

/// Like [`run_combined`], additionally returning the traced [`Timeline`]:
/// the pipeline's per-device lanes (with explicit bubble stalls) plus a
/// `sync` lane showing the cross-replica gradient synchronizations of the
/// final simulated iteration, aligned to that iteration's start.
///
/// # Errors
///
/// Propagates pipeline-simulation errors.
#[allow(clippy::too_many_arguments)]
pub fn run_combined_traced(
    model: &ModelSpec,
    batch: usize,
    micro_batches: usize,
    gpu: &GpuProfile,
    intra_link: &LinkSpec,
    sync_link: &LinkSpec,
    devices: usize,
    replicas: usize,
    k: usize,
    iterations: usize,
) -> Result<(HybridReport, Timeline)> {
    let (report, timeline) = run_combined_inner(
        model,
        batch,
        micro_batches,
        gpu,
        intra_link,
        sync_link,
        devices,
        replicas,
        k,
        iterations,
        true,
    )?;
    Ok((report, timeline.expect("traced run returns a timeline")))
}

#[allow(clippy::too_many_arguments)]
fn run_combined_inner(
    model: &ModelSpec,
    batch: usize,
    micro_batches: usize,
    gpu: &GpuProfile,
    intra_link: &LinkSpec,
    sync_link: &LinkSpec,
    devices: usize,
    replicas: usize,
    k: usize,
    iterations: usize,
    traced: bool,
) -> Result<(HybridReport, Option<Timeline>)> {
    let strategy = Strategy::OooPipe2;
    // Debug builds re-check the Section 6 combination implied by this
    // split: reverse first-k over layers 1..=k, fast-forwarding for the
    // rest, against the data-parallel dependency graph whose S[dW] edges
    // model the cross-replica synchronizations prioritized below.
    crate::checks::order_lazy(
        || {
            let l = model.num_layers();
            let graph = ooo_core::graph::TrainGraph::data_parallel(l);
            let order = ooo_core::combined::combined_backward_order(&graph, k.min(l))
                .expect("k clamped to the layer count");
            (graph, order)
        },
        false,
        "combined reverse first-k + fast-forwarding order",
    );
    crate::checks::advise_lazy(
        || {
            let l = model.num_layers();
            let graph = ooo_core::graph::TrainGraph::data_parallel(l);
            let order = ooo_core::combined::combined_backward_order(&graph, k.min(l))
                .expect("k clamped to the layer count");
            (graph, ooo_core::Schedule::single_lane("gpu", order))
        },
        "combined reverse first-k + fast-forwarding order",
    );
    let report = run_pipeline(
        model,
        batch,
        micro_batches,
        gpu,
        intra_link,
        devices,
        strategy,
        1,
        iterations,
    )?;
    let iter = report.iter_ns;
    let mut timeline = if traced {
        Some(
            report
                .result
                .to_timeline(&format!("hybrid/{devices}pipe x{replicas}")),
        )
    } else {
        None
    };
    if replicas <= 1 {
        // No data-parallel dimension: pure pipeline.
        return Ok((
            HybridReport {
                iter_ns: iter,
                throughput: batch as f64 * 1e9 / iter.max(1) as f64,
                k,
            },
            timeline,
        ));
    }

    // Gradient synchronization across replicas: one request per layer,
    // ready when the layer's last dW of the final simulated iteration
    // completed, prioritized so that the first k layers go out first
    // (reverse first-k), the rest by completion order.
    let last_iter = iterations.saturating_sub(1);
    let mut ready = vec![0u64; model.num_layers() + 1];
    let mut iter_start = SimTime::MAX;
    for e in &report.result.events {
        if e.task.iter == last_iter {
            iter_start = iter_start.min(e.start);
            if e.task.kind == TaskKind::WeightGrad && e.task.layer <= model.num_layers() {
                ready[e.task.layer] = ready[e.task.layer].max(e.end);
            }
        }
    }
    let iter_start = if iter_start == SimTime::MAX {
        0
    } else {
        iter_start
    };
    let wire = |bytes: u64| {
        let n = replicas.max(1) as f64;
        (2.0 * (n - 1.0) / n * bytes as f64) as u64
    };
    let requests: Vec<CommRequest> = (1..=model.num_layers())
        .map(|i| CommRequest {
            id: i,
            bytes: if replicas > 1 {
                wire(model.layers[i - 1].param_bytes)
            } else {
                0
            },
            ready_ns: ready[i].saturating_sub(iter_start),
            priority: if i <= k { i as i64 } else { 1_000 + i as i64 },
        })
        .collect();
    let (completions, intervals) =
        simulate_queue_recorded(sync_link, 512 * 1024, Policy::Priority, &requests);
    if let Some(tl) = &mut timeline {
        // The queue runs in iteration-relative time; shift its intervals
        // to the final iteration's start so the sync lane lines up with
        // the pipeline lanes.
        let shifted: Vec<_> = intervals
            .iter()
            .map(|iv| ooo_netsim::commsim::ServiceInterval {
                start_ns: iv.start_ns + iter_start,
                end_ns: iv.end_ns + iter_start,
                ..*iv
            })
            .collect();
        tl.lanes
            .push(intervals_to_lane("sync", &shifted, |i| format!("S[dW{i}]")));
    }
    let sync_end = total_finish(&completions);
    // Exposed synchronization: whatever finishes after the pipeline's own
    // iteration time delays the next iteration.
    let iter_ns = iter.max(sync_end);
    Ok((
        HybridReport {
            iter_ns,
            throughput: (batch * replicas) as f64 * 1e9 / iter_ns.max(1) as f64,
            k,
        },
        timeline,
    ))
}

/// Searches the split `k` with the concave heuristic and returns the best
/// report.
///
/// # Errors
///
/// Propagates pipeline-simulation errors.
#[allow(clippy::too_many_arguments)]
pub fn run_combined_best_k(
    model: &ModelSpec,
    batch: usize,
    micro_batches: usize,
    gpu: &GpuProfile,
    intra_link: &LinkSpec,
    sync_link: &LinkSpec,
    devices: usize,
    replicas: usize,
    iterations: usize,
) -> Result<HybridReport> {
    let l = model.num_layers();
    let k = ooo_core::combined::choose_split_k(l, |k| {
        run_combined(
            model,
            batch,
            micro_batches,
            gpu,
            intra_link,
            sync_link,
            devices,
            replicas,
            k,
            iterations,
        )
        .map(|r| r.throughput)
        .unwrap_or(f64::NEG_INFINITY)
    });
    run_combined(
        model,
        batch,
        micro_batches,
        gpu,
        intra_link,
        sync_link,
        devices,
        replicas,
        k,
        iterations,
    )
}

/// Like [`run_combined_best_k`], but the split depth `k` is chosen by
/// the [`ooo_tune`] autotuner's exhaustive predictor sweep
/// ([`ooo_tune::order::best_combined_k`]) instead of the concave
/// [`ooo_core::combined::choose_split_k`] heuristic: every combined
/// backward order is statically scored under a cost table whose
/// `S[dW_i]` is the round-trip wire time of the replica sync link, and
/// the predictor-optimal `k` drives the engine. The sweep sees the whole
/// surface, so a non-concave throughput curve cannot trap it in a local
/// optimum. Returns the report together with the chosen `k` and its
/// predicted makespan.
///
/// # Errors
///
/// As [`run_combined`], plus [`crate::Error::InvalidConfig`] when the
/// predictor sweep fails (which would indicate an engine bug: combined
/// orders are valid by construction).
#[allow(clippy::too_many_arguments)]
pub fn run_combined_tuned(
    model: &ModelSpec,
    batch: usize,
    micro_batches: usize,
    gpu: &GpuProfile,
    intra_link: &LinkSpec,
    sync_link: &LinkSpec,
    devices: usize,
    replicas: usize,
    iterations: usize,
) -> Result<(HybridReport, usize, SimTime)> {
    let l = model.num_layers();
    let graph = ooo_core::TrainGraph::data_parallel(l);
    let mut cost = ooo_models::cost::to_table_cost(model, batch, gpu);
    for (i, layer) in model.layers.iter().enumerate() {
        let bytes = if replicas <= 1 { 0 } else { layer.param_bytes };
        cost.layer_mut(ooo_core::op::LayerId(i + 1)).sync_weight = sync_link.transfer_ns(2 * bytes);
    }
    let (k, predicted) = ooo_tune::order::best_combined_k(
        &graph,
        &cost,
        ooo_core::datapar::CommPolicy::PriorityByLayer,
    )
    .map_err(|e| crate::Error::InvalidConfig(format!("autotuning failed: {e}")))?;
    let report = run_combined(
        model,
        batch,
        micro_batches,
        gpu,
        intra_link,
        sync_link,
        devices,
        replicas,
        k,
        iterations,
    )?;
    Ok((report, k, predicted))
}

/// Like [`run_combined_tuned`], but the chosen combined backward order
/// is additionally put before the [`ooo_cert`] exact solver: the
/// two-lane realization of the tuned order (compute + sync link) is
/// either proven optimal over all class-legal lane assignments and
/// orderings, refuted with a strictly better witness schedule, or
/// bracketed by certified bounds when the node budget runs out.
/// Returns the report, the chosen `k`, its predicted makespan, and the
/// certificate.
///
/// # Errors
///
/// As [`run_combined_tuned`], plus [`crate::Error::InvalidConfig`]
/// when the certifier rejects the tuned order (which would indicate an
/// engine bug: combined orders are valid by construction).
#[allow(clippy::too_many_arguments)]
pub fn run_combined_certified(
    model: &ModelSpec,
    batch: usize,
    micro_batches: usize,
    gpu: &GpuProfile,
    intra_link: &LinkSpec,
    sync_link: &LinkSpec,
    devices: usize,
    replicas: usize,
    iterations: usize,
    budget: &ooo_cert::Budget,
) -> Result<(HybridReport, usize, SimTime, ooo_cert::Solved)> {
    let (report, k, predicted) = run_combined_tuned(
        model,
        batch,
        micro_batches,
        gpu,
        intra_link,
        sync_link,
        devices,
        replicas,
        iterations,
    )?;
    let l = model.num_layers();
    let graph = ooo_core::TrainGraph::data_parallel(l);
    let mut cost = ooo_models::cost::to_table_cost(model, batch, gpu);
    for (i, layer) in model.layers.iter().enumerate() {
        let bytes = if replicas <= 1 { 0 } else { layer.param_bytes };
        cost.layer_mut(ooo_core::op::LayerId(i + 1)).sync_weight = sync_link.transfer_ns(2 * bytes);
    }
    let order = ooo_core::combined::combined_backward_order(&graph, k)
        .map_err(|e| crate::Error::InvalidConfig(format!("combined order failed: {e}")))?;
    let (_, solved) = ooo_cert::certify_order(
        &graph,
        &order,
        &cost,
        ooo_core::datapar::CommPolicy::PriorityByLayer,
        budget,
    )
    .map_err(|e| crate::Error::InvalidConfig(format!("certification failed: {e}")))?;
    Ok((report, k, predicted, solved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_models::zoo::bert;

    #[test]
    fn single_replica_equals_pure_pipeline() {
        let m = bert(12, 128);
        let gpu = GpuProfile::v100();
        let nv = LinkSpec::nvlink();
        let eth = LinkSpec::ethernet_10g();
        let hybrid = run_combined(&m, 96, 4, &gpu, &nv, &eth, 4, 1, 0, 4).unwrap();
        let pure = run_pipeline(&m, 96, 4, &gpu, &nv, 4, Strategy::OooPipe2, 1, 4).unwrap();
        assert_eq!(hybrid.iter_ns, pure.iter_ns);
    }

    #[test]
    fn replication_adds_sync_cost_but_scales_throughput() {
        let m = bert(12, 128);
        let gpu = GpuProfile::v100();
        let nv = LinkSpec::nvlink();
        let eth = LinkSpec::ethernet_25g();
        let one = run_combined(&m, 96, 4, &gpu, &nv, &eth, 4, 1, 0, 4).unwrap();
        let four = run_combined(&m, 96, 4, &gpu, &nv, &eth, 4, 4, 0, 4).unwrap();
        assert!(four.iter_ns >= one.iter_ns);
        assert!(four.throughput > one.throughput);
    }

    #[test]
    fn traced_hybrid_aligns_sync_with_pipeline_lanes() {
        let m = bert(12, 128);
        let gpu = GpuProfile::v100();
        let nv = LinkSpec::nvlink();
        let eth = LinkSpec::ethernet_10g();
        let (r, tl) = run_combined_traced(&m, 96, 4, &gpu, &nv, &eth, 4, 4, 2, 4).unwrap();
        tl.validate().unwrap();
        let plain = run_combined(&m, 96, 4, &gpu, &nv, &eth, 4, 4, 2, 4).unwrap();
        assert_eq!(r.iter_ns, plain.iter_ns);
        let summary = tl.summarize();
        assert!(summary.lane("gpu0").is_some(), "pipeline lanes missing");
        assert!(summary.lane("sync").unwrap().busy_ns > 0, "sync lane idle");
    }

    #[test]
    fn best_k_no_worse_than_k_zero() {
        let m = bert(12, 128);
        let gpu = GpuProfile::v100();
        let nv = LinkSpec::nvlink();
        let eth = LinkSpec::ethernet_10g();
        let base = run_combined(&m, 96, 4, &gpu, &nv, &eth, 4, 4, 0, 4).unwrap();
        let best = run_combined_best_k(&m, 96, 4, &gpu, &nv, &eth, 4, 4, 4).unwrap();
        assert!(best.throughput >= base.throughput * 0.999);
    }

    #[test]
    fn tuned_hybrid_split_matches_the_report() {
        let m = bert(12, 128);
        let gpu = GpuProfile::v100();
        let nv = LinkSpec::nvlink();
        let eth = LinkSpec::ethernet_10g();
        let (r, k, predicted) = run_combined_tuned(&m, 96, 4, &gpu, &nv, &eth, 4, 4, 4).unwrap();
        assert_eq!(r.k, k);
        assert!(k <= m.num_layers());
        assert!(predicted > 0);
        assert!(r.throughput > 0.0);
    }
}
