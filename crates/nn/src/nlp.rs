//! NLP-model building blocks: embeddings, recurrent cells, self-attention,
//! and transformer feed-forward blocks — the numeric substrate of the
//! paper's RNN/BERT/GPT experiments, with the same split-backward
//! interface as the vision layers.
//!
//! Shapes follow a flattened-token convention: activations are
//! `[tokens, hidden]` matrices where `tokens = batch x seq_len`, so every
//! block composes inside a [`crate::network::Sequential`] and inherits
//! its schedule-driven backward execution.

use crate::error::{Error, Result};
use crate::layers::{Cache, CacheExtra, Layer};
use ooo_tensor::ops;
use ooo_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Token embedding lookup: `[tokens]` of ids (carried as a one-hot-free
/// f32 tensor of indices) -> `[tokens, hidden]`.
///
/// The ids are passed as a `[tokens, 1]` tensor of integral floats so the
/// layer fits the `Tensor -> Tensor` pipeline.
pub struct Embedding {
    table: Tensor,
}

impl Embedding {
    /// Creates a seeded embedding table `[vocab, hidden]`.
    pub fn seeded(vocab: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Embedding {
            table: ooo_tensor::init::xavier(&mut rng, &[vocab, hidden], vocab, hidden),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.dims()[0]
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.table.dims()[1]
    }

    fn ids(input: &Tensor, vocab: usize) -> Result<Vec<usize>> {
        input
            .data()
            .iter()
            .map(|&v| {
                let id = v as usize;
                if v < 0.0 || v.fract() != 0.0 || id >= vocab {
                    return Err(Error::Invalid(format!(
                        "embedding id {v} out of vocab {vocab}"
                    )));
                }
                Ok(id)
            })
            .collect()
    }
}

impl Layer for Embedding {
    fn name(&self) -> &'static str {
        "embedding"
    }

    fn forward(&self, input: &Tensor) -> Result<(Tensor, Cache)> {
        let ids = Self::ids(input, self.vocab())?;
        let h = self.hidden();
        let mut out = Tensor::zeros(&[ids.len(), h]);
        for (row, &id) in ids.iter().enumerate() {
            out.data_mut()[row * h..(row + 1) * h]
                .copy_from_slice(&self.table.data()[id * h..(id + 1) * h]);
        }
        Ok((
            out,
            Cache {
                input: input.clone(),
                extra: CacheExtra::None,
            },
        ))
    }

    fn output_grad(&self, cache: &Cache, _grad_out: &Tensor) -> Result<Tensor> {
        // Token ids are not differentiable; the chain ends here.
        Ok(Tensor::zeros(cache.input.dims()))
    }

    fn weight_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Vec<Tensor>> {
        let ids = Self::ids(&cache.input, self.vocab())?;
        let h = self.hidden();
        let mut dtable = Tensor::zeros(self.table.dims());
        for (row, &id) in ids.iter().enumerate() {
            for c in 0..h {
                dtable.data_mut()[id * h + c] += grad_out.data()[row * h + c];
            }
        }
        Ok(vec![dtable])
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.table]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.table]
    }
}

/// A simple (Elman) recurrent cell unrolled over a fixed sequence length:
/// `h_t = tanh(x_t W_x + h_{t-1} W_h)`, input `[batch*seq, width]`
/// grouped as `seq` consecutive rows per batch element, output the same
/// shape. This is the per-cell computation of the paper's 16-cell RNN.
pub struct RnnCell {
    w_input: Tensor,
    w_hidden: Tensor,
    seq_len: usize,
}

impl RnnCell {
    /// Creates a seeded cell with hidden width `width` and sequence
    /// length `seq_len`.
    pub fn seeded(width: usize, seq_len: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        RnnCell {
            w_input: ooo_tensor::init::xavier(&mut rng, &[width, width], width, width),
            w_hidden: ooo_tensor::init::xavier(&mut rng, &[width, width], width, width),
            seq_len,
        }
    }

    fn split_checks(&self, input: &Tensor) -> Result<(usize, usize)> {
        if input.shape().rank() != 2 {
            return Err(Error::Invalid("rnn cell expects [tokens, width]".into()));
        }
        let (tokens, width) = (input.dims()[0], input.dims()[1]);
        if width != self.w_input.dims()[0] {
            return Err(Error::Invalid(format!(
                "rnn width {} != input width {width}",
                self.w_input.dims()[0]
            )));
        }
        if tokens % self.seq_len != 0 {
            return Err(Error::Invalid(format!(
                "{tokens} tokens not divisible by seq_len {}",
                self.seq_len
            )));
        }
        Ok((tokens / self.seq_len, width))
    }
}

impl Layer for RnnCell {
    fn name(&self) -> &'static str {
        "rnn_cell"
    }

    fn forward(&self, input: &Tensor) -> Result<(Tensor, Cache)> {
        let (batch, width) = self.split_checks(input)?;
        // Pre-activations are cached for the backward pass (stored as the
        // normalized/extra slot: we keep the *outputs*, whose tanh
        // derivative is 1 - y^2).
        let mut out = Tensor::zeros(input.dims());
        for b in 0..batch {
            let mut h_prev = vec![0.0f32; width];
            for t in 0..self.seq_len {
                let row = b * self.seq_len + t;
                let x = Tensor::from_vec(
                    input.data()[row * width..(row + 1) * width].to_vec(),
                    &[1, width],
                )?;
                let hp = Tensor::from_vec(h_prev.clone(), &[1, width])?;
                let pre = ops::add(
                    &ops::matmul(&x, &self.w_input)?,
                    &ops::matmul(&hp, &self.w_hidden)?,
                )?;
                let h = ops::tanh(&pre);
                out.data_mut()[row * width..(row + 1) * width].copy_from_slice(h.data());
                h_prev = h.into_vec();
            }
        }
        let extra = CacheExtra::Norm {
            normalized: out.clone(),
            inv_std: Vec::new(),
        };
        Ok((
            out,
            Cache {
                input: input.clone(),
                extra,
            },
        ))
    }

    fn output_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Tensor> {
        let (dx, _, _) = self.backward_full(cache, grad_out)?;
        Ok(dx)
    }

    fn weight_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Vec<Tensor>> {
        let (_, dwx, dwh) = self.backward_full(cache, grad_out)?;
        Ok(vec![dwx, dwh])
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w_input, &self.w_hidden]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w_input, &mut self.w_hidden]
    }
}

impl RnnCell {
    /// Backpropagation through time for one cell; returns
    /// `(dx, dW_x, dW_h)`. Computed twice when both `output_grad` and
    /// `weight_grad` run — the price of the split interface for recurrent
    /// layers (conventional frameworks fuse them for RNNs too; the
    /// paper's RNN results treat each cell as one scheduling layer).
    fn backward_full(&self, cache: &Cache, grad_out: &Tensor) -> Result<(Tensor, Tensor, Tensor)> {
        let CacheExtra::Norm {
            normalized: outputs,
            ..
        } = &cache.extra
        else {
            return Err(Error::MissingState("rnn cache missing outputs".into()));
        };
        let (batch, width) = self.split_checks(&cache.input)?;
        let mut dx = Tensor::zeros(cache.input.dims());
        let mut dwx = Tensor::zeros(self.w_input.dims());
        let mut dwh = Tensor::zeros(self.w_hidden.dims());
        for b in 0..batch {
            let mut dh_next = vec![0.0f32; width];
            for t in (0..self.seq_len).rev() {
                let row = b * self.seq_len + t;
                let y = &outputs.data()[row * width..(row + 1) * width];
                let g = &grad_out.data()[row * width..(row + 1) * width];
                // dpre = (g + dh_next) * (1 - y^2).
                let dpre: Vec<f32> = (0..width)
                    .map(|c| (g[c] + dh_next[c]) * (1.0 - y[c] * y[c]))
                    .collect();
                let dpre_t = Tensor::from_vec(dpre, &[1, width])?;
                let x = Tensor::from_vec(
                    cache.input.data()[row * width..(row + 1) * width].to_vec(),
                    &[1, width],
                )?;
                let h_prev = if t == 0 {
                    Tensor::zeros(&[1, width])
                } else {
                    let prev = (row - 1) * width;
                    Tensor::from_vec(outputs.data()[prev..prev + width].to_vec(), &[1, width])?
                };
                ops::axpy(&mut dwx, 1.0, &ops::matmul_tn(&x, &dpre_t)?)?;
                ops::axpy(&mut dwh, 1.0, &ops::matmul_tn(&h_prev, &dpre_t)?)?;
                let dxr = ops::matmul_nt(&dpre_t, &self.w_input)?;
                dx.data_mut()[row * width..(row + 1) * width].copy_from_slice(dxr.data());
                dh_next = ops::matmul_nt(&dpre_t, &self.w_hidden)?.into_vec();
            }
        }
        Ok((dx, dwx, dwh))
    }
}

/// Single-head self-attention over flattened token rows:
/// `y = softmax(QK^T / sqrt(d)) V` with `Q = xW_q` etc., applied per
/// sequence of `seq_len` consecutive rows.
pub struct SelfAttention {
    w_q: Tensor,
    w_k: Tensor,
    w_v: Tensor,
    seq_len: usize,
}

impl SelfAttention {
    /// Creates a seeded attention block of width `hidden`.
    pub fn seeded(hidden: usize, seq_len: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mk =
            |rng: &mut StdRng| ooo_tensor::init::xavier(rng, &[hidden, hidden], hidden, hidden);
        SelfAttention {
            w_q: mk(&mut rng),
            w_k: mk(&mut rng),
            w_v: mk(&mut rng),
            seq_len,
        }
    }

    fn checks(&self, input: &Tensor) -> Result<(usize, usize)> {
        if input.shape().rank() != 2 {
            return Err(Error::Invalid("attention expects [tokens, hidden]".into()));
        }
        let (tokens, width) = (input.dims()[0], input.dims()[1]);
        if width != self.w_q.dims()[0] {
            return Err(Error::Invalid("attention width mismatch".into()));
        }
        if tokens % self.seq_len != 0 {
            return Err(Error::Invalid(format!(
                "{tokens} tokens not divisible by seq_len {}",
                self.seq_len
            )));
        }
        Ok((tokens / self.seq_len, width))
    }

    fn forward_seq(&self, x: &Tensor) -> Result<(Tensor, Tensor, Tensor, Tensor, Tensor)> {
        let q = ops::matmul(x, &self.w_q)?;
        let k = ops::matmul(x, &self.w_k)?;
        let v = ops::matmul(x, &self.w_v)?;
        let d = (self.w_q.dims()[1] as f32).sqrt();
        let scores = ops::scale(&ops::matmul_nt(&q, &k)?, 1.0 / d);
        let attn = ops::softmax_rows(&scores)?;
        let y = ops::matmul(&attn, &v)?;
        Ok((y, q, k, v, attn))
    }

    /// Full backward for one sequence. Returns `(dx, dWq, dWk, dWv)`.
    fn backward_seq(&self, x: &Tensor, dy: &Tensor) -> Result<(Tensor, Tensor, Tensor, Tensor)> {
        let (_, q, k, v, attn) = self.forward_seq(x)?;
        let d = (self.w_q.dims()[1] as f32).sqrt();
        // y = attn x V.
        let dattn = ops::matmul_nt(dy, &v)?;
        let dv = ops::matmul_tn(&attn, dy)?;
        // Softmax backward per row: ds = attn * (dattn - rowsum(dattn * attn)).
        let (s, n) = (attn.dims()[0], attn.dims()[1]);
        let mut dscores = Tensor::zeros(&[s, n]);
        for r in 0..s {
            let a = &attn.data()[r * n..(r + 1) * n];
            let g = &dattn.data()[r * n..(r + 1) * n];
            let dotv: f32 = a.iter().zip(g).map(|(x, y)| x * y).sum();
            for c in 0..n {
                dscores.data_mut()[r * n + c] = a[c] * (g[c] - dotv);
            }
        }
        let dscores = ops::scale(&dscores, 1.0 / d);
        // scores = Q K^T.
        let dq = ops::matmul(&dscores, &k)?;
        let dk = ops::matmul_tn(&dscores, &q)?;
        // Projections.
        let dwq = ops::matmul_tn(x, &dq)?;
        let dwk = ops::matmul_tn(x, &dk)?;
        let dwv = ops::matmul_tn(x, &dv)?;
        let mut dx = ops::matmul_nt(&dq, &self.w_q)?;
        ops::axpy(&mut dx, 1.0, &ops::matmul_nt(&dk, &self.w_k)?)?;
        ops::axpy(&mut dx, 1.0, &ops::matmul_nt(&dv, &self.w_v)?)?;
        Ok((dx, dwq, dwk, dwv))
    }

    fn per_sequence<F>(&self, input: &Tensor, grad_out: &Tensor, mut f: F) -> Result<()>
    where
        F: FnMut(usize, &Tensor, &Tensor) -> Result<()>,
    {
        let (batch, width) = self.checks(input)?;
        for b in 0..batch {
            let lo = b * self.seq_len * width;
            let hi = lo + self.seq_len * width;
            let x = Tensor::from_vec(input.data()[lo..hi].to_vec(), &[self.seq_len, width])?;
            let dy = Tensor::from_vec(grad_out.data()[lo..hi].to_vec(), &[self.seq_len, width])?;
            f(b, &x, &dy)?;
        }
        Ok(())
    }
}

impl Layer for SelfAttention {
    fn name(&self) -> &'static str {
        "self_attention"
    }

    fn forward(&self, input: &Tensor) -> Result<(Tensor, Cache)> {
        let (batch, width) = self.checks(input)?;
        let mut out = Tensor::zeros(input.dims());
        for b in 0..batch {
            let lo = b * self.seq_len * width;
            let hi = lo + self.seq_len * width;
            let x = Tensor::from_vec(input.data()[lo..hi].to_vec(), &[self.seq_len, width])?;
            let (y, ..) = self.forward_seq(&x)?;
            out.data_mut()[lo..hi].copy_from_slice(y.data());
        }
        Ok((
            out,
            Cache {
                input: input.clone(),
                extra: CacheExtra::None,
            },
        ))
    }

    fn output_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Tensor> {
        let width = cache.input.dims()[1];
        let mut dx = Tensor::zeros(cache.input.dims());
        self.per_sequence(&cache.input, grad_out, |b, x, dy| {
            let (d, ..) = self.backward_seq(x, dy)?;
            let lo = b * self.seq_len * width;
            dx.data_mut()[lo..lo + self.seq_len * width].copy_from_slice(d.data());
            Ok(())
        })?;
        Ok(dx)
    }

    fn weight_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Vec<Tensor>> {
        let mut dwq = Tensor::zeros(self.w_q.dims());
        let mut dwk = Tensor::zeros(self.w_k.dims());
        let mut dwv = Tensor::zeros(self.w_v.dims());
        self.per_sequence(&cache.input, grad_out, |_, x, dy| {
            let (_, q, k, v) = self.backward_seq(x, dy)?;
            ops::axpy(&mut dwq, 1.0, &q)?;
            ops::axpy(&mut dwk, 1.0, &k)?;
            ops::axpy(&mut dwv, 1.0, &v)?;
            Ok(())
        })?;
        Ok(vec![dwq, dwk, dwv])
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w_q, &self.w_k, &self.w_v]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w_q, &mut self.w_k, &mut self.w_v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_tensor::ops::sum;

    fn finite_diff_input<L: Layer>(layer: &L, x: &Tensor, tol: f32) {
        let (y, cache) = layer.forward(x).unwrap();
        let dy = Tensor::ones(y.dims());
        let dx = layer.output_grad(&cache, &dy).unwrap();
        let eps = 1e-2;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (sum(&layer.forward(&xp).unwrap().0) - sum(&layer.forward(&xm).unwrap().0))
                / (2.0 * eps);
            assert!(
                (dx.data()[i] - fd).abs() < tol,
                "{}: dx[{i}]={} fd={fd}",
                layer.name(),
                dx.data()[i]
            );
        }
    }

    fn finite_diff_weights<L: Layer>(layer: &mut L, x: &Tensor, tol: f32) {
        let (y, cache) = layer.forward(x).unwrap();
        let dy = Tensor::ones(y.dims());
        let grads = layer.weight_grad(&cache, &dy).unwrap();
        let eps = 1e-2;
        for (pi, grad) in grads.iter().enumerate() {
            let grad = grad.clone();
            for i in (0..grad.numel()).step_by(7) {
                let orig = layer.params()[pi].data()[i];
                layer.params_mut()[pi].data_mut()[i] = orig + eps;
                let fp = sum(&layer.forward(x).unwrap().0);
                layer.params_mut()[pi].data_mut()[i] = orig - eps;
                let fm = sum(&layer.forward(x).unwrap().0);
                layer.params_mut()[pi].data_mut()[i] = orig;
                let fd = (fp - fm) / (2.0 * eps);
                assert!(
                    (grad.data()[i] - fd).abs() < tol,
                    "param {pi}[{i}]: {} vs {fd}",
                    grad.data()[i]
                );
            }
        }
    }

    #[test]
    fn embedding_lookup_and_grads() {
        let emb = Embedding::seeded(10, 4, 3);
        let ids = Tensor::from_vec(vec![2.0, 7.0, 2.0], &[3, 1]).unwrap();
        let (y, cache) = emb.forward(&ids).unwrap();
        assert_eq!(y.dims(), &[3, 4]);
        // Rows 0 and 2 are the same table row.
        assert_eq!(&y.data()[0..4], &y.data()[8..12]);
        let dy = Tensor::ones(&[3, 4]);
        let grads = emb.weight_grad(&cache, &dy).unwrap();
        // Token 2 appears twice: gradient 2.0 per column.
        assert_eq!(grads[0].get(&[2, 0]).unwrap(), 2.0);
        assert_eq!(grads[0].get(&[7, 0]).unwrap(), 1.0);
        assert_eq!(grads[0].get(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn embedding_rejects_bad_ids() {
        let emb = Embedding::seeded(4, 2, 1);
        assert!(emb
            .forward(&Tensor::from_vec(vec![4.0], &[1, 1]).unwrap())
            .is_err());
        assert!(emb
            .forward(&Tensor::from_vec(vec![-1.0], &[1, 1]).unwrap())
            .is_err());
        assert!(emb
            .forward(&Tensor::from_vec(vec![1.5], &[1, 1]).unwrap())
            .is_err());
    }

    #[test]
    fn rnn_cell_gradients() {
        let mut cell = RnnCell::seeded(3, 4, 7);
        let x = Tensor::from_vec(
            (0..24).map(|i| ((i * 5 % 11) as f32) * 0.1 - 0.5).collect(),
            &[8, 3],
        )
        .unwrap();
        finite_diff_input(&cell, &x, 5e-2);
        finite_diff_weights(&mut cell, &x, 5e-2);
    }

    #[test]
    fn rnn_cell_state_propagates() {
        // Changing an early token's input must change later outputs in
        // the same sequence, but not other sequences.
        let cell = RnnCell::seeded(2, 3, 9);
        let x = Tensor::from_vec(vec![0.1; 12], &[6, 2]).unwrap();
        let (y1, _) = cell.forward(&x).unwrap();
        let mut x2 = x.clone();
        x2.data_mut()[0] = 1.0; // first token of sequence 0
        let (y2, _) = cell.forward(&x2).unwrap();
        // Last token of sequence 0 differs.
        assert_ne!(&y1.data()[4..6], &y2.data()[4..6]);
        // Sequence 1 untouched.
        assert_eq!(&y1.data()[6..12], &y2.data()[6..12]);
    }

    #[test]
    fn attention_gradients() {
        let mut attn = SelfAttention::seeded(4, 3, 21);
        let x = Tensor::from_vec(
            (0..24).map(|i| ((i * 7 % 13) as f32) * 0.1 - 0.6).collect(),
            &[6, 4],
        )
        .unwrap();
        finite_diff_input(&attn, &x, 6e-2);
        finite_diff_weights(&mut attn, &x, 6e-2);
    }

    #[test]
    fn attention_mixes_within_sequence_only() {
        let attn = SelfAttention::seeded(4, 2, 5);
        let x = Tensor::from_vec((0..16).map(|i| i as f32 * 0.1).collect(), &[4, 4]).unwrap();
        let (y1, _) = attn.forward(&x).unwrap();
        let mut x2 = x.clone();
        x2.data_mut()[0] += 1.0; // token 0 of sequence 0
        let (y2, _) = attn.forward(&x2).unwrap();
        // Sequence 0 (rows 0-1) changes; sequence 1 (rows 2-3) does not.
        assert_ne!(&y1.data()[0..8], &y2.data()[0..8]);
        assert_eq!(&y1.data()[8..16], &y2.data()[8..16]);
    }

    #[test]
    fn shape_validation() {
        let attn = SelfAttention::seeded(4, 3, 1);
        assert!(attn.forward(&Tensor::zeros(&[4, 4])).is_err()); // 4 % 3 != 0
        assert!(attn.forward(&Tensor::zeros(&[3, 5])).is_err()); // width mismatch
        let rnn = RnnCell::seeded(4, 3, 1);
        assert!(rnn.forward(&Tensor::zeros(&[4, 4])).is_err());
    }
}
