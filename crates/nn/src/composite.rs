//! Composite layers: residual wrappers, (seeded) dropout, and a full
//! transformer block.
//!
//! A [`TransformerBlock`] is *one* scheduling layer — attention, the
//! feed-forward network, both layer norms, and both residual connections
//! execute as a unit. This matches the granularity the paper schedules
//! NLP models at (modulo allocation "at a transformer level"), while the
//! block's two backward kernels stay independently schedulable like any
//! other layer's.

use crate::error::{Error, Result};
use crate::layers::{Cache, CacheExtra, Dense, Layer, LayerNorm};
use crate::nlp::SelfAttention;
use ooo_tensor::ops;
use ooo_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A residual connection around an inner layer: `y = x + f(x)`.
///
/// The inner layer must preserve shape.
pub struct Residual<L: Layer> {
    inner: L,
}

impl<L: Layer> Residual<L> {
    /// Wraps `inner` with a skip connection.
    pub fn new(inner: L) -> Self {
        Residual { inner }
    }
}

impl<L: Layer> Layer for Residual<L> {
    fn name(&self) -> &'static str {
        "residual"
    }

    fn forward(&self, input: &Tensor) -> Result<(Tensor, Cache)> {
        let (fy, cache) = self.inner.forward(input)?;
        if fy.dims() != input.dims() {
            return Err(Error::Invalid(format!(
                "residual inner changed shape {:?} -> {:?}",
                input.dims(),
                fy.dims()
            )));
        }
        let y = ops::add(input, &fy)?;
        Ok((y, cache))
    }

    fn output_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Tensor> {
        // dy/dx = I + df/dx.
        let inner = self.inner.output_grad(cache, grad_out)?;
        Ok(ops::add(grad_out, &inner)?)
    }

    fn weight_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Vec<Tensor>> {
        self.inner.weight_grad(cache, grad_out)
    }

    fn params(&self) -> Vec<&Tensor> {
        self.inner.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.inner.params_mut()
    }
}

/// Seeded inverted dropout. The mask is drawn once per forward pass from
/// a per-layer RNG advanced deterministically, cached, and read by the
/// backward kernel — so results remain schedule-invariant and
/// run-reproducible.
pub struct Dropout {
    rate: f32,
    seed: u64,
    calls: std::sync::atomic::AtomicU64,
}

impl Dropout {
    /// Creates dropout with drop probability `rate` in `[0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] for out-of-range rates.
    pub fn seeded(rate: f32, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&rate) {
            return Err(Error::Invalid(format!(
                "dropout rate {rate} outside [0, 1)"
            )));
        }
        Ok(Dropout {
            rate,
            seed,
            calls: std::sync::atomic::AtomicU64::new(0),
        })
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&self, input: &Tensor) -> Result<(Tensor, Cache)> {
        let call = self
            .calls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(self.seed ^ call.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let keep = 1.0 - self.rate;
        let mask: Vec<f32> = (0..input.numel())
            .map(|_| {
                if rng.gen::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        let mask = Tensor::from_vec(mask, input.dims())?;
        let y = ops::mul(input, &mask)?;
        Ok((
            y,
            Cache {
                input: input.clone(),
                extra: CacheExtra::Norm {
                    normalized: mask,
                    inv_std: Vec::new(),
                },
            },
        ))
    }

    fn output_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Tensor> {
        let CacheExtra::Norm {
            normalized: mask, ..
        } = &cache.extra
        else {
            return Err(Error::MissingState("dropout cache missing mask".into()));
        };
        Ok(ops::mul(grad_out, mask)?)
    }

    fn weight_grad(&self, _cache: &Cache, _grad_out: &Tensor) -> Result<Vec<Tensor>> {
        Ok(Vec::new())
    }
}

/// A pre-norm transformer encoder block as one scheduling layer:
///
/// ```text
/// a = x + Attention(LN1(x))
/// y = a + W2 GELU(W1 LN2(a))
/// ```
///
/// The backward pass is recomputation-based: both backward kernels replay
/// the cheap forward pieces they need from the cached input, which keeps
/// the cache small and — crucially — keeps `output_grad` and
/// `weight_grad` independent of each other's results.
pub struct TransformerBlock {
    ln1: LayerNorm,
    attention: SelfAttention,
    ln2: LayerNorm,
    ff1: Dense,
    ff2: Dense,
}

impl TransformerBlock {
    /// Creates a seeded block of width `hidden` with a `4*hidden`
    /// feed-forward inner width over sequences of `seq_len` tokens.
    pub fn seeded(hidden: usize, seq_len: usize, seed: u64) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(hidden),
            attention: SelfAttention::seeded(hidden, seq_len, seed),
            ln2: LayerNorm::new(hidden),
            ff1: Dense::seeded(hidden, 4 * hidden, seed + 100),
            ff2: Dense::seeded(4 * hidden, hidden, seed + 200),
        }
    }

    /// Forward through all sub-layers, returning every intermediate cache
    /// needed by the backward kernels.
    #[allow(clippy::type_complexity)]
    fn forward_full(
        &self,
        x: &Tensor,
    ) -> Result<(Tensor, (Cache, Cache, Tensor, Cache, Cache, Cache, Tensor))> {
        let (n1, c_ln1) = self.ln1.forward(x)?;
        let (att, c_att) = self.attention.forward(&n1)?;
        let a = ops::add(x, &att)?;
        let (n2, c_ln2) = self.ln2.forward(&a)?;
        let (h, c_ff1) = self.ff1.forward(&n2)?;
        let g = ops::gelu(&h);
        let (f, c_ff2_pre) = self.ff2.forward(&g)?;
        let y = ops::add(&a, &f)?;
        Ok((y, (c_ln1, c_att, a.clone(), c_ln2, c_ff1, c_ff2_pre, h)))
    }

    /// Shared backward: returns `(dx, all weight grads)`; each public
    /// kernel discards the half it does not need.
    fn backward_full(&self, x: &Tensor, dy: &Tensor) -> Result<(Tensor, Vec<Tensor>)> {
        let (_, (c_ln1, c_att, _a, c_ln2, c_ff1, c_ff2, h)) = self.forward_full(x)?;
        // y = a + ff2(gelu(ff1(ln2(a)))).
        let d_f = dy; // gradient into the FFN output
        let d_g = self.ff2.output_grad(&c_ff2, d_f)?;
        let dw_ff2 = self.ff2.weight_grad(&c_ff2, d_f)?;
        let d_h = ops::gelu_grad(&h, &d_g)?;
        let d_n2 = self.ff1.output_grad(&c_ff1, &d_h)?;
        let dw_ff1 = self.ff1.weight_grad(&c_ff1, &d_h)?;
        let d_a_ff = self.ln2.output_grad(&c_ln2, &d_n2)?;
        let dw_ln2 = self.ln2.weight_grad(&c_ln2, &d_n2)?;
        let d_a = ops::add(dy, &d_a_ff)?; // residual: da = dy + d(ffn path)
                                          // a = x + attention(ln1(x)).
        let d_att = &d_a;
        let d_n1 = self.attention.output_grad(&c_att, d_att)?;
        let dw_att = self.attention.weight_grad(&c_att, d_att)?;
        let d_x_att = self.ln1.output_grad(&c_ln1, &d_n1)?;
        let dw_ln1 = self.ln1.weight_grad(&c_ln1, &d_n1)?;
        let dx = ops::add(&d_a, &d_x_att)?;
        let mut grads = Vec::new();
        grads.extend(dw_ln1);
        grads.extend(dw_att);
        grads.extend(dw_ln2);
        grads.extend(dw_ff1);
        grads.extend(dw_ff2);
        Ok((dx, grads))
    }
}

impl Layer for TransformerBlock {
    fn name(&self) -> &'static str {
        "transformer_block"
    }

    fn forward(&self, input: &Tensor) -> Result<(Tensor, Cache)> {
        let (y, _) = self.forward_full(input)?;
        Ok((
            y,
            Cache {
                input: input.clone(),
                extra: CacheExtra::None,
            },
        ))
    }

    fn output_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Tensor> {
        Ok(self.backward_full(&cache.input, grad_out)?.0)
    }

    fn weight_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Vec<Tensor>> {
        Ok(self.backward_full(&cache.input, grad_out)?.1)
    }

    fn params(&self) -> Vec<&Tensor> {
        let mut p = self.ln1.params();
        p.extend(self.attention.params());
        p.extend(self.ln2.params());
        p.extend(self.ff1.params());
        p.extend(self.ff2.params());
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        let mut p = self.ln1.params_mut();
        p.extend(self.attention.params_mut());
        p.extend(self.ln2.params_mut());
        p.extend(self.ff1.params_mut());
        p.extend(self.ff2.params_mut());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_tensor::ops::sum;

    #[test]
    fn residual_identity_when_inner_zero() {
        // A dense layer with zero weights: residual output == input.
        let inner = Dense::new(Tensor::zeros(&[4, 4]), Tensor::zeros(&[4])).unwrap();
        let res = Residual::new(inner);
        let x = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[2, 4]).unwrap();
        let (y, _) = res.forward(&x).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn residual_gradient_adds_identity() {
        let inner = Dense::seeded(4, 4, 3);
        let res = Residual::new(inner);
        let x = Tensor::from_vec((0..8).map(|i| i as f32 * 0.1).collect(), &[2, 4]).unwrap();
        let (y, cache) = res.forward(&x).unwrap();
        let dy = Tensor::ones(y.dims());
        let dx = res.output_grad(&cache, &dy).unwrap();
        // Finite difference of sum(residual(x)).
        let eps = 1e-2;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (sum(&res.forward(&xp).unwrap().0) - sum(&res.forward(&xm).unwrap().0))
                / (2.0 * eps);
            assert!((dx.data()[i] - fd).abs() < 1e-2, "i={i}");
        }
    }

    #[test]
    fn residual_rejects_shape_changes() {
        let inner = Dense::seeded(4, 3, 1);
        let res = Residual::new(inner);
        assert!(res.forward(&Tensor::zeros(&[2, 4])).is_err());
    }

    #[test]
    fn dropout_scales_and_masks() {
        let d = Dropout::seeded(0.5, 7).unwrap();
        let x = Tensor::ones(&[64, 8]);
        let (y, cache) = d.forward(&x).unwrap();
        // Kept entries are scaled by 1/keep = 2; dropped are 0.
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        let frac_kept = y.data().iter().filter(|&&v| v > 0.0).count() as f32 / y.numel() as f32;
        assert!((0.35..0.65).contains(&frac_kept), "kept {frac_kept}");
        // Backward uses the same mask.
        let dy = Tensor::ones(y.dims());
        let dx = d.output_grad(&cache, &dy).unwrap();
        assert_eq!(dx.data(), y.data());
        assert!(Dropout::seeded(1.0, 0).is_err());
    }

    #[test]
    fn dropout_masks_differ_across_calls_but_reproduce_across_runs() {
        let mk = || Dropout::seeded(0.5, 11).unwrap();
        let x = Tensor::ones(&[32, 4]);
        let a = mk();
        let (y1, _) = a.forward(&x).unwrap();
        let (y2, _) = a.forward(&x).unwrap();
        assert_ne!(y1.data(), y2.data(), "mask should advance per call");
        let b = mk();
        let (z1, _) = b.forward(&x).unwrap();
        assert_eq!(y1.data(), z1.data(), "fresh layer replays the sequence");
    }

    #[test]
    fn transformer_block_input_gradient_checks() {
        let block = TransformerBlock::seeded(4, 3, 31);
        let x = Tensor::from_vec(
            (0..24).map(|i| ((i * 7 % 13) as f32) * 0.1 - 0.6).collect(),
            &[6, 4],
        )
        .unwrap();
        let (y, cache) = block.forward(&x).unwrap();
        assert_eq!(y.dims(), x.dims());
        let dy = Tensor::ones(y.dims());
        let dx = block.output_grad(&cache, &dy).unwrap();
        let eps = 1e-2;
        for i in (0..x.numel()).step_by(3) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (sum(&block.forward(&xp).unwrap().0) - sum(&block.forward(&xm).unwrap().0))
                / (2.0 * eps);
            assert!(
                (dx.data()[i] - fd).abs() < 0.15,
                "i={i}: {} vs {fd}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn transformer_block_weight_gradients_check() {
        let mut block = TransformerBlock::seeded(4, 2, 13);
        let x =
            Tensor::from_vec((0..16).map(|i| (i as f32) * 0.05 - 0.4).collect(), &[4, 4]).unwrap();
        let (y, cache) = block.forward(&x).unwrap();
        let dy = Tensor::ones(y.dims());
        let grads = block.weight_grad(&cache, &dy).unwrap();
        assert_eq!(grads.len(), block.params().len());
        let eps = 2e-2;
        for (pi, grad) in grads.iter().enumerate() {
            let grad = grad.clone();
            for i in (0..grad.numel()).step_by(11) {
                let orig = block.params()[pi].data()[i];
                block.params_mut()[pi].data_mut()[i] = orig + eps;
                let fp = sum(&block.forward(&x).unwrap().0);
                block.params_mut()[pi].data_mut()[i] = orig - eps;
                let fm = sum(&block.forward(&x).unwrap().0);
                block.params_mut()[pi].data_mut()[i] = orig;
                let fd = (fp - fm) / (2.0 * eps);
                assert!(
                    (grad.data()[i] - fd).abs() < 0.15,
                    "param {pi}[{i}]: {} vs {fd}",
                    grad.data()[i]
                );
            }
        }
    }
}
