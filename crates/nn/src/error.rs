//! Error types for the training stack.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by layers, networks, and the training loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An underlying tensor operation failed.
    Tensor(ooo_tensor::Error),
    /// A scheduling-graph operation failed.
    Schedule(ooo_core::Error),
    /// The backward pass was driven with state missing (e.g. `dW_i`
    /// requested before the incoming gradient of layer `i` exists).
    MissingState(String),
    /// Structural problem (empty network, shape mismatch between layers).
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Tensor(e) => write!(f, "tensor error: {e}"),
            Error::Schedule(e) => write!(f, "schedule error: {e}"),
            Error::MissingState(msg) => write!(f, "missing state: {msg}"),
            Error::Invalid(msg) => write!(f, "invalid: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Tensor(e) => Some(e),
            Error::Schedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ooo_tensor::Error> for Error {
    fn from(e: ooo_tensor::Error) -> Self {
        Error::Tensor(e)
    }
}

impl From<ooo_core::Error> for Error {
    fn from(e: ooo_core::Error) -> Self {
        Error::Schedule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_source() {
        let e: Error = ooo_tensor::Error::InvalidArgument("x".into()).into();
        assert!(matches!(e, Error::Tensor(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: Error = ooo_core::Error::InvalidConfig("y".into()).into();
        assert!(e.to_string().contains("schedule"));
    }
}
