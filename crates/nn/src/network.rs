//! Sequential networks whose backward pass executes under an arbitrary
//! valid schedule.
//!
//! [`Sequential::train_step`] takes an explicit operation order (any
//! linearization of the `ooo-core` dependency graph — conventional,
//! fast-forwarded, reverse first-k, or randomly shuffled-but-valid) and
//! drives the layers' split backward kernels in exactly that order. The
//! per-kernel computations are fixed, so **every valid order produces
//! bitwise-identical results** — the numerically checkable version of the
//! paper's claim that ooo backprop does not change training semantics.

use crate::error::{Error, Result};
use crate::layers::{Cache, Layer};
use crate::optim::Optimizer;
use ooo_core::graph::{GraphConfig, TrainGraph};
use ooo_core::op::{LayerId, Op};
use ooo_core::schedule::validate_partial_order;
use ooo_tensor::ops::softmax_cross_entropy;
use ooo_tensor::Tensor;

/// A feed-forward stack of layers with schedulable backward execution.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

/// Gradients produced by one backward pass: `grads[i]` holds layer `i`'s
/// parameter gradients (empty for parameter-free layers).
pub type Grads = Vec<Vec<Tensor>>;

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Sequential::default()
    }

    /// Appends a layer.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names in order.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// The scheduling graph of one training iteration for this network
    /// (single-GPU shape: no synchronization ops).
    ///
    /// # Panics
    ///
    /// Panics when the network is empty.
    pub fn train_graph(&self) -> TrainGraph {
        TrainGraph::new(GraphConfig::single_gpu(self.layers.len())).expect("non-empty network")
    }

    /// Runs the forward pass, returning the logits and per-layer caches.
    ///
    /// # Errors
    ///
    /// Returns layer errors on shape mismatches, or [`Error::Invalid`] for
    /// an empty network.
    pub fn forward(&self, input: &Tensor) -> Result<(Tensor, Vec<Cache>)> {
        if self.layers.is_empty() {
            return Err(Error::Invalid("forward on an empty network".into()));
        }
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut x = input.clone();
        for layer in &self.layers {
            let (y, cache) = layer.forward(&x)?;
            caches.push(cache);
            x = y;
        }
        Ok((x, caches))
    }

    /// Computes the loss and parameter gradients of one batch, executing
    /// the backward pass **in the given operation order**.
    ///
    /// `order` may be a full iteration order or backward-only; `Forward`,
    /// `Update`, and synchronization operations are ignored here (updates
    /// are applied by [`Sequential::train_step`]). The order is validated
    /// against the network's dependency graph first.
    ///
    /// # Errors
    ///
    /// Returns validation errors for invalid orders and layer errors for
    /// shape problems.
    pub fn grads_with_order(
        &self,
        input: &Tensor,
        labels: &[usize],
        order: &[Op],
    ) -> Result<(f32, Grads)> {
        let (logits, caches) = self.forward(input)?;
        let graph = self.train_graph();
        validate_partial_order(&graph, order)?;
        self.backward_with_order(&logits, &caches, labels, order)
    }

    /// The backward half of [`Sequential::grads_with_order`], reusing an
    /// existing forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MissingState`] when the order references a
    /// gradient whose producer has not run — which cannot happen for
    /// orders validated against the graph.
    pub fn backward_with_order(
        &self,
        logits: &Tensor,
        caches: &[Cache],
        labels: &[usize],
        order: &[Op],
    ) -> Result<(f32, Grads)> {
        let l = self.layers.len();
        // out_grad[i] = gradient w.r.t. layer i's output (1-based).
        let mut out_grad: Vec<Option<Tensor>> = vec![None; l + 1];
        let mut grads: Vec<Option<Vec<Tensor>>> = vec![None; l];
        let mut loss_value: Option<f32> = None;

        for &op in order {
            match op {
                Op::Loss => {
                    let (loss, g) = softmax_cross_entropy(logits, labels)?;
                    loss_value = Some(loss);
                    out_grad[l] = Some(g);
                }
                Op::OutputGrad(LayerId(i)) => {
                    let incoming = out_grad[i]
                        .as_ref()
                        .ok_or_else(|| Error::MissingState(format!("dO{i} before its gradient")))?;
                    let g = self.layers[i - 1].output_grad(&caches[i - 1], incoming)?;
                    out_grad[i - 1] = Some(g);
                }
                Op::WeightGrad(LayerId(i)) => {
                    let incoming = out_grad[i]
                        .as_ref()
                        .ok_or_else(|| Error::MissingState(format!("dW{i} before its gradient")))?;
                    grads[i - 1] = Some(self.layers[i - 1].weight_grad(&caches[i - 1], incoming)?);
                }
                // Updates are applied by the caller; forwards belong to
                // the next iteration; synchronizations are communication.
                Op::Update(_) | Op::Forward(_) | Op::SyncWeightGrad(_) | Op::SyncOutputGrad(_) => {}
            }
        }

        let loss = loss_value
            .ok_or_else(|| Error::MissingState("order never computed the loss".into()))?;
        let grads = grads
            .into_iter()
            .enumerate()
            .map(|(i, g)| {
                g.ok_or_else(|| Error::MissingState(format!("order never computed dW{}", i + 1)))
            })
            .collect::<Result<Grads>>()?;
        Ok((loss, grads))
    }

    /// Applies parameter gradients with the optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] when the gradient structure does not
    /// match the network.
    pub fn apply_grads<O: Optimizer>(&mut self, grads: &Grads, opt: &mut O) -> Result<()> {
        if grads.len() != self.layers.len() {
            return Err(Error::Invalid(format!(
                "{} gradient sets for {} layers",
                grads.len(),
                self.layers.len()
            )));
        }
        for (li, (layer, layer_grads)) in self.layers.iter_mut().zip(grads).enumerate() {
            let params = layer.params_mut();
            if params.len() != layer_grads.len() {
                return Err(Error::Invalid(format!(
                    "layer {li}: {} gradients for {} params",
                    layer_grads.len(),
                    params.len()
                )));
            }
            for (pi, (param, grad)) in params.into_iter().zip(layer_grads).enumerate() {
                opt.step((li, pi), param, grad)?;
            }
        }
        Ok(())
    }

    /// One full training step under the given backward order: forward,
    /// scheduled backward, parameter update. Returns the batch loss.
    ///
    /// # Errors
    ///
    /// Propagates validation, layer, and optimizer errors.
    pub fn train_step<O: Optimizer>(
        &mut self,
        input: &Tensor,
        labels: &[usize],
        order: &[Op],
        opt: &mut O,
    ) -> Result<f32> {
        let (loss, grads) = self.grads_with_order(input, labels, order)?;
        self.apply_grads(&grads, opt)?;
        Ok(loss)
    }

    /// Loss and accuracy on a labelled batch (no parameter update).
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn evaluate(&self, input: &Tensor, labels: &[usize]) -> Result<(f32, f32)> {
        let (logits, _) = self.forward(input)?;
        let (loss, _) = softmax_cross_entropy(&logits, labels)?;
        let n = logits.dims()[0];
        let classes = logits.dims()[1];
        let mut correct = 0usize;
        for (r, &label) in labels.iter().enumerate() {
            let row = &logits.data()[r * classes..(r + 1) * classes];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if pred == label {
                correct += 1;
            }
        }
        Ok((loss, correct as f32 / n.max(1) as f32))
    }

    /// Flattens all parameters into a single vector (for equivalence
    /// checks).
    pub fn snapshot_params(&self) -> Vec<f32> {
        self.layers
            .iter()
            .flat_map(|l| l.params().into_iter().flat_map(|p| p.data().to_vec()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synthetic_classification;
    use crate::layers::{Dense, Relu};
    use crate::optim::{Momentum, Sgd};

    fn mlp(seed: u64) -> Sequential {
        let mut net = Sequential::new();
        net.push(Dense::seeded(6, 24, seed));
        net.push(Relu::new());
        net.push(Dense::seeded(24, 16, seed + 1));
        net.push(Relu::new());
        net.push(Dense::seeded(16, 4, seed + 2));
        net
    }

    #[test]
    fn forward_produces_logits() {
        let net = mlp(1);
        let (x, _) = synthetic_classification(0, 10, 6, 4);
        let (logits, caches) = net.forward(&x).unwrap();
        assert_eq!(logits.dims(), &[10, 4]);
        assert_eq!(caches.len(), 5);
    }

    #[test]
    fn empty_network_rejected() {
        let net = Sequential::new();
        assert!(net.forward(&Tensor::zeros(&[1, 1])).is_err());
    }

    #[test]
    fn conventional_and_fast_forward_orders_bitwise_equal() {
        let (x, y) = synthetic_classification(3, 16, 6, 4);
        let net = mlp(9);
        let graph = net.train_graph();
        let (l1, g1) = net
            .grads_with_order(&x, &y, &graph.conventional_backprop())
            .unwrap();
        let (l2, g2) = net
            .grads_with_order(&x, &y, &graph.fast_forward_backprop())
            .unwrap();
        assert_eq!(l1.to_bits(), l2.to_bits());
        for (a, b) in g1.iter().flatten().zip(g2.iter().flatten()) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn reverse_first_k_orders_bitwise_equal_for_all_k() {
        let (x, y) = synthetic_classification(4, 8, 6, 4);
        let net = mlp(2);
        let graph = net.train_graph();
        let baseline = net
            .grads_with_order(&x, &y, &graph.conventional_backprop())
            .unwrap();
        for k in 0..=net.len() {
            let order =
                ooo_core::reverse_k::reverse_first_k::<ooo_core::cost::UnitCost>(&graph, k, None)
                    .unwrap();
            let (loss, grads) = net.grads_with_order(&x, &y, &order).unwrap();
            assert_eq!(loss.to_bits(), baseline.0.to_bits(), "k={k}");
            for (a, b) in grads.iter().flatten().zip(baseline.1.iter().flatten()) {
                assert_eq!(a.data(), b.data(), "k={k}");
            }
        }
    }

    #[test]
    fn invalid_order_is_rejected() {
        let (x, y) = synthetic_classification(5, 4, 6, 4);
        let net = mlp(3);
        // dW before the loss is a dependency violation.
        let order = vec![Op::WeightGrad(LayerId(5)), Op::Loss];
        assert!(net.grads_with_order(&x, &y, &order).is_err());
    }

    #[test]
    fn missing_weight_grad_is_reported() {
        let (x, y) = synthetic_classification(5, 4, 6, 4);
        let net = mlp(3);
        let graph = net.train_graph();
        let mut order = graph.conventional_backprop();
        order.retain(|op| *op != Op::WeightGrad(LayerId(1)));
        let err = net.grads_with_order(&x, &y, &order).unwrap_err();
        assert!(matches!(err, Error::MissingState(_)));
    }

    #[test]
    fn training_reduces_loss() {
        let (x, y) = synthetic_classification(11, 64, 6, 4);
        let mut net = mlp(4);
        let graph = net.train_graph();
        let order = graph.fast_forward_backprop();
        let mut opt = Momentum::new(0.05, 0.9);
        let first = net.train_step(&x, &y, &order, &mut opt).unwrap();
        let mut last = first;
        for _ in 0..40 {
            last = net.train_step(&x, &y, &order, &mut opt).unwrap();
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
        let (_, acc) = net.evaluate(&x, &y).unwrap();
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn whole_training_runs_identical_across_schedules() {
        // Multiple steps with updates: parameters stay bitwise identical
        // between the conventional and an out-of-order schedule.
        let (x, y) = synthetic_classification(6, 32, 6, 4);
        let mut a = mlp(7);
        let mut b = mlp(7);
        let graph = a.train_graph();
        let conv = graph.conventional_backprop();
        let ooo = graph.fast_forward_backprop();
        let mut opt_a = Sgd::new(0.05);
        let mut opt_b = Sgd::new(0.05);
        for _ in 0..10 {
            let la = a.train_step(&x, &y, &conv, &mut opt_a).unwrap();
            let lb = b.train_step(&x, &y, &ooo, &mut opt_b).unwrap();
            assert_eq!(la.to_bits(), lb.to_bits());
        }
        assert_eq!(a.snapshot_params(), b.snapshot_params());
    }

    #[test]
    fn apply_grads_validates_structure() {
        let mut net = mlp(8);
        let mut opt = Sgd::new(0.1);
        assert!(net.apply_grads(&vec![], &mut opt).is_err());
        let bad: Grads = vec![vec![]; 5];
        // Layer 0 (dense) expects 2 gradients but gets 0.
        assert!(net.apply_grads(&bad, &mut opt).is_err());
    }
}
