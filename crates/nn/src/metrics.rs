//! Evaluation metrics: accuracy, top-k, and per-class statistics.

use crate::error::{Error, Result};
use ooo_tensor::Tensor;

/// Predicted class per row (argmax over logits).
///
/// # Errors
///
/// Returns [`Error::Invalid`] for non-matrix logits.
pub fn predictions(logits: &Tensor) -> Result<Vec<usize>> {
    if logits.shape().rank() != 2 {
        return Err(Error::Invalid("logits must be [rows, classes]".into()));
    }
    let (rows, classes) = (logits.dims()[0], logits.dims()[1]);
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &logits.data()[r * classes..(r + 1) * classes];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        out.push(pred);
    }
    Ok(out)
}

/// Top-1 accuracy in `[0, 1]`.
///
/// # Errors
///
/// Returns [`Error::Invalid`] on shape/label mismatches.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let preds = predictions(logits)?;
    if preds.len() != labels.len() {
        return Err(Error::Invalid(format!(
            "{} predictions for {} labels",
            preds.len(),
            labels.len()
        )));
    }
    if preds.is_empty() {
        return Ok(0.0);
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(correct as f32 / preds.len() as f32)
}

/// Top-k accuracy: the true label appears among the k highest logits.
///
/// # Errors
///
/// Returns [`Error::Invalid`] on shape/label mismatches or `k == 0`.
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> Result<f32> {
    if logits.shape().rank() != 2 {
        return Err(Error::Invalid("logits must be [rows, classes]".into()));
    }
    if k == 0 {
        return Err(Error::Invalid("k must be positive".into()));
    }
    let (rows, classes) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != rows {
        return Err(Error::Invalid(format!(
            "{} labels for {rows} rows",
            labels.len()
        )));
    }
    if rows == 0 {
        return Ok(0.0);
    }
    let mut hits = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = &logits.data()[r * classes..(r + 1) * classes];
        let mut idx: Vec<usize> = (0..classes).collect();
        idx.sort_by(|&a, &b| {
            row[b]
                .partial_cmp(&row[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        if idx.iter().take(k.min(classes)).any(|&i| i == label) {
            hits += 1;
        }
    }
    Ok(hits as f32 / rows as f32)
}

/// A confusion matrix: `matrix[true][predicted]` counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u32>,
}

impl ConfusionMatrix {
    /// Builds the matrix from logits and labels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] on mismatched inputs or out-of-range
    /// labels.
    pub fn from_logits(logits: &Tensor, labels: &[usize]) -> Result<Self> {
        let classes = logits.dims().get(1).copied().unwrap_or(0);
        let preds = predictions(logits)?;
        if preds.len() != labels.len() {
            return Err(Error::Invalid("prediction/label count mismatch".into()));
        }
        let mut counts = vec![0u32; classes * classes];
        for (&p, &t) in preds.iter().zip(labels) {
            if t >= classes {
                return Err(Error::Invalid(format!(
                    "label {t} out of {classes} classes"
                )));
            }
            counts[t * classes + p] += 1;
        }
        Ok(ConfusionMatrix { classes, counts })
    }

    /// Count of `(true_class, predicted_class)` pairs.
    pub fn count(&self, true_class: usize, predicted: usize) -> u32 {
        self.counts[true_class * self.classes + predicted]
    }

    /// Per-class recall (`None` for classes without examples).
    pub fn recall(&self, class: usize) -> Option<f32> {
        let row = &self.counts[class * self.classes..(class + 1) * self.classes];
        let total: u32 = row.iter().sum();
        if total == 0 {
            return None;
        }
        Some(self.count(class, class) as f32 / total as f32)
    }

    /// Per-class precision (`None` for classes never predicted).
    pub fn precision(&self, class: usize) -> Option<f32> {
        let total: u32 = (0..self.classes).map(|t| self.count(t, class)).sum();
        if total == 0 {
            return None;
        }
        Some(self.count(class, class) as f32 / total as f32)
    }

    /// Overall accuracy from the matrix.
    pub fn accuracy(&self) -> f32 {
        let total: u32 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: u32 = (0..self.classes).map(|c| self.count(c, c)).sum();
        diag as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits(rows: &[&[f32]]) -> Tensor {
        let classes = rows[0].len();
        let data: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Tensor::from_vec(data, &[rows.len(), classes]).unwrap()
    }

    #[test]
    fn predictions_take_argmax() {
        let l = logits(&[&[0.1, 0.9, 0.0], &[2.0, 1.0, 1.5]]);
        assert_eq!(predictions(&l).unwrap(), vec![1, 0]);
        assert!(predictions(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn accuracy_counts_matches() {
        let l = logits(&[&[0.9, 0.1], &[0.2, 0.8], &[0.6, 0.4], &[0.3, 0.7]]);
        assert_eq!(accuracy(&l, &[0, 1, 1, 1]).unwrap(), 0.75);
        assert!(accuracy(&l, &[0]).is_err());
    }

    #[test]
    fn top_k_grows_with_k() {
        let l = logits(&[&[0.5, 0.3, 0.2], &[0.1, 0.2, 0.7]]);
        // Labels are second-best in both rows.
        let labels = [1usize, 1];
        assert_eq!(top_k_accuracy(&l, &labels, 1).unwrap(), 0.0);
        assert_eq!(top_k_accuracy(&l, &labels, 2).unwrap(), 1.0);
        assert_eq!(top_k_accuracy(&l, &labels, 5).unwrap(), 1.0);
        assert!(top_k_accuracy(&l, &labels, 0).is_err());
    }

    #[test]
    fn confusion_matrix_statistics() {
        // True labels: 0,0,1,1; predictions: 0,1,1,1.
        let l = logits(&[&[0.9, 0.1], &[0.2, 0.8], &[0.1, 0.9], &[0.4, 0.6]]);
        let cm = ConfusionMatrix::from_logits(&l, &[0, 0, 1, 1]).unwrap();
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 1), 2);
        assert_eq!(cm.recall(0), Some(0.5));
        assert_eq!(cm.recall(1), Some(1.0));
        assert_eq!(cm.precision(0), Some(1.0));
        assert_eq!(cm.precision(1), Some(2.0 / 3.0));
        assert_eq!(cm.accuracy(), 0.75);
    }

    #[test]
    fn confusion_matrix_validates_labels() {
        let l = logits(&[&[0.9, 0.1]]);
        assert!(ConfusionMatrix::from_logits(&l, &[2]).is_err());
        assert!(ConfusionMatrix::from_logits(&l, &[0, 1]).is_err());
    }

    #[test]
    fn empty_class_statistics_are_none() {
        let l = logits(&[&[0.9, 0.1]]);
        let cm = ConfusionMatrix::from_logits(&l, &[0]).unwrap();
        assert_eq!(cm.recall(1), None);
        assert_eq!(cm.precision(1), None);
    }
}
