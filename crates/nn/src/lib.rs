//! # ooo-nn — a training stack with schedulable backward passes
//!
//! Conventional frameworks fuse each layer's two backward computations
//! (input gradient and weight gradient) into one unit, fixing the
//! backward execution order. This crate keeps them separate: every
//! [`layers::Layer`] exposes `output_grad` and `weight_grad` as
//! independent kernels, and [`network::Sequential::backward_with_order`]
//! executes a backward pass in **any order validated against the
//! `ooo-core` dependency graph**.
//!
//! Because each kernel's internal computation is fixed and deterministic,
//! reordering kernels cannot change any floating-point result — the crate
//! proves the paper's semantics-preservation claim *numerically*: the
//! conventional order, gradient fast-forwarding, reverse first-k, and
//! arbitrary random valid orders all produce bitwise-identical gradients,
//! updates, and losses (see the schedule-equivalence tests and the
//! `schedule_equivalence` integration test).
//!
//! # Example
//!
//! ```
//! use ooo_nn::layers::{Dense, Relu};
//! use ooo_nn::network::Sequential;
//! use ooo_nn::optim::Sgd;
//! use ooo_nn::data::synthetic_classification;
//!
//! let mut net = Sequential::new();
//! net.push(Dense::seeded(4, 16, 1));
//! net.push(Relu::new());
//! net.push(Dense::seeded(16, 3, 2));
//!
//! let (x, y) = synthetic_classification(42, 8, 4, 3);
//! let mut opt = Sgd::new(0.1);
//! let graph = net.train_graph();
//! let order = graph.fast_forward_backprop(); // an ooo schedule
//! let loss = net.train_step(&x, &y, &order, &mut opt).unwrap();
//! assert!(loss.is_finite());
//! ```

#![warn(missing_docs)]
// Index-based loops mirror the papers' subscripted formulas in the
// numeric kernels; iterator rewrites would obscure them.
#![allow(clippy::needless_range_loop)]

pub mod composite;
pub mod data;
pub mod error;
pub mod layers;
pub mod metrics;
pub mod network;
pub mod nlp;
pub mod optim;
pub mod parallel;
pub mod trainer;

pub use error::{Error, Result};
pub use network::Sequential;
