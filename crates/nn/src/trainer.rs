//! A small training harness: epochs over mini-batches, learning-rate
//! schedules, and metric tracking — all under an explicit backward
//! schedule, so whole training runs (not just single steps) are
//! schedule-reproducible.

use crate::error::{Error, Result};
use crate::network::Sequential;
use crate::optim::Optimizer;
use ooo_core::op::Op;
use ooo_tensor::Tensor;

/// Learning-rate schedule, applied as a multiplier on the optimizer's
/// base step (implemented by scaling gradients, which is equivalent for
/// the first-order optimizers here when momentum-style state is scaled
/// consistently — we therefore only expose schedules for plain SGD-like
/// training loops and document the caveat).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant multiplier 1.
    Constant,
    /// Linear warmup over the first `warmup_steps`, then constant.
    Warmup {
        /// Steps to ramp from 0 to 1.
        warmup_steps: usize,
    },
    /// Step decay: multiply by `gamma` every `every` steps.
    StepDecay {
        /// Interval in steps.
        every: usize,
        /// Decay factor per interval.
        gamma: f32,
    },
}

impl LrSchedule {
    /// The multiplier at a (0-based) step.
    pub fn multiplier(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Warmup { warmup_steps } => {
                if warmup_steps == 0 {
                    1.0
                } else {
                    ((step + 1) as f32 / warmup_steps as f32).min(1.0)
                }
            }
            LrSchedule::StepDecay { every, gamma } => match step.checked_div(every) {
                None => 1.0,
                Some(intervals) => gamma.powi(intervals as i32),
            },
        }
    }
}

/// Per-epoch metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochMetrics {
    /// Mean training loss over the epoch's batches.
    pub mean_loss: f32,
    /// Training accuracy measured after the epoch.
    pub accuracy: f32,
}

/// Training-run configuration.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size (the last batch may be smaller).
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            epochs: 1,
            batch_size: 32,
            schedule: LrSchedule::Constant,
        }
    }
}

/// Trains `net` on `(x, y)` under the given backward `order`, returning
/// per-epoch metrics. Batching is deterministic (no shuffling), so runs
/// are bitwise reproducible per schedule — and identical across
/// schedules.
///
/// # Errors
///
/// Propagates layer/optimizer errors and rejects empty datasets.
pub fn fit<O: Optimizer>(
    net: &mut Sequential,
    x: &Tensor,
    y: &[usize],
    order: &[Op],
    opt: &mut O,
    config: &TrainerConfig,
) -> Result<Vec<EpochMetrics>> {
    let n = x.dims().first().copied().unwrap_or(0);
    if n == 0 || y.len() != n {
        return Err(Error::Invalid(format!("{n} rows with {} labels", y.len())));
    }
    if config.batch_size == 0 || config.epochs == 0 {
        return Err(Error::Invalid(
            "batch_size and epochs must be positive".into(),
        ));
    }
    let row: usize = x.dims().iter().skip(1).product();
    let mut metrics = Vec::with_capacity(config.epochs);
    let mut step = 0usize;
    for _ in 0..config.epochs {
        let mut losses = Vec::new();
        let mut lo = 0;
        while lo < n {
            let hi = (lo + config.batch_size).min(n);
            let mut dims = x.dims().to_vec();
            dims[0] = hi - lo;
            let bx = Tensor::from_vec(x.data()[lo * row..hi * row].to_vec(), &dims)?;
            let by = &y[lo..hi];
            let mult = config.schedule.multiplier(step);
            let (loss, grads) = net.grads_with_order(&bx, by, order)?;
            let scaled: crate::network::Grads = grads
                .iter()
                .map(|layer| layer.iter().map(|g| g.scale(mult)).collect())
                .collect();
            net.apply_grads(&scaled, opt)?;
            losses.push(loss);
            step += 1;
            lo = hi;
        }
        let (_, accuracy) = net.evaluate(x, y)?;
        metrics.push(EpochMetrics {
            mean_loss: if losses.is_empty() {
                0.0
            } else {
                losses.iter().sum::<f32>() / losses.len() as f32
            },
            accuracy,
        });
    }
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synthetic_classification;
    use crate::layers::{Dense, Relu};
    use crate::optim::Sgd;

    fn mlp(seed: u64) -> Sequential {
        let mut net = Sequential::new();
        net.push(Dense::seeded(6, 24, seed));
        net.push(Relu::new());
        net.push(Dense::seeded(24, 4, seed + 1));
        net
    }

    #[test]
    fn schedules_multiply_correctly() {
        assert_eq!(LrSchedule::Constant.multiplier(99), 1.0);
        let w = LrSchedule::Warmup { warmup_steps: 4 };
        assert_eq!(w.multiplier(0), 0.25);
        assert_eq!(w.multiplier(3), 1.0);
        assert_eq!(w.multiplier(10), 1.0);
        let d = LrSchedule::StepDecay {
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(d.multiplier(9), 1.0);
        assert_eq!(d.multiplier(10), 0.5);
        assert_eq!(d.multiplier(25), 0.25);
        assert_eq!(LrSchedule::Warmup { warmup_steps: 0 }.multiplier(0), 1.0);
        assert_eq!(
            LrSchedule::StepDecay {
                every: 0,
                gamma: 0.5
            }
            .multiplier(5),
            1.0
        );
    }

    #[test]
    fn fit_learns_and_reports() {
        let (x, y) = synthetic_classification(17, 96, 6, 4);
        let mut net = mlp(5);
        let graph = net.train_graph();
        let order = graph.fast_forward_backprop();
        let mut opt = Sgd::new(0.1);
        let cfg = TrainerConfig {
            epochs: 8,
            batch_size: 16,
            schedule: LrSchedule::Constant,
        };
        let metrics = fit(&mut net, &x, &y, &order, &mut opt, &cfg).unwrap();
        assert_eq!(metrics.len(), 8);
        assert!(metrics.last().unwrap().mean_loss < metrics[0].mean_loss);
        assert!(metrics.last().unwrap().accuracy > 0.7);
    }

    #[test]
    fn fit_is_schedule_invariant() {
        let (x, y) = synthetic_classification(23, 48, 6, 4);
        let cfg = TrainerConfig {
            epochs: 3,
            batch_size: 16,
            schedule: LrSchedule::Warmup { warmup_steps: 4 },
        };
        let mut a = mlp(9);
        let mut b = mlp(9);
        let graph = a.train_graph();
        let ma = fit(
            &mut a,
            &x,
            &y,
            &graph.conventional_backprop(),
            &mut Sgd::new(0.1),
            &cfg,
        )
        .unwrap();
        let mb = fit(
            &mut b,
            &x,
            &y,
            &graph.fast_forward_backprop(),
            &mut Sgd::new(0.1),
            &cfg,
        )
        .unwrap();
        for (ea, eb) in ma.iter().zip(&mb) {
            assert_eq!(ea.mean_loss.to_bits(), eb.mean_loss.to_bits());
        }
        assert_eq!(a.snapshot_params(), b.snapshot_params());
    }

    #[test]
    fn fit_validates_inputs() {
        let (x, y) = synthetic_classification(1, 8, 6, 4);
        let mut net = mlp(1);
        let graph = net.train_graph();
        let order = graph.conventional_backprop();
        let mut opt = Sgd::new(0.1);
        let bad = TrainerConfig {
            epochs: 0,
            ..TrainerConfig::default()
        };
        assert!(fit(&mut net, &x, &y, &order, &mut opt, &bad).is_err());
        assert!(fit(
            &mut net,
            &x,
            &y[..4],
            &order,
            &mut opt,
            &TrainerConfig::default()
        )
        .is_err());
    }
}
