//! Optimizers: SGD, momentum, RMSProp, and Adam — the four the paper
//! trains with (Section 8.1).
//!
//! Optimizer state is keyed by `(layer index, parameter index)` so that
//! weight updates may execute in any order (out-of-order backprop
//! reorders `U_i` along with `dW_i`) without state aliasing.

use crate::error::Result;
use ooo_tensor::ops::axpy;
use ooo_tensor::Tensor;
use std::collections::HashMap;

/// Key identifying one parameter tensor across the network.
pub type ParamKey = (usize, usize);

/// A first-order optimizer.
pub trait Optimizer: Send {
    /// Applies one update to `param` given its `grad`.
    ///
    /// # Errors
    ///
    /// Returns tensor errors on shape mismatches.
    fn step(&mut self, key: ParamKey, param: &mut Tensor, grad: &Tensor) -> Result<()>;

    /// The optimizer's name.
    fn name(&self) -> &'static str;
}

/// Plain stochastic gradient descent.
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, _key: ParamKey, param: &mut Tensor, grad: &Tensor) -> Result<()> {
        axpy(param, -self.lr, grad)?;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// SGD with classical momentum.
pub struct Momentum {
    lr: f32,
    beta: f32,
    velocity: HashMap<ParamKey, Tensor>,
}

impl Momentum {
    /// Creates momentum SGD with learning rate `lr` and momentum `beta`.
    pub fn new(lr: f32, beta: f32) -> Self {
        Momentum {
            lr,
            beta,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, key: ParamKey, param: &mut Tensor, grad: &Tensor) -> Result<()> {
        let v = self
            .velocity
            .entry(key)
            .or_insert_with(|| Tensor::zeros(grad.dims()));
        // v = beta * v + grad; param -= lr * v.
        for (vi, gi) in v.data_mut().iter_mut().zip(grad.data()) {
            *vi = self.beta * *vi + gi;
        }
        axpy(param, -self.lr, v)?;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "momentum"
    }
}

/// RMSProp.
pub struct RmsProp {
    lr: f32,
    decay: f32,
    eps: f32,
    mean_sq: HashMap<ParamKey, Tensor>,
}

impl RmsProp {
    /// Creates RMSProp with learning rate `lr` and decay `decay`.
    pub fn new(lr: f32, decay: f32) -> Self {
        RmsProp {
            lr,
            decay,
            eps: 1e-8,
            mean_sq: HashMap::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, key: ParamKey, param: &mut Tensor, grad: &Tensor) -> Result<()> {
        let ms = self
            .mean_sq
            .entry(key)
            .or_insert_with(|| Tensor::zeros(grad.dims()));
        for ((m, g), p) in ms
            .data_mut()
            .iter_mut()
            .zip(grad.data())
            .zip(param.data_mut())
        {
            *m = self.decay * *m + (1.0 - self.decay) * g * g;
            *p -= self.lr * g / (m.sqrt() + self.eps);
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "rmsprop"
    }
}

/// Adam (used for the paper's BERT/GPT experiments).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    state: HashMap<ParamKey, (Tensor, Tensor, u32)>,
}

impl Adam {
    /// Creates Adam with the standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            state: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, key: ParamKey, param: &mut Tensor, grad: &Tensor) -> Result<()> {
        let (m, v, t) = self
            .state
            .entry(key)
            .or_insert_with(|| (Tensor::zeros(grad.dims()), Tensor::zeros(grad.dims()), 0));
        *t += 1;
        let bc1 = 1.0 - self.beta1.powi(*t as i32);
        let bc2 = 1.0 - self.beta2.powi(*t as i32);
        for (((mi, vi), g), p) in m
            .data_mut()
            .iter_mut()
            .zip(v.data_mut().iter_mut())
            .zip(grad.data())
            .zip(param.data_mut())
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let mhat = *mi / bc1;
            let vhat = *vi / bc2;
            *p -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descends<O: Optimizer>(mut opt: O) {
        // Minimize f(x) = x² from x = 4; gradient is 2x.
        let mut x = Tensor::from_vec(vec![4.0], &[1]).unwrap();
        for _ in 0..200 {
            let g = Tensor::from_vec(vec![2.0 * x.data()[0]], &[1]).unwrap();
            opt.step((0, 0), &mut x, &g).unwrap();
        }
        assert!(
            x.data()[0].abs() < 0.5,
            "{} stalled at {}",
            opt.name(),
            x.data()[0]
        );
    }

    #[test]
    fn all_optimizers_minimize_a_quadratic() {
        quadratic_descends(Sgd::new(0.05));
        quadratic_descends(Momentum::new(0.02, 0.9));
        quadratic_descends(RmsProp::new(0.05, 0.9));
        quadratic_descends(Adam::new(0.2));
    }

    #[test]
    fn sgd_is_exact() {
        let mut x = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        Sgd::new(0.1).step((0, 0), &mut x, &g).unwrap();
        assert_eq!(x.data(), &[0.95, 2.05]);
    }

    #[test]
    fn state_is_per_parameter() {
        let mut opt = Momentum::new(0.1, 0.9);
        let mut a = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let mut b = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let g = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        opt.step((0, 0), &mut a, &g).unwrap();
        opt.step((0, 0), &mut a, &g).unwrap();
        opt.step((1, 0), &mut b, &g).unwrap();
        // `a` took two momentum-compounded steps, `b` one plain step.
        assert!(a.data()[0] < b.data()[0]);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let mut x = Tensor::zeros(&[2]);
        let g = Tensor::zeros(&[3]);
        assert!(Sgd::new(0.1).step((0, 0), &mut x, &g).is_err());
    }
}
