//! Numeric data-parallel training on CPU threads.
//!
//! Each worker computes gradients for its shard under its own backward
//! order; gradients are then averaged and applied once — the synchronous
//! data-parallel semantics whose *scheduling* the paper optimizes. Because
//! gradient averaging is a fixed-order reduction, the result is again
//! independent of each worker's backward order, extending the
//! schedule-equivalence guarantee to distributed training.

use crate::error::{Error, Result};
use crate::network::{Grads, Sequential};
use crate::optim::Optimizer;
use ooo_core::op::Op;
use ooo_tensor::ops::{axpy, scale};
use ooo_tensor::Tensor;

/// Averages per-worker gradients in worker order (a deterministic
/// reduction).
///
/// # Errors
///
/// Returns [`Error::Invalid`] when the gradient structures disagree.
pub fn average_grads(worker_grads: &[Grads]) -> Result<Grads> {
    let Some(first) = worker_grads.first() else {
        return Err(Error::Invalid("no worker gradients".into()));
    };
    let inv = 1.0 / worker_grads.len() as f32;
    let mut acc: Grads = first
        .iter()
        .map(|layer| layer.iter().map(|g| scale(g, inv)).collect())
        .collect();
    for grads in &worker_grads[1..] {
        if grads.len() != acc.len() {
            return Err(Error::Invalid("worker gradient layer counts differ".into()));
        }
        for (a_layer, g_layer) in acc.iter_mut().zip(grads) {
            if a_layer.len() != g_layer.len() {
                return Err(Error::Invalid("worker gradient param counts differ".into()));
            }
            for (a, g) in a_layer.iter_mut().zip(g_layer) {
                axpy(a, inv, g)?;
            }
        }
    }
    Ok(acc)
}

/// One synchronous data-parallel step: every worker computes gradients
/// for its `(shard, labels)` under its own `order` (all on OS threads),
/// the gradients are averaged, and the shared model is updated once.
///
/// Returns the mean worker loss.
///
/// # Errors
///
/// Propagates worker and aggregation errors.
pub fn data_parallel_step<O: Optimizer>(
    net: &mut Sequential,
    shards: &[(Tensor, Vec<usize>)],
    orders: &[Vec<Op>],
    opt: &mut O,
) -> Result<f32> {
    if shards.is_empty() || shards.len() != orders.len() {
        return Err(Error::Invalid(format!(
            "{} shards with {} orders",
            shards.len(),
            orders.len()
        )));
    }
    let net_ref: &Sequential = net;
    let results: Vec<Result<(f32, Grads)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .zip(orders)
            .map(|((x, y), order)| scope.spawn(move || net_ref.grads_with_order(x, y, order)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    let mut losses = Vec::with_capacity(results.len());
    let mut grads = Vec::with_capacity(results.len());
    for r in results {
        let (loss, g) = r?;
        losses.push(loss);
        grads.push(g);
    }
    let avg = average_grads(&grads)?;
    net.apply_grads(&avg, opt)?;
    Ok(losses.iter().sum::<f32>() / losses.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{shard, synthetic_classification};
    use crate::layers::{Dense, Relu};
    use crate::optim::Sgd;

    fn mlp(seed: u64) -> Sequential {
        let mut net = Sequential::new();
        net.push(Dense::seeded(5, 16, seed));
        net.push(Relu::new());
        net.push(Dense::seeded(16, 3, seed + 1));
        net
    }

    #[test]
    fn averaging_is_mean() {
        let g1: Grads = vec![vec![Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap()]];
        let g2: Grads = vec![vec![Tensor::from_vec(vec![4.0, 0.0], &[2]).unwrap()]];
        let avg = average_grads(&[g1, g2]).unwrap();
        assert_eq!(avg[0][0].data(), &[3.0, 2.0]);
        assert!(average_grads(&[]).is_err());
    }

    #[test]
    fn mismatched_structures_rejected() {
        let g1: Grads = vec![vec![Tensor::zeros(&[2])]];
        let g2: Grads = vec![];
        assert!(average_grads(&[g1, g2]).is_err());
    }

    #[test]
    fn workers_with_different_orders_match_single_worker() {
        // 4 workers using 4 different (all valid) backward orders must
        // produce the same update as 1 worker over the full batch — the
        // distributed schedule-equivalence property.
        let (x, y) = synthetic_classification(21, 16, 5, 3);
        let shards = shard(&x, &y, 4);
        let mut net_par = mlp(5);
        let graph = net_par.train_graph();
        let orders: Vec<Vec<Op>> = (0..4)
            .map(|k| {
                ooo_core::reverse_k::reverse_first_k::<ooo_core::cost::UnitCost>(&graph, k, None)
                    .unwrap()
            })
            .collect();
        let mut opt = Sgd::new(0.1);
        data_parallel_step(&mut net_par, &shards, &orders, &mut opt).unwrap();

        // Reference: average of per-shard gradients computed serially with
        // the conventional order.
        let mut net_ref = mlp(5);
        let conv = graph.conventional_backprop();
        let grads: Vec<Grads> = shards
            .iter()
            .map(|(sx, sy)| net_ref.grads_with_order(sx, sy, &conv).unwrap().1)
            .collect();
        let avg = average_grads(&grads).unwrap();
        let mut opt2 = Sgd::new(0.1);
        net_ref.apply_grads(&avg, &mut opt2).unwrap();

        assert_eq!(net_par.snapshot_params(), net_ref.snapshot_params());
    }

    #[test]
    fn parallel_training_converges() {
        let (x, y) = synthetic_classification(33, 64, 5, 3);
        let shards = shard(&x, &y, 2);
        let mut net = mlp(6);
        let graph = net.train_graph();
        let orders = vec![graph.fast_forward_backprop(), graph.conventional_backprop()];
        let mut opt = Sgd::new(0.1);
        let first = data_parallel_step(&mut net, &shards, &orders, &mut opt).unwrap();
        let mut last = first;
        for _ in 0..30 {
            last = data_parallel_step(&mut net, &shards, &orders, &mut opt).unwrap();
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn shard_order_mismatch_rejected() {
        let (x, y) = synthetic_classification(1, 8, 5, 3);
        let shards = shard(&x, &y, 2);
        let mut net = mlp(7);
        let mut opt = Sgd::new(0.1);
        assert!(data_parallel_step(&mut net, &shards, &[], &mut opt).is_err());
    }
}
