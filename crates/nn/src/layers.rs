//! Layers with split backward passes.
//!
//! Every layer exposes up to three kernels, mirroring how the paper's
//! modified TensorFlow splits the grouped gradient node:
//!
//! - [`Layer::forward`] — `F_i`, producing the output and a cache;
//! - [`Layer::output_grad`] — `dO_i`, the gradient w.r.t. the layer input
//!   (the critical-path kernel);
//! - [`Layer::weight_grad`] — `dW_i`, the gradient w.r.t. the parameters
//!   (the reorderable kernel).
//!
//! `output_grad` and `weight_grad` take only the cache and the incoming
//! gradient; neither reads the other's result, so they may run in either
//! order or concurrently — the dependency structure of Figure 3 (b).

use crate::error::{Error, Result};
use ooo_tensor::conv::{conv2d, conv2d_input_grad, conv2d_weight_grad, Conv2dParams};
use ooo_tensor::ops;
use ooo_tensor::pool::{global_avg_pool, global_avg_pool_grad, max_pool2d, max_pool2d_grad};
use ooo_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-invocation state saved by the forward pass for the two backward
/// kernels.
pub struct Cache {
    /// The layer input (needed by most backward kernels).
    pub input: Tensor,
    /// Layer-specific extras.
    pub extra: CacheExtra,
}

/// Layer-specific cache payloads.
pub enum CacheExtra {
    /// Nothing beyond the input.
    None,
    /// Argmax indices of a max-pooling window.
    Argmax(Vec<usize>),
    /// Normalization state of a LayerNorm: `(normalized, inv_std)`.
    Norm {
        /// The normalized activations before scale/shift.
        normalized: Tensor,
        /// Per-row `1 / sqrt(var + eps)`.
        inv_std: Vec<f32>,
    },
}

/// A neural-network layer with independently schedulable backward
/// kernels.
pub trait Layer: Send + Sync {
    /// Human-readable layer name.
    fn name(&self) -> &'static str;

    /// Forward computation `F_i`.
    ///
    /// # Errors
    ///
    /// Returns tensor errors on shape mismatches.
    fn forward(&self, input: &Tensor) -> Result<(Tensor, Cache)>;

    /// Input-gradient kernel `dO_i`: gradient w.r.t. the layer input.
    ///
    /// # Errors
    ///
    /// Returns tensor errors on shape mismatches.
    fn output_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Tensor>;

    /// Weight-gradient kernel `dW_i`: one gradient per parameter tensor
    /// (empty for parameter-free layers).
    ///
    /// # Errors
    ///
    /// Returns tensor errors on shape mismatches.
    fn weight_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Vec<Tensor>>;

    /// The layer's parameter tensors.
    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutable access to the parameter tensors (for the optimizer).
    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// Whether the layer has parameters (and thus a real `dW_i`).
    fn has_params(&self) -> bool {
        !self.params().is_empty()
    }
}

/// Fully connected layer: `y = x W + b` with `W: [in, out]`, `b: [out]`.
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
}

impl Dense {
    /// Creates a layer with explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] when shapes are inconsistent.
    pub fn new(weight: Tensor, bias: Tensor) -> Result<Self> {
        if weight.shape().rank() != 2 || bias.dims() != [weight.dims()[1]] {
            return Err(Error::Invalid(format!(
                "dense expects W [in,out], b [out]; got {:?} and {:?}",
                weight.dims(),
                bias.dims()
            )));
        }
        Ok(Dense { weight, bias })
    }

    /// Xavier-initialized layer with a fixed seed.
    pub fn seeded(input: usize, output: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let weight = ooo_tensor::init::xavier(&mut rng, &[input, output], input, output);
        Dense {
            weight,
            bias: Tensor::zeros(&[output]),
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.weight.dims()[1]
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&self, input: &Tensor) -> Result<(Tensor, Cache)> {
        let y = ops::matmul(input, &self.weight)?;
        let y = ops::add_row(&y, &self.bias)?;
        Ok((
            y,
            Cache {
                input: input.clone(),
                extra: CacheExtra::None,
            },
        ))
    }

    fn output_grad(&self, _cache: &Cache, grad_out: &Tensor) -> Result<Tensor> {
        // dX = dY × Wᵀ.
        Ok(ops::matmul_nt(grad_out, &self.weight)?)
    }

    fn weight_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Vec<Tensor>> {
        // dW = Xᵀ × dY; db = column sums of dY.
        let dw = ops::matmul_tn(&cache.input, grad_out)?;
        let db = ops::sum_rows(grad_out)?;
        Ok(vec![dw, db])
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// 2-D convolution layer (no bias; batch-norm-style networks fold it).
pub struct Conv2d {
    weight: Tensor,
    params_cfg: Conv2dParams,
}

impl Conv2d {
    /// Creates a convolution with explicit weights `[k, c, kh, kw]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] for non-rank-4 weights.
    pub fn new(weight: Tensor, params: Conv2dParams) -> Result<Self> {
        if weight.shape().rank() != 4 {
            return Err(Error::Invalid(format!(
                "conv weight must be rank 4, got {:?}",
                weight.dims()
            )));
        }
        Ok(Conv2d {
            weight,
            params_cfg: params,
        })
    }

    /// He-initialized convolution with a fixed seed.
    pub fn seeded(
        out_ch: usize,
        in_ch: usize,
        kernel: usize,
        params: Conv2dParams,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = in_ch * kernel * kernel;
        let weight = ooo_tensor::init::he(&mut rng, &[out_ch, in_ch, kernel, kernel], fan_in);
        Conv2d {
            weight,
            params_cfg: params,
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&self, input: &Tensor) -> Result<(Tensor, Cache)> {
        let y = conv2d(input, &self.weight, &self.params_cfg)?;
        Ok((
            y,
            Cache {
                input: input.clone(),
                extra: CacheExtra::None,
            },
        ))
    }

    fn output_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Tensor> {
        let hw = (cache.input.dims()[2], cache.input.dims()[3]);
        Ok(conv2d_input_grad(
            grad_out,
            &self.weight,
            hw,
            &self.params_cfg,
        )?)
    }

    fn weight_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Vec<Tensor>> {
        let k = (self.weight.dims()[2], self.weight.dims()[3]);
        Ok(vec![conv2d_weight_grad(
            &cache.input,
            grad_out,
            k,
            &self.params_cfg,
        )?])
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight]
    }
}

/// ReLU activation.
#[derive(Default)]
pub struct Relu;

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&self, input: &Tensor) -> Result<(Tensor, Cache)> {
        Ok((
            ops::relu(input),
            Cache {
                input: input.clone(),
                extra: CacheExtra::None,
            },
        ))
    }

    fn output_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Tensor> {
        Ok(ops::relu_grad(&cache.input, grad_out)?)
    }

    fn weight_grad(&self, _cache: &Cache, _grad_out: &Tensor) -> Result<Vec<Tensor>> {
        Ok(Vec::new())
    }
}

/// GELU activation (BERT/GPT-style networks).
#[derive(Default)]
pub struct Gelu;

impl Gelu {
    /// Creates a GELU layer.
    pub fn new() -> Self {
        Gelu
    }
}

impl Layer for Gelu {
    fn name(&self) -> &'static str {
        "gelu"
    }

    fn forward(&self, input: &Tensor) -> Result<(Tensor, Cache)> {
        Ok((
            ops::gelu(input),
            Cache {
                input: input.clone(),
                extra: CacheExtra::None,
            },
        ))
    }

    fn output_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Tensor> {
        Ok(ops::gelu_grad(&cache.input, grad_out)?)
    }

    fn weight_grad(&self, _cache: &Cache, _grad_out: &Tensor) -> Result<Vec<Tensor>> {
        Ok(Vec::new())
    }
}

/// Max pooling over square windows.
pub struct MaxPool2d {
    kernel: usize,
    params_cfg: Conv2dParams,
}

impl MaxPool2d {
    /// Creates a max-pooling layer with window `kernel` and the given
    /// stride/padding.
    pub fn new(kernel: usize, params: Conv2dParams) -> Self {
        MaxPool2d {
            kernel,
            params_cfg: params,
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "max_pool2d"
    }

    fn forward(&self, input: &Tensor) -> Result<(Tensor, Cache)> {
        let (y, arg) = max_pool2d(input, self.kernel, &self.params_cfg)?;
        Ok((
            y,
            Cache {
                input: input.clone(),
                extra: CacheExtra::Argmax(arg),
            },
        ))
    }

    fn output_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Tensor> {
        let CacheExtra::Argmax(arg) = &cache.extra else {
            return Err(Error::MissingState("max-pool cache has no argmax".into()));
        };
        Ok(max_pool2d_grad(grad_out, arg, cache.input.dims())?)
    }

    fn weight_grad(&self, _cache: &Cache, _grad_out: &Tensor) -> Result<Vec<Tensor>> {
        Ok(Vec::new())
    }
}

/// Global average pooling `[n,c,h,w] -> [n,c]`.
#[derive(Default)]
pub struct GlobalAvgPool;

impl GlobalAvgPool {
    /// Creates a global-average-pool layer.
    pub fn new() -> Self {
        GlobalAvgPool
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn forward(&self, input: &Tensor) -> Result<(Tensor, Cache)> {
        let y = global_avg_pool(input)?;
        Ok((
            y,
            Cache {
                input: input.clone(),
                extra: CacheExtra::None,
            },
        ))
    }

    fn output_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Tensor> {
        Ok(global_avg_pool_grad(grad_out, cache.input.dims())?)
    }

    fn weight_grad(&self, _cache: &Cache, _grad_out: &Tensor) -> Result<Vec<Tensor>> {
        Ok(Vec::new())
    }
}

/// Flattens `[n, ...] -> [n, prod(...)]`.
#[derive(Default)]
pub struct Flatten;

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&self, input: &Tensor) -> Result<(Tensor, Cache)> {
        let n = input.dims().first().copied().unwrap_or(1);
        let rest: usize = input.dims().iter().skip(1).product();
        let y = input.reshape(&[n, rest])?;
        Ok((
            y,
            Cache {
                input: input.clone(),
                extra: CacheExtra::None,
            },
        ))
    }

    fn output_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Tensor> {
        Ok(grad_out.reshape(cache.input.dims())?)
    }

    fn weight_grad(&self, _cache: &Cache, _grad_out: &Tensor) -> Result<Vec<Tensor>> {
        Ok(Vec::new())
    }
}

/// Layer normalization over the last dimension, with scale and shift.
pub struct LayerNorm {
    gamma: Tensor,
    beta: Tensor,
    eps: f32,
}

impl LayerNorm {
    /// Creates a LayerNorm over feature width `dim`.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Tensor::ones(&[dim]),
            beta: Tensor::zeros(&[dim]),
            eps: 1e-5,
        }
    }
}

#[allow(clippy::needless_range_loop)] // row/column indices mirror the math
impl Layer for LayerNorm {
    fn name(&self) -> &'static str {
        "layer_norm"
    }

    fn forward(&self, input: &Tensor) -> Result<(Tensor, Cache)> {
        if input.shape().rank() != 2 {
            return Err(Error::Invalid("layer_norm expects [rows, dim]".into()));
        }
        let (m, n) = (input.dims()[0], input.dims()[1]);
        if n != self.gamma.numel() {
            return Err(Error::Invalid(format!(
                "layer_norm dim {} != input width {n}",
                self.gamma.numel()
            )));
        }
        let mut normalized = Tensor::zeros(&[m, n]);
        let mut inv_std = vec![0.0f32; m];
        let mut out = Tensor::zeros(&[m, n]);
        for r in 0..m {
            let row = &input.data()[r * n..(r + 1) * n];
            let mean: f32 = row.iter().sum::<f32>() / n as f32;
            let var: f32 = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
            let is = 1.0 / (var + self.eps).sqrt();
            inv_std[r] = is;
            for c in 0..n {
                let nv = (row[c] - mean) * is;
                normalized.data_mut()[r * n + c] = nv;
                out.data_mut()[r * n + c] = nv * self.gamma.data()[c] + self.beta.data()[c];
            }
        }
        Ok((
            out,
            Cache {
                input: input.clone(),
                extra: CacheExtra::Norm {
                    normalized,
                    inv_std,
                },
            },
        ))
    }

    fn output_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Tensor> {
        let CacheExtra::Norm {
            normalized,
            inv_std,
        } = &cache.extra
        else {
            return Err(Error::MissingState(
                "layer_norm cache has no norm state".into(),
            ));
        };
        let (m, n) = (grad_out.dims()[0], grad_out.dims()[1]);
        let mut dx = Tensor::zeros(&[m, n]);
        for r in 0..m {
            // dxhat = dy * gamma; dx = inv_std/n * (n*dxhat - sum(dxhat)
            //         - xhat * sum(dxhat * xhat)).
            let dy = &grad_out.data()[r * n..(r + 1) * n];
            let xh = &normalized.data()[r * n..(r + 1) * n];
            let mut s1 = 0.0f32;
            let mut s2 = 0.0f32;
            for c in 0..n {
                let dxh = dy[c] * self.gamma.data()[c];
                s1 += dxh;
                s2 += dxh * xh[c];
            }
            let is = inv_std[r];
            for c in 0..n {
                let dxh = dy[c] * self.gamma.data()[c];
                dx.data_mut()[r * n + c] = is / n as f32 * (n as f32 * dxh - s1 - xh[c] * s2);
            }
        }
        Ok(dx)
    }

    fn weight_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Vec<Tensor>> {
        let CacheExtra::Norm { normalized, .. } = &cache.extra else {
            return Err(Error::MissingState(
                "layer_norm cache has no norm state".into(),
            ));
        };
        let dgamma = ops::sum_rows(&ops::mul(grad_out, normalized)?)?;
        let dbeta = ops::sum_rows(grad_out)?;
        Ok(vec![dgamma, dbeta])
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_input<L: Layer>(layer: &L, x: &Tensor) {
        let (y, cache) = layer.forward(x).unwrap();
        let dy = Tensor::ones(y.dims());
        let dx = layer.output_grad(&cache, &dy).unwrap();
        let eps = 1e-2;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = ops::sum(&layer.forward(&xp).unwrap().0);
            let fm = ops::sum(&layer.forward(&xm).unwrap().0);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (dx.data()[i] - fd).abs() < 2e-2,
                "{}: dx[{i}] = {} vs fd {fd}",
                layer.name(),
                dx.data()[i]
            );
        }
    }

    #[test]
    fn dense_shapes_and_gradients() {
        let layer = Dense::seeded(3, 5, 11);
        let x = Tensor::from_vec(vec![0.5, -0.2, 0.1, 1.0, 0.3, -0.7], &[2, 3]).unwrap();
        let (y, cache) = layer.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 5]);
        finite_diff_input(&layer, &x);
        // Weight gradient against finite differences.
        let dy = Tensor::ones(&[2, 5]);
        let grads = layer.weight_grad(&cache, &dy).unwrap();
        assert_eq!(grads.len(), 2);
        assert_eq!(grads[0].dims(), &[3, 5]);
        assert_eq!(grads[1].dims(), &[5]);
        // db is the column sums of dY = all 2s for ones input grad.
        assert!(grads[1].data().iter().all(|&g| (g - 2.0).abs() < 1e-6));
    }

    #[test]
    fn dense_rejects_bad_shapes() {
        assert!(Dense::new(Tensor::zeros(&[3, 4]), Tensor::zeros(&[5])).is_err());
        assert!(Dense::new(Tensor::zeros(&[3]), Tensor::zeros(&[3])).is_err());
        assert!(Dense::new(Tensor::zeros(&[3, 4]), Tensor::zeros(&[4])).is_ok());
    }

    #[test]
    fn relu_gelu_gradients() {
        // Keep inputs away from ReLU's kink at 0 where the finite
        // difference straddles the non-differentiable point.
        let x = Tensor::from_vec(vec![-1.5, -0.1, 0.2, 0.4, 2.0, -3.0], &[2, 3]).unwrap();
        finite_diff_input(&Relu::new(), &x);
        finite_diff_input(&Gelu::new(), &x);
    }

    #[test]
    fn conv_layer_gradients() {
        let layer = Conv2d::seeded(
            2,
            1,
            3,
            Conv2dParams {
                stride: 1,
                padding: 1,
            },
            5,
        );
        let x = Tensor::from_vec(
            (0..16).map(|i| (i as f32) * 0.1 - 0.8).collect(),
            &[1, 1, 4, 4],
        )
        .unwrap();
        finite_diff_input(&layer, &x);
        let (_, cache) = layer.forward(&x).unwrap();
        let dy = Tensor::ones(&[1, 2, 4, 4]);
        let grads = layer.weight_grad(&cache, &dy).unwrap();
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].dims(), &[2, 1, 3, 3]);
    }

    #[test]
    fn pooling_layers() {
        let x = Tensor::from_vec(
            (0..32).map(|i| ((i * 7 % 11) as f32) - 5.0).collect(),
            &[1, 2, 4, 4],
        )
        .unwrap();
        let mp = MaxPool2d::new(
            2,
            Conv2dParams {
                stride: 2,
                padding: 0,
            },
        );
        let (y, cache) = mp.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 2, 2, 2]);
        let dy = Tensor::ones(y.dims());
        let dx = mp.output_grad(&cache, &dy).unwrap();
        assert_eq!(ops::sum(&dx), 8.0);
        let gap = GlobalAvgPool::new();
        let (y, cache) = gap.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        let dy = Tensor::ones(&[1, 2]);
        let dx = gap.output_grad(&cache, &dy).unwrap();
        assert!((ops::sum(&dx) - 2.0).abs() < 1e-5);
    }

    #[test]
    fn flatten_round_trips() {
        let x = Tensor::ones(&[2, 3, 4]);
        let f = Flatten::new();
        let (y, cache) = f.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let dx = f.output_grad(&cache, &y).unwrap();
        assert_eq!(dx.dims(), &[2, 3, 4]);
    }

    #[test]
    fn layer_norm_normalizes_and_gradients_check() {
        let ln = LayerNorm::new(4);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, -2.0, 0.0, 2.0, 8.0], &[2, 4]).unwrap();
        let (y, _) = ln.forward(&x).unwrap();
        // Each output row has ~zero mean and ~unit variance (gamma=1,
        // beta=0).
        for r in 0..2 {
            let row = &y.data()[r * 4..(r + 1) * 4];
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
        finite_diff_input(&ln, &x);
    }

    #[test]
    fn layer_norm_weight_grads() {
        let ln = LayerNorm::new(3);
        let x = Tensor::from_vec(vec![1.0, -1.0, 0.5, 2.0, 0.0, -2.0], &[2, 3]).unwrap();
        let (y, cache) = ln.forward(&x).unwrap();
        let dy = Tensor::ones(y.dims());
        let grads = ln.weight_grad(&cache, &dy).unwrap();
        assert_eq!(grads.len(), 2);
        // dbeta = column sums of ones = 2.
        assert!(grads[1].data().iter().all(|&g| (g - 2.0).abs() < 1e-6));
    }

    #[test]
    fn parameter_free_layers_report_no_params() {
        assert!(!Relu::new().has_params());
        assert!(!Flatten::new().has_params());
        assert!(Dense::seeded(2, 2, 0).has_params());
        assert!(Relu::new()
            .weight_grad(
                &Cache {
                    input: Tensor::zeros(&[1]),
                    extra: CacheExtra::None
                },
                &Tensor::zeros(&[1])
            )
            .unwrap()
            .is_empty());
    }
}

/// Batch normalization over NCHW feature maps (training mode: batch
/// statistics), with learnable scale and shift per channel.
pub struct BatchNorm2d {
    gamma: Tensor,
    beta: Tensor,
    eps: f32,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            eps: 1e-5,
        }
    }

    fn stats(&self, input: &Tensor) -> Result<(Vec<f32>, Vec<f32>)> {
        if input.shape().rank() != 4 || input.dims()[1] != self.gamma.numel() {
            return Err(Error::Invalid(format!(
                "batch_norm expects [n, {}, h, w]; got {:?}",
                self.gamma.numel(),
                input.dims()
            )));
        }
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let per = (n * h * w) as f32;
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * h * w;
                for &v in &input.data()[base..base + h * w] {
                    mean[ch] += v;
                }
            }
        }
        for m in &mut mean {
            *m /= per;
        }
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * h * w;
                for &v in &input.data()[base..base + h * w] {
                    var[ch] += (v - mean[ch]) * (v - mean[ch]);
                }
            }
        }
        for v in &mut var {
            *v /= per;
        }
        Ok((mean, var))
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> &'static str {
        "batch_norm2d"
    }

    fn forward(&self, input: &Tensor) -> Result<(Tensor, Cache)> {
        let (mean, var) = self.stats(input)?;
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let mut normalized = Tensor::zeros(input.dims());
        let mut out = Tensor::zeros(input.dims());
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * h * w;
                for i in base..base + h * w {
                    let nv = (input.data()[i] - mean[ch]) * inv_std[ch];
                    normalized.data_mut()[i] = nv;
                    out.data_mut()[i] = nv * self.gamma.data()[ch] + self.beta.data()[ch];
                }
            }
        }
        Ok((
            out,
            Cache {
                input: input.clone(),
                extra: CacheExtra::Norm {
                    normalized,
                    inv_std,
                },
            },
        ))
    }

    fn output_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Tensor> {
        let CacheExtra::Norm {
            normalized,
            inv_std,
        } = &cache.extra
        else {
            return Err(Error::MissingState("batch_norm cache missing".into()));
        };
        let (n, c, h, w) = (
            cache.input.dims()[0],
            cache.input.dims()[1],
            cache.input.dims()[2],
            cache.input.dims()[3],
        );
        let per = (n * h * w) as f32;
        // Standard batch-norm backward:
        // dx = gamma * inv_std / m * (m*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat)).
        let mut s1 = vec![0.0f32; c];
        let mut s2 = vec![0.0f32; c];
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * h * w;
                for i in base..base + h * w {
                    s1[ch] += grad_out.data()[i];
                    s2[ch] += grad_out.data()[i] * normalized.data()[i];
                }
            }
        }
        let mut dx = Tensor::zeros(cache.input.dims());
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * h * w;
                let g = self.gamma.data()[ch];
                for i in base..base + h * w {
                    dx.data_mut()[i] = g * inv_std[ch] / per
                        * (per * grad_out.data()[i] - s1[ch] - normalized.data()[i] * s2[ch]);
                }
            }
        }
        Ok(dx)
    }

    fn weight_grad(&self, cache: &Cache, grad_out: &Tensor) -> Result<Vec<Tensor>> {
        let CacheExtra::Norm { normalized, .. } = &cache.extra else {
            return Err(Error::MissingState("batch_norm cache missing".into()));
        };
        let (n, c, h, w) = (
            cache.input.dims()[0],
            cache.input.dims()[1],
            cache.input.dims()[2],
            cache.input.dims()[3],
        );
        let mut dgamma = Tensor::zeros(&[c]);
        let mut dbeta = Tensor::zeros(&[c]);
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * h * w;
                for i in base..base + h * w {
                    dgamma.data_mut()[ch] += grad_out.data()[i] * normalized.data()[i];
                    dbeta.data_mut()[ch] += grad_out.data()[i];
                }
            }
        }
        Ok(vec![dgamma, dbeta])
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod batch_norm_tests {
    use super::*;

    #[test]
    fn normalizes_per_channel() {
        let bn = BatchNorm2d::new(2);
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[2, 2, 2, 2]).unwrap();
        let (y, _) = bn.forward(&x).unwrap();
        // Per channel over (batch, h, w): mean ~0, var ~1.
        for ch in 0..2 {
            let mut vals = Vec::new();
            for b in 0..2 {
                let base = (b * 2 + ch) * 4;
                vals.extend_from_slice(&y.data()[base..base + 4]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "ch {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "ch {ch} var {var}");
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec(
            (0..8).map(|i| ((i * 3 % 5) as f32) * 0.3 - 0.6).collect(),
            &[2, 1, 2, 2],
        )
        .unwrap();
        let (y, cache) = bn.forward(&x).unwrap();
        // Use a non-uniform upstream gradient: sum(y) has zero gradient
        // through normalization by construction.
        let dy = Tensor::from_vec((0..8).map(|i| (i as f32) * 0.1).collect(), y.dims()).unwrap();
        let dx = bn.output_grad(&cache, &dy).unwrap();
        let loss = |bn: &BatchNorm2d, x: &Tensor| -> f32 {
            let (y, _) = bn.forward(x).unwrap();
            y.data().iter().zip(dy.data()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-2;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&bn, &xp) - loss(&bn, &xm)) / (2.0 * eps);
            assert!(
                (dx.data()[i] - fd).abs() < 5e-2,
                "i={i}: {} vs {fd}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn weight_gradients_sum_correctly() {
        let bn = BatchNorm2d::new(2);
        let x = Tensor::from_vec((0..16).map(|i| i as f32 * 0.2).collect(), &[2, 2, 2, 2]).unwrap();
        let (y, cache) = bn.forward(&x).unwrap();
        let dy = Tensor::ones(y.dims());
        let grads = bn.weight_grad(&cache, &dy).unwrap();
        // dbeta = count per channel = 8.
        assert!(grads[1].data().iter().all(|&g| (g - 8.0).abs() < 1e-5));
        // dgamma = sum of normalized values = ~0 for symmetric data.
        assert!(grads[0].data().iter().all(|&g| g.abs() < 1e-3));
    }

    #[test]
    fn shape_validation() {
        let bn = BatchNorm2d::new(3);
        assert!(bn.forward(&Tensor::zeros(&[2, 2, 2, 2])).is_err());
        assert!(bn.forward(&Tensor::zeros(&[2, 3])).is_err());
    }
}
