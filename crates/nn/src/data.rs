//! Seeded synthetic datasets.
//!
//! The paper trains on CIFAR-100, ImageNet, IWSLT, MNLI, and OpenWebText.
//! Scheduling results do not depend on the data values, so this crate
//! substitutes deterministic synthetic datasets with the same shapes:
//! Gaussian-cluster classification problems for the CNN/MLP models and
//! token sequences for the NLP models (see DESIGN.md, Substitutions).

use ooo_tensor::Tensor;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A linearly separable-ish classification problem: `n` rows of `dim`
/// features in `classes` Gaussian clusters. Returns `(features, labels)`.
pub fn synthetic_classification(
    seed: u64,
    n: usize,
    dim: usize,
    classes: usize,
) -> (Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..classes)
        .map(|_| (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let mut data = Vec::with_capacity(n * dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes.max(1);
        labels.push(c);
        for center in centers[c].iter().take(dim) {
            data.push(center + rng.gen_range(-0.5..0.5));
        }
    }
    (
        Tensor::from_vec(data, &[n, dim]).expect("size matches"),
        labels,
    )
}

/// Synthetic image batches in NCHW layout with class-dependent channel
/// biases, suitable for the CNN models.
pub fn synthetic_images(
    seed: u64,
    n: usize,
    channels: usize,
    height: usize,
    width: usize,
    classes: usize,
) -> (Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * channels * height * width);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes.max(1);
        labels.push(c);
        let bias = c as f32 / classes.max(1) as f32 - 0.5;
        for _ in 0..channels * height * width {
            data.push(bias + rng.gen_range(-0.5..0.5));
        }
    }
    (
        Tensor::from_vec(data, &[n, channels, height, width]).expect("size matches"),
        labels,
    )
}

/// Synthetic token sequences for NLP-shaped models: `n` sequences of
/// `len` token ids below `vocab`.
pub fn synthetic_tokens(seed: u64, n: usize, len: usize, vocab: usize) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(0, vocab.max(1));
    (0..n)
        .map(|_| (0..len).map(|_| dist.sample(&mut rng)).collect())
        .collect()
}

/// Splits `(x, y)` row-wise into equal shards for data-parallel workers;
/// trailing remainder rows go to the last shard.
///
/// # Panics
///
/// Panics when `workers == 0`.
pub fn shard(x: &Tensor, y: &[usize], workers: usize) -> Vec<(Tensor, Vec<usize>)> {
    assert!(workers > 0, "workers must be positive");
    let n = x.dims()[0];
    let row: usize = x.dims().iter().skip(1).product();
    let per = n / workers;
    let mut out = Vec::with_capacity(workers);
    for w in 0..workers {
        let lo = w * per;
        let hi = if w + 1 == workers { n } else { lo + per };
        let mut dims = x.dims().to_vec();
        dims[0] = hi - lo;
        let shard_x =
            Tensor::from_vec(x.data()[lo * row..hi * row].to_vec(), &dims).expect("slice sized");
        out.push((shard_x, y[lo..hi].to_vec()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_is_deterministic() {
        let (a, la) = synthetic_classification(1, 10, 4, 3);
        let (b, lb) = synthetic_classification(1, 10, 4, 3);
        assert_eq!(a.data(), b.data());
        assert_eq!(la, lb);
        let (c, _) = synthetic_classification(2, 10, 4, 3);
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn labels_cover_all_classes() {
        let (_, labels) = synthetic_classification(3, 30, 2, 5);
        for c in 0..5 {
            assert!(labels.contains(&c));
        }
        assert!(labels.iter().all(|&c| c < 5));
    }

    #[test]
    fn images_shape() {
        let (x, y) = synthetic_images(7, 6, 3, 8, 8, 2);
        assert_eq!(x.dims(), &[6, 3, 8, 8]);
        assert_eq!(y.len(), 6);
    }

    #[test]
    fn tokens_bounded_by_vocab() {
        let seqs = synthetic_tokens(5, 4, 16, 100);
        assert_eq!(seqs.len(), 4);
        assert!(seqs.iter().flatten().all(|&t| t < 100));
    }

    #[test]
    fn shard_partitions_rows() {
        let (x, y) = synthetic_classification(9, 10, 3, 2);
        let shards = shard(&x, &y, 3);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].0.dims(), &[3, 3]);
        assert_eq!(shards[2].0.dims(), &[4, 3]); // remainder rows
        let total: usize = shards.iter().map(|(t, _)| t.dims()[0]).sum();
        assert_eq!(total, 10);
        // Shard contents match the source rows.
        assert_eq!(shards[1].0.data(), &x.data()[9..18]);
        assert_eq!(shards[1].1, &y[3..6]);
    }
}
