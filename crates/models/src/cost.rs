//! Cost adapters: model specs -> scheduler cost tables and kernel
//! profiles.

use crate::gpu::GpuProfile;
use crate::spec::{LayerSpec, ModelSpec};
use ooo_core::cost::{LayerCost, TableCost};
use ooo_core::pipeline::PipeCost;
use ooo_core::SimTime;

/// A kernel ready for the GPU simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: String,
    /// Grid size in thread blocks.
    pub blocks: u32,
    /// Per-block execution time, ns.
    pub block_time_ns: SimTime,
    /// CPU issue cost, ns.
    pub issue_ns: SimTime,
}

/// The three kernels of one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerKernels {
    /// Forward kernel.
    pub forward: KernelProfile,
    /// Output-gradient kernel.
    pub output_grad: KernelProfile,
    /// Weight-gradient kernel.
    pub weight_grad: KernelProfile,
}

fn kernel(
    name: String,
    exec_ns: SimTime,
    blocks: u64,
    issue_ns: SimTime,
    slots: u32,
) -> KernelProfile {
    let blocks = blocks.clamp(1, 16 * slots as u64) as u32;
    let waves = blocks.div_ceil(slots).max(1) as SimTime;
    KernelProfile {
        name,
        blocks,
        block_time_ns: (exec_ns / waves).max(1),
        issue_ns,
    }
}

/// Derives the three kernels of `layer` at the given batch size.
///
/// Grid sizes follow the layer's output volume for the forward and
/// output-gradient kernels; the weight-gradient grid follows the filter
/// count (which is why the paper's DenseBlock-4 `dW` kernels run only 448
/// blocks against the V100's 1,520 slots — exactly the underutilization
/// the sub-stream harvests).
pub fn layer_kernels(layer: &LayerSpec, batch: usize, gpu: &GpuProfile) -> LayerKernels {
    let flops = layer.flops_per_sample * batch as f64;
    let exec = gpu.exec_ns(flops);
    let issue = (layer.kind.issue_ns() as f64 * gpu.issue_scale) as SimTime;
    let out_elems = layer.activation_bytes_per_sample / 4 * batch as u64;
    let act_blocks = out_elems.div_ceil(layer.kind.elems_per_block());
    // Weight-gradient grids scale with both the filter count and the
    // reduction volume (batch x spatial positions): layers with large
    // activations keep the SMs saturated during dW, while late layers
    // with small activations and few filters run a few hundred blocks —
    // the paper's 448-block DenseBlock-4 case.
    let dw_blocks = ((layer.param_bytes / 4).div_ceil(64))
        .max(out_elems.div_ceil(4 * layer.kind.elems_per_block()))
        .max(1);
    LayerKernels {
        forward: kernel(
            format!("{}.fwd", layer.name),
            exec,
            act_blocks,
            issue,
            gpu.block_slots,
        ),
        // The output gradient is the mirror convolution/GEMM: same
        // volume, similar cost.
        output_grad: kernel(
            format!("{}.dO", layer.name),
            exec,
            act_blocks,
            issue,
            gpu.block_slots,
        ),
        weight_grad: kernel(
            format!("{}.dW", layer.name),
            exec,
            dw_blocks,
            issue,
            gpu.block_slots,
        ),
    }
}

/// All kernels of a model at the given batch size.
pub fn model_kernels(model: &ModelSpec, batch: usize, gpu: &GpuProfile) -> Vec<LayerKernels> {
    model
        .layers
        .iter()
        .map(|l| layer_kernels(l, batch, gpu))
        .collect()
}

/// Builds an `ooo-core` [`TableCost`] for the model: execution times from
/// the FLOP model, memory sizes from the tensor shapes. Synchronization
/// fields are zero; the cluster engines fill them from the topology.
pub fn to_table_cost(model: &ModelSpec, batch: usize, gpu: &GpuProfile) -> TableCost {
    let layers = model
        .layers
        .iter()
        .map(|l| {
            let exec = gpu.exec_ns(l.flops_per_sample * batch as f64);
            LayerCost {
                forward: exec,
                output_grad: exec,
                weight_grad: exec,
                update: 0,
                sync_weight: 0,
                sync_output: 0,
                activation_bytes: l.activation_bytes_per_sample * batch as u64,
                out_grad_bytes: l.activation_bytes_per_sample * batch as u64,
                weight_bytes: l.param_bytes,
            }
        })
        .collect();
    TableCost::new(layers)
}

/// Builds a pipeline cost table; `transfer_ns(bytes)` converts boundary
/// activation sizes into link transfer times (supplied by the cluster's
/// topology so this crate stays link-agnostic).
pub fn to_pipe_cost<F>(
    model: &ModelSpec,
    batch: usize,
    gpu: &GpuProfile,
    transfer_ns: F,
) -> PipeCost
where
    F: Fn(u64) -> SimTime,
{
    let n = model.layers.len();
    let mut cost = PipeCost {
        forward: Vec::with_capacity(n),
        output_grad: Vec::with_capacity(n),
        weight_grad: Vec::with_capacity(n),
        transfer: Vec::with_capacity(n),
    };
    for l in &model.layers {
        let exec = gpu.exec_ns(l.flops_per_sample * batch as f64);
        cost.forward.push(exec);
        cost.output_grad.push(exec);
        cost.weight_grad.push(exec);
        cost.transfer
            .push(transfer_ns(l.activation_bytes_per_sample * batch as u64));
    }
    cost
}

/// Per-layer weight bytes (synchronization message sizes for
/// data-parallel training).
pub fn weight_bytes(model: &ModelSpec) -> Vec<u64> {
    model.layers.iter().map(|l| l.param_bytes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{densenet121, resnet};

    #[test]
    fn densenet_late_dw_kernels_underutilize_v100() {
        // The calibration target from the paper's Section 8.2 discussion:
        // DenseBlock-4 weight-gradient kernels run a few hundred blocks
        // against 1,520 slots.
        let m = densenet121(32, 32);
        let gpu = GpuProfile::v100();
        let idx = m
            .layers
            .iter()
            .position(|l| l.name == "block4.l1.conv3x3")
            .unwrap();
        let k = layer_kernels(&m.layers[idx], 32, &gpu);
        assert!(
            k.weight_grad.blocks < gpu.block_slots,
            "dW blocks {} vs slots {}",
            k.weight_grad.blocks,
            gpu.block_slots
        );
        assert!(
            k.weight_grad.blocks > 100,
            "dW blocks {}",
            k.weight_grad.blocks
        );
    }

    #[test]
    fn densenet_late_convs_are_issue_bound() {
        // Figure 1's regime: in DenseBlock-3/4 the issue cost exceeds the
        // execution time.
        let m = densenet121(12, 32);
        let gpu = GpuProfile::v100();
        let idx = m
            .layers
            .iter()
            .position(|l| l.name == "block4.l8.conv3x3")
            .unwrap();
        let k = layer_kernels(&m.layers[idx], 32, &gpu);
        let exec = k.forward.block_time_ns * k.forward.blocks.div_ceil(gpu.block_slots) as u64;
        assert!(
            k.forward.issue_ns > exec,
            "issue {} vs exec {exec}",
            k.forward.issue_ns
        );
    }

    #[test]
    fn resnet_convs_are_compute_bound() {
        let m = resnet(50);
        let gpu = GpuProfile::v100();
        let idx = m
            .layers
            .iter()
            .position(|l| l.name == "stage1.b1.conv2")
            .unwrap();
        let k = layer_kernels(&m.layers[idx], 64, &gpu);
        let exec = k.forward.block_time_ns * k.forward.blocks.div_ceil(gpu.block_slots) as u64;
        assert!(
            exec > k.forward.issue_ns,
            "exec {exec} vs issue {}",
            k.forward.issue_ns
        );
    }

    #[test]
    fn table_cost_covers_all_layers() {
        let m = resnet(50);
        let t = to_table_cost(&m, 64, &GpuProfile::v100());
        assert_eq!(t.layers(), m.num_layers());
        assert!(t.total_forward() > 0);
    }

    #[test]
    fn pipe_cost_transfer_uses_closure() {
        let m = densenet121(12, 32);
        let c = to_pipe_cost(&m, 32, &GpuProfile::v100(), |bytes| bytes / 100);
        assert_eq!(c.layers(), m.num_layers());
        assert!(c.transfer.iter().any(|&t| t > 0));
    }

    #[test]
    fn slower_gpus_run_longer() {
        let m = resnet(50);
        let v = to_table_cost(&m, 64, &GpuProfile::v100());
        let t = to_table_cost(&m, 64, &GpuProfile::titan_xp());
        assert!(t.total_forward() > v.total_forward());
    }
}
