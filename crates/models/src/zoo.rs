//! Builders for the twelve evaluated networks (the paper's Table 1).
//!
//! Layer structures follow the published architectures; FLOPs and tensor
//! sizes are computed from the standard formulas. A *scheduling layer*
//! here is a convolution / GEMM / transformer block — the granularity the
//! paper schedules at (activations are folded into their producing
//! layer).

use crate::spec::{LayerKind, LayerSpec, ModelSpec};

const F32: u64 = 4;

/// Convolution FLOPs per sample.
fn conv_flops(kh: usize, kw: usize, cin: usize, cout: usize, oh: usize, ow: usize) -> f64 {
    2.0 * (kh * kw * cin * cout * oh * ow) as f64
}

fn conv_layer(
    name: String,
    k: usize,
    cin: usize,
    cout: usize,
    out_hw: usize,
    kind: LayerKind,
) -> LayerSpec {
    let flops = match kind {
        LayerKind::DepthwiseConv => 2.0 * (k * k * cout * out_hw * out_hw) as f64,
        _ => conv_flops(k, k, cin, cout, out_hw, out_hw),
    };
    let params = match kind {
        LayerKind::DepthwiseConv => (k * k * cout) as u64 * F32,
        _ => (k * k * cin * cout) as u64 * F32,
    };
    LayerSpec::new(
        name,
        kind,
        flops,
        params,
        (cout * out_hw * out_hw) as u64 * F32,
    )
}

fn dense_layer(name: String, input: usize, output: usize) -> LayerSpec {
    LayerSpec::new(
        name,
        LayerKind::Dense,
        2.0 * (input * output) as f64,
        (input * output + output) as u64 * F32,
        output as u64 * F32,
    )
}

/// DenseNet with the given block configuration and growth rate `k`, on
/// `input` x `input` images with `classes` outputs. `blocks` is
/// `[6,12,24,16]` for DenseNet-121 and `[6,12,32,32]` for DenseNet-169.
pub fn densenet(
    name: &str,
    blocks: [usize; 4],
    growth: usize,
    input: usize,
    classes: usize,
) -> ModelSpec {
    let mut layers = Vec::new();
    let mut regions = Vec::new();
    // Stem: on ImageNet-scale inputs a strided 7x7 + pool; on CIFAR a
    // plain 3x3.
    let (mut hw, stem_k) = if input >= 64 {
        (input / 4, 7)
    } else {
        (input, 3)
    };
    let mut c = 2 * growth;
    layers.push(conv_layer("stem".into(), stem_k, 3, c, hw, LayerKind::Conv));
    regions.push(("stem".to_string(), 1));
    for (bi, &n) in blocks.iter().enumerate() {
        let start = layers.len();
        for li in 0..n {
            layers.push(conv_layer(
                format!("block{}.l{}.conv1x1", bi + 1, li + 1),
                1,
                c,
                4 * growth,
                hw,
                LayerKind::Conv,
            ));
            layers.push(conv_layer(
                format!("block{}.l{}.conv3x3", bi + 1, li + 1),
                3,
                4 * growth,
                growth,
                hw,
                LayerKind::Conv,
            ));
            c += growth;
        }
        regions.push((format!("denseblock{}", bi + 1), layers.len() - start));
        if bi + 1 < blocks.len() {
            // Transition: 1x1 halving channels + 2x2 average pool.
            let c2 = c / 2;
            layers.push(conv_layer(
                format!("transition{}", bi + 1),
                1,
                c,
                c2,
                hw,
                LayerKind::Conv,
            ));
            regions.push((format!("transition{}", bi + 1), 1));
            c = c2;
            hw /= 2;
        }
    }
    layers.push(dense_layer("classifier".into(), c, classes));
    regions.push(("head".to_string(), 1));
    ModelSpec {
        name: name.to_string(),
        layers,
        default_batch: 32,
        regions,
    }
}

/// DenseNet-121 with growth rate `k` (the paper uses k = 12, 24, 32).
pub fn densenet121(growth: usize, input: usize) -> ModelSpec {
    densenet(
        &format!("DenseNet-121 (k={growth})"),
        [6, 12, 24, 16],
        growth,
        input,
        100,
    )
}

/// DenseNet-169 with growth rate `k`.
pub fn densenet169(growth: usize, input: usize) -> ModelSpec {
    densenet(
        &format!("DenseNet-169 (k={growth})"),
        [6, 12, 32, 32],
        growth,
        input,
        100,
    )
}

/// MobileNetV3-Large with width multiplier `alpha` (0.25 / 0.5 / 0.75 /
/// 1.0 in the paper).
pub fn mobilenet_v3_large(alpha: f64) -> ModelSpec {
    // (out, expansion, kernel, stride) per bottleneck, from the paper's
    // Table 1 of Howard et al.
    const CFG: [(usize, usize, usize, usize); 15] = [
        (16, 16, 3, 1),
        (24, 64, 3, 2),
        (24, 72, 3, 1),
        (40, 72, 5, 2),
        (40, 120, 5, 1),
        (40, 120, 5, 1),
        (80, 240, 3, 2),
        (80, 200, 3, 1),
        (80, 184, 3, 1),
        (80, 184, 3, 1),
        (112, 480, 3, 1),
        (112, 672, 3, 1),
        (160, 672, 5, 2),
        (160, 960, 5, 1),
        (160, 960, 5, 1),
    ];
    let scale = |c: usize| ((c as f64 * alpha).round() as usize).max(8);
    let mut layers = Vec::new();
    let mut regions = Vec::new();
    let mut hw = 112; // stem stride 2 on 224 input
    let mut c = scale(16);
    layers.push(conv_layer("stem".into(), 3, 3, c, hw, LayerKind::Conv));
    regions.push(("stem".to_string(), 1));
    for (i, &(out, exp, k, stride)) in CFG.iter().enumerate() {
        let start = layers.len();
        let (out, exp) = (scale(out), scale(exp));
        if stride == 2 {
            hw /= 2;
        }
        layers.push(conv_layer(
            format!("bneck{}.expand", i + 1),
            1,
            c,
            exp,
            hw,
            LayerKind::Conv,
        ));
        layers.push(conv_layer(
            format!("bneck{}.dw", i + 1),
            k,
            exp,
            exp,
            hw,
            LayerKind::DepthwiseConv,
        ));
        layers.push(conv_layer(
            format!("bneck{}.project", i + 1),
            1,
            exp,
            out,
            hw,
            LayerKind::Conv,
        ));
        regions.push((format!("bneck{}", i + 1), layers.len() - start));
        c = out;
    }
    let last = scale(960);
    layers.push(conv_layer(
        "head.conv".into(),
        1,
        c,
        last,
        hw,
        LayerKind::Conv,
    ));
    layers.push(dense_layer("head.fc".into(), last, 1_000));
    regions.push(("head".to_string(), 2));
    ModelSpec {
        name: format!("MobileNetV3-Large (a={alpha})"),
        layers,
        default_batch: 32,
        regions,
    }
}

/// ResNet with bottleneck blocks (`depth` in {50, 101, 152}).
///
/// # Panics
///
/// Panics on unsupported depths.
pub fn resnet(depth: usize) -> ModelSpec {
    let blocks: [usize; 4] = match depth {
        50 => [3, 4, 6, 3],
        101 => [3, 4, 23, 3],
        152 => [3, 8, 36, 3],
        _ => panic!("unsupported ResNet depth {depth}"),
    };
    let mut layers = Vec::new();
    let mut regions = Vec::new();
    let mut hw = 56; // 224 input after stem conv s2 + pool s2
    layers.push(conv_layer("stem".into(), 7, 3, 64, 112, LayerKind::Conv));
    regions.push(("stem".to_string(), 1));
    let mut cin = 64;
    for (si, &n) in blocks.iter().enumerate() {
        let width = 64 << si; // 64, 128, 256, 512
        let cout = width * 4;
        let start = layers.len();
        for bi in 0..n {
            if bi == 0 && si > 0 {
                hw /= 2;
            }
            layers.push(conv_layer(
                format!("stage{}.b{}.conv1", si + 1, bi + 1),
                1,
                cin,
                width,
                hw,
                LayerKind::Conv,
            ));
            layers.push(conv_layer(
                format!("stage{}.b{}.conv2", si + 1, bi + 1),
                3,
                width,
                width,
                hw,
                LayerKind::Conv,
            ));
            layers.push(conv_layer(
                format!("stage{}.b{}.conv3", si + 1, bi + 1),
                1,
                width,
                cout,
                hw,
                LayerKind::Conv,
            ));
            cin = cout;
        }
        regions.push((format!("stage{}", si + 1), layers.len() - start));
    }
    layers.push(dense_layer("classifier".into(), cin, 1_000));
    regions.push(("head".to_string(), 1));
    ModelSpec {
        name: format!("ResNet-{depth}"),
        layers,
        default_batch: 64,
        regions,
    }
}

/// The paper's 16-layer feed-forward network (pipeline experiments).
pub fn ffnn16(width: usize) -> ModelSpec {
    let layers: Vec<LayerSpec> = (0..16)
        .map(|i| {
            let mut l = dense_layer(format!("fc{}", i + 1), width, width);
            l.kind = LayerKind::Dense;
            l
        })
        .collect();
    ModelSpec {
        name: "FFNN-16".into(),
        regions: vec![("all".to_string(), layers.len())],
        layers,
        default_batch: 1_024,
    }
}

/// The paper's 16-cell RNN (IWSLT fine-tuning).
pub fn rnn16(hidden: usize, seq_len: usize) -> ModelSpec {
    let layers: Vec<LayerSpec> = (0..16)
        .map(|i| {
            // Per cell: input and recurrent GEMMs over the sequence.
            let flops = 2.0 * (2 * hidden * hidden) as f64 * seq_len as f64;
            LayerSpec::new(
                format!("cell{}", i + 1),
                LayerKind::RnnCell,
                flops,
                (2 * hidden * hidden) as u64 * F32,
                (hidden * seq_len) as u64 * F32,
            )
        })
        .collect();
    ModelSpec {
        name: "RNN-16".into(),
        regions: vec![("all".to_string(), layers.len())],
        layers,
        default_batch: 1_024,
    }
}

/// One transformer block's FLOPs per sample: QKV/output projections
/// (`8 h^2 s`), attention matrices (`4 s^2 h`), and the 4x FFN
/// (`16 h^2 s`).
fn transformer_flops(hidden: usize, seq: usize) -> f64 {
    let h = hidden as f64;
    let s = seq as f64;
    24.0 * h * h * s + 4.0 * s * s * h
}

/// BERT with `n` transformer encoders (12/24/48 in the paper).
pub fn bert(n: usize, seq: usize) -> ModelSpec {
    let hidden = if n <= 12 { 768 } else { 1_024 };
    let vocab = 30_522usize;
    let mut layers = Vec::new();
    layers.push(LayerSpec::new(
        "embedding".into(),
        LayerKind::Embedding,
        2.0 * (hidden * seq) as f64,
        (vocab * hidden) as u64 * F32,
        (hidden * seq) as u64 * F32,
    ));
    for i in 0..n {
        layers.push(LayerSpec::new(
            format!("encoder{}", i + 1),
            LayerKind::Transformer,
            transformer_flops(hidden, seq),
            (12 * hidden * hidden) as u64 * F32,
            (hidden * seq) as u64 * F32,
        ));
    }
    layers.push(LayerSpec::new(
        "mlm_head".into(),
        LayerKind::Embedding,
        2.0 * (hidden * vocab * seq) as f64 / seq as f64,
        (hidden * vocab) as u64 * F32,
        (hidden * seq) as u64 * F32,
    ));
    ModelSpec {
        name: format!("BERT-{n}"),
        regions: vec![
            ("embedding".to_string(), 1),
            ("encoders".to_string(), n),
            ("head".to_string(), 1),
        ],
        layers,
        default_batch: 96,
    }
}

/// GPT-3 Medium: 24 decoders, hidden 1024, sequence length 512, with the
/// large word-embedding layer the paper assigns four dedicated GPUs.
pub fn gpt3_medium() -> ModelSpec {
    let hidden = 1_024usize;
    let seq = 512usize;
    let vocab = 50_257usize;
    let mut layers = Vec::new();
    layers.push(LayerSpec::new(
        "embedding".into(),
        LayerKind::Embedding,
        2.0 * (hidden * seq) as f64,
        (vocab * hidden) as u64 * F32,
        (hidden * seq) as u64 * F32,
    ));
    for i in 0..24 {
        layers.push(LayerSpec::new(
            format!("decoder{}", i + 1),
            LayerKind::Transformer,
            transformer_flops(hidden, seq),
            (12 * hidden * hidden) as u64 * F32,
            (hidden * seq) as u64 * F32,
        ));
    }
    layers.push(LayerSpec::new(
        "lm_head".into(),
        LayerKind::Embedding,
        2.0 * (hidden * vocab) as f64 * seq as f64 / seq as f64,
        (hidden * vocab) as u64 * F32,
        (hidden * seq) as u64 * F32,
    ));
    ModelSpec {
        name: "GPT-3 Medium".into(),
        regions: vec![
            ("embedding".to_string(), 1),
            ("decoders".to_string(), 24),
            ("head".to_string(), 1),
        ],
        layers,
        default_batch: 96,
    }
}

/// The full Table 1 inventory: `(model, dataset, training method)`.
pub fn table1() -> Vec<(ModelSpec, &'static str, &'static str)> {
    vec![
        (
            densenet121(12, 32),
            "CIFAR100",
            "single-GPU / data-parallel",
        ),
        (
            densenet169(12, 32),
            "CIFAR100",
            "single-GPU / data-parallel",
        ),
        (
            mobilenet_v3_large(1.0),
            "ImageNet",
            "single-GPU / data-parallel",
        ),
        (resnet(50), "ImageNet", "single-GPU / data-parallel"),
        (resnet(101), "ImageNet", "single-GPU / data-parallel"),
        (resnet(152), "ImageNet", "data-parallel"),
        (rnn16(1_024, 50), "IWSLT", "pipeline-parallel"),
        (ffnn16(4_096), "IWSLT", "pipeline-parallel"),
        (bert(12, 128), "MNLI", "pipeline-parallel"),
        (bert(24, 128), "MNLI", "pipeline-parallel"),
        (bert(48, 128), "MNLI", "pipeline-parallel"),
        (gpt3_medium(), "OpenWebText", "pipeline-parallel"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densenet121_layer_count() {
        let m = densenet121(12, 32);
        // stem + 2*(6+12+24+16) dense-layer convs + 3 transitions + head.
        assert_eq!(m.num_layers(), 1 + 2 * 58 + 3 + 1);
        assert!(m.regions_consistent());
    }

    #[test]
    fn densenet_late_blocks_are_light() {
        // The paper: DenseBlock-3/4 convolutions are short (15-40 us) but
        // numerous. Check late 3x3 convs have fewer FLOPs than early ones
        // scaled by spatial shrink.
        let m = densenet121(12, 32);
        let early = m
            .layers
            .iter()
            .find(|l| l.name == "block1.l1.conv3x3")
            .unwrap();
        let late = m
            .layers
            .iter()
            .find(|l| l.name == "block4.l1.conv3x3")
            .unwrap();
        assert!(late.flops_per_sample < early.flops_per_sample * 2.0);
        assert!(late.activation_bytes_per_sample < early.activation_bytes_per_sample);
    }

    #[test]
    fn mobilenet_alpha_scales_work() {
        let small = mobilenet_v3_large(0.25);
        let big = mobilenet_v3_large(1.0);
        assert!(big.flops_per_sample() > 5.0 * small.flops_per_sample());
        assert_eq!(small.num_layers(), big.num_layers());
        assert!(small.regions_consistent() && big.regions_consistent());
    }

    #[test]
    fn resnet_depths() {
        assert_eq!(resnet(50).num_layers(), 1 + 3 * 16 + 1);
        assert_eq!(resnet(101).num_layers(), 1 + 3 * 33 + 1);
        assert_eq!(resnet(152).num_layers(), 1 + 3 * 50 + 1);
        // ResNet-50 is ~4.1 GFLOPs per 224x224 image (x2 for MACs->FLOPs
        // conventions); accept the standard range.
        let gf = resnet(50).flops_per_sample() / 1e9;
        assert!((5.0..12.0).contains(&gf), "ResNet-50 at {gf} GFLOPs");
    }

    #[test]
    fn resnet_is_heavier_than_densenet() {
        assert!(resnet(50).flops_per_sample() > densenet121(12, 32).flops_per_sample());
    }

    #[test]
    fn bert_sizes() {
        let b12 = bert(12, 128);
        let b48 = bert(48, 128);
        assert_eq!(b12.num_layers(), 14);
        assert_eq!(b48.num_layers(), 50);
        // BERT-base is ~110 M parameters (440 MB fp32).
        let mb = b12.param_bytes() as f64 / 1e6;
        assert!((300.0..600.0).contains(&mb), "BERT-12 at {mb} MB");
    }

    #[test]
    fn gpt3_embedding_dominates_params() {
        let g = gpt3_medium();
        let emb = &g.layers[0];
        let dec = &g.layers[1];
        assert!(emb.param_bytes > dec.param_bytes);
    }

    #[test]
    fn table1_has_twelve_models() {
        let t = table1();
        assert_eq!(t.len(), 12);
        for (m, _, _) in &t {
            assert!(m.num_layers() >= 14, "{} too small", m.name);
            assert!(m.regions_consistent(), "{} regions", m.name);
        }
    }
}

#[cfg(test)]
mod calibration_tests {
    use super::*;

    /// Published parameter counts (fp32 weights, biases/BN folded):
    /// the zoo's totals should land within a generous band of them.
    #[test]
    fn parameter_counts_near_published_values() {
        let mp = |m: &ModelSpec| m.param_bytes() as f64 / 4.0 / 1e6;
        // ResNet-50: 25.6 M.
        let r50 = mp(&resnet(50));
        assert!((17.0..33.0).contains(&r50), "ResNet-50 {r50} M params");
        // ResNet-101: 44.5 M.
        let r101 = mp(&resnet(101));
        assert!((31.0..57.0).contains(&r101), "ResNet-101 {r101} M params");
        // BERT-base: 110 M (with embeddings).
        let b12 = mp(&bert(12, 128));
        assert!((77.0..150.0).contains(&b12), "BERT-12 {b12} M params");
        // MobileNetV3-Large: 5.4 M published; the zoo folds the SE
        // modules and the 1280-wide classifier head, landing lower.
        let mb = mp(&mobilenet_v3_large(1.0));
        assert!((1.5..9.0).contains(&mb), "MobileNetV3 {mb} M params");
    }

    /// GFLOPs per image against published numbers (2x MAC convention):
    /// ResNet-50 ~8.2, ResNet-101 ~15.6, MobileNetV3-Large ~0.44.
    #[test]
    fn flop_counts_near_published_values() {
        let gf = |m: &ModelSpec| m.flops_per_sample() / 1e9;
        let r50 = gf(&resnet(50));
        assert!((5.5..11.0).contains(&r50), "ResNet-50 {r50} GF");
        let r101 = gf(&resnet(101));
        assert!(r101 > 1.6 * r50, "ResNet-101 {r101} vs ResNet-50 {r50}");
        let mb = gf(&mobilenet_v3_large(1.0));
        assert!((0.2..1.2).contains(&mb), "MobileNetV3 {mb} GF");
    }

    /// Spatial dimensions shrink monotonically through the CNNs (strided
    /// stages): activation bytes per layer trend downward block to block.
    #[test]
    fn cnn_activations_shrink_downstream() {
        for m in [resnet(50), densenet121(12, 32)] {
            let first = m.layers[1].activation_bytes_per_sample;
            let last = m.layers[m.num_layers() - 2].activation_bytes_per_sample;
            assert!(last < first, "{}: {first} -> {last}", m.name);
        }
    }

    /// Transformer models have uniform per-block costs — the property
    /// that makes per-transformer modulo allocation balanced.
    #[test]
    fn transformer_blocks_are_uniform() {
        let b = bert(24, 128);
        let encoder_flops: Vec<f64> = b
            .layers
            .iter()
            .filter(|l| l.kind == LayerKind::Transformer)
            .map(|l| l.flops_per_sample)
            .collect();
        assert_eq!(encoder_flops.len(), 24);
        assert!(encoder_flops.windows(2).all(|w| w[0] == w[1]));
    }
}
