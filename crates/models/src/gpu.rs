//! GPU performance profiles for cost derivation.

/// Effective per-GPU performance used to turn FLOP counts into kernel
/// times. `flops_per_sec` is the *sustained* throughput for DNN kernels
/// (peak x typical efficiency), not the datasheet peak.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuProfile {
    /// GPU name.
    pub name: &'static str,
    /// Sustained FLOP/s for convolution/GEMM kernels.
    pub flops_per_sec: f64,
    /// Concurrent thread-block slots (matches `ooo-gpusim`'s specs).
    pub block_slots: u32,
    /// Fixed gap between kernel executions, ns.
    pub kernel_setup_ns: u64,
    /// Multiplier on CPU-side kernel issue costs (slower host CPUs issue
    /// more slowly).
    pub issue_scale: f64,
}

impl GpuProfile {
    /// NVIDIA V100 (15.7 TFLOPS fp32 peak, ~35% sustained).
    pub fn v100() -> Self {
        GpuProfile {
            name: "V100",
            flops_per_sec: 5.5e12,
            block_slots: 1_520,
            kernel_setup_ns: 1_500,
            issue_scale: 1.0,
        }
    }

    /// NVIDIA P100.
    pub fn p100() -> Self {
        GpuProfile {
            name: "P100",
            flops_per_sec: 3.3e12,
            block_slots: 896,
            kernel_setup_ns: 1_800,
            issue_scale: 1.1,
        }
    }

    /// NVIDIA Titan XP.
    pub fn titan_xp() -> Self {
        GpuProfile {
            name: "TitanXP",
            flops_per_sec: 2.8e12,
            block_slots: 480,
            kernel_setup_ns: 2_000,
            issue_scale: 1.2,
        }
    }

    /// Time (ns) to execute `flops` on this GPU, floored at one setup
    /// quantum (tiny kernels cannot run faster than the hardware's fixed
    /// overheads).
    pub fn exec_ns(&self, flops: f64) -> u64 {
        let t = flops / self.flops_per_sec * 1e9;
        (t as u64).max(12_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering() {
        assert!(GpuProfile::v100().flops_per_sec > GpuProfile::p100().flops_per_sec);
        assert!(GpuProfile::p100().flops_per_sec > GpuProfile::titan_xp().flops_per_sec);
    }

    #[test]
    fn exec_floor() {
        let g = GpuProfile::v100();
        assert_eq!(g.exec_ns(0.0), 12_000);
        // 5.5e12 flops take 1 second.
        assert_eq!(g.exec_ns(5.5e12), 1_000_000_000);
    }
}
