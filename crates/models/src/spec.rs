//! Model and layer descriptions.

/// Operator class of a scheduling layer; determines issue costs and
/// thread-block shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// Convolution (with folded activation).
    Conv,
    /// Depthwise convolution (MobileNet).
    DepthwiseConv,
    /// Dense / GEMM layer.
    Dense,
    /// Recurrent cell (two GEMMs plus elementwise gates).
    RnnCell,
    /// One transformer encoder/decoder block.
    Transformer,
    /// Embedding lookup / output projection.
    Embedding,
    /// Pooling or other lightweight reshaping.
    Pool,
}

impl LayerKind {
    /// Baseline CPU-side issue cost of the layer's kernels (TensorFlow
    /// executor, before per-GPU scaling). Convolutions carry heavy cuDNN
    /// dispatch; elementwise-dominated layers are cheaper.
    pub fn issue_ns(self) -> u64 {
        match self {
            LayerKind::Conv => 60_000,
            LayerKind::DepthwiseConv => 55_000,
            LayerKind::Dense => 25_000,
            LayerKind::RnnCell => 45_000,
            LayerKind::Transformer => 220_000,
            LayerKind::Embedding => 30_000,
            LayerKind::Pool => 12_000,
        }
    }

    /// Output elements handled per thread block (drives grid sizes).
    pub fn elems_per_block(self) -> u64 {
        match self {
            LayerKind::Conv | LayerKind::DepthwiseConv => 128,
            LayerKind::Dense | LayerKind::RnnCell => 512,
            LayerKind::Transformer | LayerKind::Embedding => 1_024,
            LayerKind::Pool => 2_048,
        }
    }
}

/// One scheduling layer (the unit the paper's graphs operate on).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSpec {
    /// Layer name, e.g. `"denseblock3.conv12"`.
    pub name: String,
    /// Operator class.
    pub kind: LayerKind,
    /// Forward FLOPs per sample.
    pub flops_per_sample: f64,
    /// Parameter bytes (fp32).
    pub param_bytes: u64,
    /// Output activation bytes per sample (fp32).
    pub activation_bytes_per_sample: u64,
}

impl LayerSpec {
    /// Creates a layer spec.
    pub fn new(
        name: String,
        kind: LayerKind,
        flops_per_sample: f64,
        param_bytes: u64,
        activation_bytes_per_sample: u64,
    ) -> Self {
        LayerSpec {
            name,
            kind,
            flops_per_sample,
            param_bytes,
            activation_bytes_per_sample,
        }
    }
}

/// A whole network.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Model name, e.g. `"DenseNet-121 (k=12)"`.
    pub name: String,
    /// Layers in forward order.
    pub layers: Vec<LayerSpec>,
    /// Batch size the paper evaluates with by default.
    pub default_batch: usize,
    /// Named regions for multi-region joint scheduling: `(region name,
    /// number of consecutive layers)`, in forward order, covering all
    /// layers. CNNs map blocks to regions (a DenseBlock per region).
    pub regions: Vec<(String, usize)>,
}

impl ModelSpec {
    /// Number of scheduling layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total parameter bytes.
    pub fn param_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.param_bytes).sum()
    }

    /// Total forward FLOPs per sample.
    pub fn flops_per_sample(&self) -> f64 {
        self.layers.iter().map(|l| l.flops_per_sample).sum()
    }

    /// Checks that the region table covers the layers exactly.
    pub fn regions_consistent(&self) -> bool {
        self.regions.iter().map(|&(_, n)| n).sum::<usize>() == self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_costs_reflect_kernel_complexity() {
        assert!(LayerKind::Conv.issue_ns() > LayerKind::Pool.issue_ns());
        assert!(LayerKind::Transformer.issue_ns() > LayerKind::Dense.issue_ns());
    }

    #[test]
    fn model_aggregates() {
        let m = ModelSpec {
            name: "toy".into(),
            layers: vec![
                LayerSpec::new("a".into(), LayerKind::Dense, 100.0, 400, 64),
                LayerSpec::new("b".into(), LayerKind::Dense, 200.0, 800, 32),
            ],
            default_batch: 8,
            regions: vec![("all".into(), 2)],
        };
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.param_bytes(), 1_200);
        assert_eq!(m.flops_per_sample(), 300.0);
        assert!(m.regions_consistent());
    }
}
