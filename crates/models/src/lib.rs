//! # ooo-models — the evaluated networks and their cost profiles
//!
//! Builds layer-graph descriptions of the twelve networks of the paper's
//! Table 1 — DenseNet-{121,169}, MobileNetV3-Large, ResNet-{50,101,152},
//! a 16-layer FFNN, a 16-cell RNN, BERT-{12,24,48}, and GPT-3 Medium —
//! together with FLOP-derived execution costs scaled per GPU (Titan XP /
//! P100 / V100).
//!
//! Absolute times are synthetic (this workspace substitutes simulators
//! for the authors' testbed), but the *regimes* are calibrated to the
//! paper's measurements: DenseNet's late blocks run 15–40 µs convolutions
//! whose CPU-side issue cost is up to 4× their execution (Figure 1), the
//! weight-gradient kernels there fill only a fraction of the V100's 1,520
//! block slots, and ResNet's convolutions are compute-bound.

#![warn(missing_docs)]

pub mod cost;
pub mod gpu;
pub mod spec;
pub mod zoo;

pub use gpu::GpuProfile;
pub use spec::{LayerKind, LayerSpec, ModelSpec};
