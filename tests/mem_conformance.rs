//! Conformance layer for the `ooo-verify::mem` static memory-lifetime
//! analyzer: across seeds 1-30 and all four cluster engine shapes
//! (single-GPU multi-region, data-parallel, pipeline, hybrid), the exact
//! static ledger must equal the per-op memory counter instrumented into
//! the discrete-event simulators at tolerance 0; legal tuner outputs
//! must preserve that equality; mutations that break buffer lifetimes
//! must draw the matching OM rule; and memory-capped tuning must land a
//! verifier-clean, OM-clean schedule under the cap on a zoo model.

use ooo_backprop::cluster::mem::{checked_order_memory, checked_schedule_memory};
use ooo_backprop::core::combined::combined_backward_order;
use ooo_backprop::core::cost::{LayerCost, TableCost, UnitCost};
use ooo_backprop::core::datapar::{simulate_data_parallel, CommPolicy};
use ooo_backprop::core::multi_region::{
    backward_regions, multi_region_joint_schedule, ConstantProfile,
};
use ooo_backprop::core::op::{LayerId, Op};
use ooo_backprop::core::pipeline::{op_level_schedule, Strategy};
use ooo_backprop::core::reverse_k::reverse_first_k;
use ooo_backprop::core::schedule::Schedule;
use ooo_backprop::core::TrainGraph;
use ooo_backprop::models::cost::to_table_cost;
use ooo_backprop::models::gpu::GpuProfile;
use ooo_backprop::models::zoo;
use ooo_backprop::tune::{tune_schedule, TuneOptions};
use ooo_backprop::verify::mem::{
    check_schedule, instrument_timeline, ledger_of_schedule, schedule_peak, MemCheckOptions,
};
use ooo_backprop::verify::predict::datapar_schedule;
use ooo_backprop::verify::{Verifier, VerifyConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The varied per-layer cost table of the tuner conformance suite, with
/// non-trivial buffer sizes so the ledger has something to disagree on.
fn random_cost(l: usize, rng: &mut StdRng) -> TableCost {
    let mut cost = TableCost::uniform(l, LayerCost::default());
    for i in 1..=l {
        let c = cost.layer_mut(LayerId(i));
        c.forward = rng.gen_range(1..6);
        c.output_grad = rng.gen_range(1..6);
        c.weight_grad = rng.gen_range(1..6);
        c.update = rng.gen_range(1..4);
        c.sync_weight = rng.gen_range(1..8);
        c.activation_bytes = rng.gen_range(1..9);
        c.out_grad_bytes = rng.gen_range(1..9);
        c.weight_bytes = rng.gen_range(1..17);
    }
    cost
}

/// Seeds 1-30, single-GPU engine: the static ledger of the multi-region
/// joint schedule equals the instrumented simulation counter exactly.
#[test]
fn single_engine_ledger_matches_instrumented_counter_on_seeds_1_to_30() {
    for seed in 1u64..=30 {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(2usize..14);
        let graph = TrainGraph::single_gpu(l);
        let cost = random_cost(l, &mut rng);
        let per = rng.gen_range(1usize..=3);
        let (regions, subs) = backward_regions(&graph, &cost, per);
        let profile = ConstantProfile {
            speedup: 1.0 + rng.gen_range(0..5) as f64 / 10.0,
            sub_time: rng.gen_range(1..5),
        };
        let mrs = multi_region_joint_schedule(&graph, &regions, &subs, &profile).unwrap();
        let schedule = mrs.to_schedule(&regions);
        let checked = checked_schedule_memory(&graph, &schedule, &cost)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(checked.ledger.peak, checked.counter.peak, "seed {seed}");
    }
}

/// Seeds 1-30, data-parallel engine: the ledger of the *predicted*
/// realization (static, no simulation) equals the counter instrumented
/// into the wire simulator — two fully independent code paths.
#[test]
fn datapar_engine_ledger_matches_instrumented_counter_on_seeds_1_to_30() {
    for seed in 1u64..=30 {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(2usize..12);
        let graph = TrainGraph::data_parallel(l);
        let cost = random_cost(l, &mut rng);
        let policy = if seed % 2 == 0 {
            CommPolicy::FifoCompletion
        } else {
            CommPolicy::PriorityByLayer
        };
        let k = rng.gen_range(0..=l);
        let order = reverse_first_k(&graph, k, None::<(u64, &TableCost)>).unwrap();
        let realized = datapar_schedule(&graph, &order, &cost, policy).unwrap();
        let ledger = ledger_of_schedule(&graph, &realized, &cost).unwrap();
        let timeline = simulate_data_parallel(&graph, &order, &cost, policy).unwrap();
        let counter = instrument_timeline(&graph, &cost, &timeline);
        assert_eq!(
            (ledger.initial, ledger.peak, ledger.final_usage),
            (counter.initial, counter.peak, counter.final_usage),
            "seed {seed} k={k}"
        );
        // The cluster entry point reconciles the same run.
        checked_order_memory(&graph, &order, &cost, policy)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Seeds 1-30, pipeline engine: every strategy's op-level schedule
/// reconciles its static ledger against the list-scheduling simulation.
#[test]
fn pipeline_engine_ledger_matches_instrumented_counter_on_seeds_1_to_30() {
    let strategies = [
        Strategy::ModelParallel,
        Strategy::GPipe,
        Strategy::PipeDream,
        Strategy::Dapple,
        Strategy::OooPipe1,
        Strategy::OooPipe2,
    ];
    for seed in 1u64..=30 {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = rng.gen_range(2usize..10);
        let devices = rng.gen_range(1usize..=4);
        let strategy = strategies[rng.gen_range(0..strategies.len())];
        let (graph, schedule) = op_level_schedule(layers, devices, strategy, 1);
        let checked = checked_schedule_memory(&graph, &schedule, &UnitCost)
            .unwrap_or_else(|e| panic!("seed {seed} {strategy:?}: {e}"));
        assert_eq!(
            checked.ledger.final_usage, checked.counter.final_usage,
            "seed {seed} {strategy:?}"
        );
    }
}

/// Seeds 1-30, hybrid engine: the combined reverse-first-k +
/// fast-forwarding order reconciles exactly, both via the predicted
/// realization and via the cluster entry point.
#[test]
fn hybrid_engine_ledger_matches_instrumented_counter_on_seeds_1_to_30() {
    for seed in 1u64..=30 {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(2usize..12);
        let graph = TrainGraph::data_parallel(l);
        let cost = random_cost(l, &mut rng);
        let policy = CommPolicy::PriorityByLayer;
        let k = rng.gen_range(0..=l);
        let order = combined_backward_order(&graph, k).unwrap();
        let realized = datapar_schedule(&graph, &order, &cost, policy).unwrap();
        let ledger = ledger_of_schedule(&graph, &realized, &cost).unwrap();
        let timeline = simulate_data_parallel(&graph, &order, &cost, policy).unwrap();
        let counter = instrument_timeline(&graph, &cost, &timeline);
        assert_eq!(
            (ledger.initial, ledger.peak, ledger.final_usage),
            (counter.initial, counter.peak, counter.final_usage),
            "seed {seed} k={k}"
        );
        checked_order_memory(&graph, &order, &cost, policy)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any schedule the tuner can reach through its legal move sequences
    /// keeps the ledger equal to the instrumented simulation — the
    /// equality is invariant under tuning, not a property of the
    /// heuristic starting points alone.
    #[test]
    fn tuner_outputs_preserve_ledger_simulation_equality(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(3usize..10);
        let graph = TrainGraph::single_gpu(l);
        let cost = random_cost(l, &mut rng);
        let schedule = Schedule::single_lane("gpu", graph.fast_forward_backprop());
        // Half the cases tune under a cap, which changes the accepted
        // move sequence; the equality must hold either way.
        let cap = if seed % 2 == 0 {
            Some(schedule_peak(&graph, &schedule, &cost).unwrap())
        } else {
            None
        };
        let opts = TuneOptions { memory_cap: cap, ..TuneOptions::default() };
        let tuned = tune_schedule(&graph, &schedule, &cost, &opts).unwrap();
        let checked = checked_schedule_memory(&graph, &tuned.schedule, &cost).unwrap();
        prop_assert_eq!(checked.ledger.peak, checked.counter.peak);
        prop_assert_eq!(checked.ledger.initial, checked.counter.initial);
        prop_assert_eq!(checked.ledger.final_usage, checked.counter.final_usage);
    }
}

/// Mutation test: swapping a weight gradient ahead of the output
/// gradient it consumes turns an OM-clean schedule into an `OM101`
/// use-of-undefined error; reverting the swap restores cleanliness.
#[test]
fn dependency_swap_mutation_draws_om101() {
    let graph = TrainGraph::single_gpu(5);
    let clean_order = graph.conventional_backprop();
    let clean = Schedule::single_lane("gpu", clean_order.clone());
    let analysis = check_schedule(&graph, &clean, &UnitCost, &MemCheckOptions::default()).unwrap();
    assert!(
        analysis.diagnostics.is_empty(),
        "{:?}",
        analysis.diagnostics
    );

    // Mutant: move dW3 in front of dO4 (its grad[3] producer is dO4's
    // successor in the chain, so the buffer is not yet defined).
    let mut mutant = clean_order;
    let dw3 = mutant
        .iter()
        .position(|&o| o == Op::WeightGrad(LayerId(3)))
        .unwrap();
    let do4 = mutant
        .iter()
        .position(|&o| o == Op::OutputGrad(LayerId(4)))
        .unwrap();
    assert!(do4 < dw3);
    let op = mutant.remove(dw3);
    mutant.insert(do4, op);
    let s = Schedule::single_lane("gpu", mutant);
    let analysis = check_schedule(&graph, &s, &UnitCost, &MemCheckOptions::default()).unwrap();
    assert!(
        analysis
            .diagnostics
            .iter()
            .any(|d| d.rule.code() == "OM101"),
        "{:?}",
        analysis.diagnostics
    );
}

/// Mutation test: truncating the update tail of a data-parallel window
/// leaves synced weight gradients resident past their last use — the
/// `OM401` retained-buffer advisory — while the full window stays clean.
#[test]
fn truncated_update_tail_mutation_draws_om401() {
    let graph = TrainGraph::data_parallel(5);
    let cost = TableCost::uniform(
        5,
        LayerCost {
            weight_bytes: 10,
            ..LayerCost::default()
        },
    );
    let full = Schedule::single_lane("gpu", graph.conventional_backprop());
    let analysis = check_schedule(&graph, &full, &cost, &MemCheckOptions::default()).unwrap();
    assert!(
        !analysis
            .diagnostics
            .iter()
            .any(|d| d.rule.code() == "OM401"),
        "{:?}",
        analysis.diagnostics
    );

    let mut order = graph.conventional_backprop();
    order.retain(|op| !matches!(op, Op::Update(_) | Op::Forward(_)));
    let truncated = Schedule::single_lane("gpu", order);
    let analysis = check_schedule(&graph, &truncated, &cost, &MemCheckOptions::default()).unwrap();
    let om401: Vec<_> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.rule.code() == "OM401")
        .collect();
    assert!(!om401.is_empty(), "{:?}", analysis.diagnostics);
    assert!(om401[0].message.contains("wgrad["), "{}", om401[0].message);
}

/// Acceptance: on a zoo model, tuning with a cap 10% below the
/// heuristic's ledger peak lands a schedule that respects the cap, is
/// OV-clean under the full analyzer, and OM-clean under the same budget.
#[test]
fn capped_tuning_meets_the_cap_on_a_zoo_model() {
    let model = zoo::ffnn16(4_096);
    let cost = to_table_cost(&model, 16, &GpuProfile::v100());
    let l = cost.layers();
    let graph = TrainGraph::single_gpu(l);
    // Deferred-update layout: every wgrad survives until the update
    // tail, stacking the ledger peak well above the conventional order.
    let mut ops = vec![Op::Loss];
    for i in (2..=l).rev() {
        ops.push(Op::OutputGrad(LayerId(i)));
    }
    for i in (1..=l).rev() {
        ops.push(Op::WeightGrad(LayerId(i)));
    }
    for i in 1..=l {
        ops.push(Op::Update(LayerId(i)));
    }
    for i in 1..=l {
        ops.push(Op::Forward(LayerId(i)));
    }
    let baseline = Schedule::single_lane("gpu", ops);
    let base_peak = schedule_peak(&graph, &baseline, &cost).unwrap();
    let cap = base_peak - base_peak / 10;
    let opts = TuneOptions {
        memory_cap: Some(cap),
        ..TuneOptions::default()
    };
    let tuned = tune_schedule(&graph, &baseline, &cost, &opts).unwrap();
    let peak = tuned.peak.expect("cap set implies a reported peak");
    assert!(
        peak <= cap,
        "tuned peak {peak} exceeds cap {cap} (baseline {base_peak})"
    );
    // OV-clean: the full analyzer draws no diagnostics.
    let report = Verifier::new(&graph)
        .with_config(VerifyConfig::default())
        .with_cost(&cost)
        .verify(&tuned.schedule);
    assert!(report.is_clean(), "{:?}", report.rule_codes());
    // OM-clean at the same budget: no lifetime rule fires either.
    let analysis = check_schedule(
        &graph,
        &tuned.schedule,
        &cost,
        &MemCheckOptions {
            budget: Some(cap),
            ..MemCheckOptions::default()
        },
    )
    .unwrap();
    assert!(
        analysis.diagnostics.is_empty(),
        "{:?}",
        analysis.diagnostics
    );
}
