//! Cross-strategy conformance suite for the scheduling-strategy zoo
//! (`ooo_cluster::strategy`): across seeds 1-30 and every engine shape,
//! every applicable strategy's output must (a) pass the `ooo-verify`
//! analyzer with zero diagnostics, (b) certify — static makespan
//! prediction equals the discrete-event simulation exactly, tolerance 0
//! — (c) reconcile its static memory ledger against the instrumented
//! per-op counter exactly, and (d) regenerate byte-identically on a
//! second run. The heterogeneous device model is pinned by its own
//! differential: a uniform fleet must reproduce the homogeneous
//! simulator byte for byte, entry lists included.

use ooo_backprop::cluster::strategy::{strategy_by_name, zoo, Generated, Shape};
use ooo_backprop::core::cost::{CostModel, LayerCost, TableCost, UnitCost};
use ooo_backprop::core::datapar::{
    simulate_data_parallel_hetero, simulate_data_parallel_with_tail, CommPolicy, SpeedFactor,
};
use ooo_backprop::core::op::{LayerId, Op};
use ooo_backprop::core::reverse_k::reverse_first_k;
use ooo_backprop::core::schedule::ReadyQueue;
use ooo_backprop::core::TrainGraph;
use ooo_backprop::gpusim::spec::{GpuSpec, WorkerFleet};
use ooo_backprop::tune::TuneOptions;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The varied per-layer cost table the other conformance suites use:
/// distinct compute, sync, and update durations so ties are rare.
fn random_cost(l: usize, rng: &mut StdRng) -> TableCost {
    let mut cost = TableCost::uniform(l, LayerCost::default());
    for i in 1..=l {
        let c = cost.layer_mut(LayerId(i));
        c.forward = rng.gen_range(1..6);
        c.output_grad = rng.gen_range(1..6);
        c.weight_grad = rng.gen_range(1..6);
        c.update = rng.gen_range(1..4);
        c.sync_weight = rng.gen_range(1..8);
        c.sync_output = rng.gen_range(1..5);
    }
    cost
}

/// Seeds 1-30 × shapes × strategies: the four invariants of the suite.
#[test]
fn strategy_zoo_conforms_on_seeds_1_to_30() {
    let mut checked = 0usize;
    for seed in 1u64..=30 {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(2usize..14);
        let devices = rng.gen_range(2usize..=4);
        let cost = random_cost(l, &mut rng);
        let shapes = [
            Shape::SingleGpu { layers: l },
            Shape::DataParallel { layers: l },
            Shape::Pipeline { layers: l, devices },
        ];
        for shape in shapes {
            for s in zoo() {
                if !s.applicable(shape) {
                    assert!(
                        s.generate(shape, &cost).is_err(),
                        "seed {seed}: {} must reject {} shapes",
                        s.name(),
                        shape.kind()
                    );
                    continue;
                }
                let g = s.generate(shape, &cost).unwrap_or_else(|e| {
                    panic!("seed {seed}: {} on {}: {e}", s.name(), shape.kind())
                });

                // (a) OV-clean: zero diagnostics, legality check on.
                let report = g.verify(&cost, None);
                assert!(
                    report.is_clean(),
                    "seed {seed}: {} on {}: {report}",
                    s.name(),
                    shape.kind()
                );

                // (b) prediction == simulation at tolerance 0.
                g.certified(&cost).unwrap_or_else(|e| {
                    panic!("seed {seed}: {} on {}: {e}", s.name(), shape.kind())
                });

                // (c) static ledger == instrumented counter.
                let (ledger, counter) = g.mem_reconciled(&cost).unwrap();
                assert_eq!(
                    ledger,
                    counter,
                    "seed {seed}: {} on {}: memory ledger diverged",
                    s.name(),
                    shape.kind()
                );

                // (d) double-run byte-identity.
                let g2 = s.generate(shape, &cost).unwrap();
                assert_eq!(
                    g.schedule,
                    g2.schedule,
                    "seed {seed}: {} on {}: regeneration diverged",
                    s.name(),
                    shape.kind()
                );
                checked += 1;
            }
        }
    }
    // 6 single/datapar + 6 datapar-applicable + 4 pipeline-applicable
    // strategies per seed: the suite must actually cover the zoo.
    assert!(checked >= 30 * 14, "only {checked} cells checked");
}

/// The heterogeneous differential: a uniform fleet must reproduce the
/// homogeneous data-parallel simulator byte for byte — every worker's
/// entry list, not just the makespan.
#[test]
fn uniform_fleet_matches_homogeneous_simulator_byte_for_byte() {
    for seed in 1u64..=30 {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(2usize..14);
        let graph = TrainGraph::data_parallel(l);
        let cost = random_cost(l, &mut rng);
        let k = rng.gen_range(0..=l);
        let order = reverse_first_k(&graph, k, None::<(u64, &TableCost)>).unwrap();
        let tail = rng.gen_range(0..5);
        let policy = if rng.gen_bool(0.5) {
            CommPolicy::FifoCompletion
        } else {
            CommPolicy::PriorityByLayer
        };
        let fleet = WorkerFleet::homogeneous(GpuSpec::v100(), rng.gen_range(1usize..=4));
        assert!(fleet.is_uniform());
        let homo = simulate_data_parallel_with_tail(&graph, &order, &cost, policy, tail).unwrap();
        let hetero = simulate_data_parallel_hetero(
            &graph,
            &order,
            &cost,
            policy,
            tail,
            &fleet.speed_factors(),
        )
        .unwrap();
        assert_eq!(hetero.makespan(), homo.makespan(), "seed {seed}: makespan");
        for (w, tl) in hetero.workers.iter().enumerate() {
            assert_eq!(
                tl.entries, homo.entries,
                "seed {seed}: worker {w} timeline diverged from the homogeneous path"
            );
        }
    }
}

/// A slowed worker can only lengthen the iteration, and the straggler
/// is the worker carrying the largest speed factor.
#[test]
fn straggler_gates_the_fleet() {
    for seed in 1u64..=10 {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(2usize..10);
        let graph = TrainGraph::data_parallel(l);
        let cost = random_cost(l, &mut rng);
        let order = reverse_first_k(&graph, 1, None::<(u64, &TableCost)>).unwrap();
        let policy = CommPolicy::PriorityByLayer;
        let uniform = simulate_data_parallel_hetero(
            &graph,
            &order,
            &cost,
            policy,
            0,
            &[SpeedFactor::UNIT; 3],
        )
        .unwrap();
        let slow = rng.gen_range(1usize..3);
        let mut speeds = [SpeedFactor::UNIT; 3];
        speeds[slow] = SpeedFactor::percent(100 + rng.gen_range(10..100));
        let mixed =
            simulate_data_parallel_hetero(&graph, &order, &cost, policy, 0, &speeds).unwrap();
        assert!(
            mixed.makespan() > uniform.makespan(),
            "seed {seed}: a slowed worker must lengthen the synchronous iteration"
        );
        assert_eq!(mixed.straggler(), slow, "seed {seed}: straggler index");
    }
}

/// Hand-computed fixture for the layerpipe generator: 3 layers, unit
/// cost. The gradient worker pipelines `dW_i, U_i` per layer against
/// the main stream's `dO` chain; updates are free (width 0), so the
/// backward finishes at t = 3 and the forward chain (gated on `U_1` at
/// t = 3) lands the makespan at 6.
#[test]
fn layerpipe_fixture_3_layers_unit_cost() {
    let s = strategy_by_name("layerpipe").unwrap();
    let g = s
        .generate(Shape::SingleGpu { layers: 3 }, &UnitCost)
        .unwrap();
    assert_eq!(
        g.schedule.lanes[0].ops,
        vec![
            Op::Loss,
            Op::OutputGrad(LayerId(3)),
            Op::OutputGrad(LayerId(2)),
            Op::Forward(LayerId(1)),
            Op::Forward(LayerId(2)),
            Op::Forward(LayerId(3)),
        ]
    );
    assert_eq!(
        g.schedule.lanes[1].ops,
        vec![
            Op::WeightGrad(LayerId(3)),
            Op::Update(LayerId(3)),
            Op::WeightGrad(LayerId(2)),
            Op::Update(LayerId(2)),
            Op::WeightGrad(LayerId(1)),
            Op::Update(LayerId(1)),
        ]
    );
    assert_eq!(g.certified(&UnitCost).unwrap(), 6);
}

/// Hand-computed fixture for the twobp generator: 3 data-parallel
/// layers, unit cost. Stage one is the `dO` chain (done at t = 2);
/// stage two computes `dW_1, dW_2, dW_3` ascending (t = 3, 4, 5), syncs
/// and updates are width 0, and the in-order forward tail `F_1..F_3`
/// starts after `U_3` clears at t = 5, landing the makespan at 8.
#[test]
fn twobp_fixture_3_layers_unit_cost() {
    let s = strategy_by_name("twobp").unwrap();
    let g = s
        .generate(Shape::DataParallel { layers: 3 }, &UnitCost)
        .unwrap();
    assert_eq!(
        g.schedule.lanes[0].ops,
        vec![
            Op::Loss,
            Op::OutputGrad(LayerId(3)),
            Op::OutputGrad(LayerId(2)),
            Op::Update(LayerId(1)),
            Op::Update(LayerId(2)),
            Op::Update(LayerId(3)),
            Op::Forward(LayerId(1)),
            Op::Forward(LayerId(2)),
            Op::Forward(LayerId(3)),
        ]
    );
    assert_eq!(
        g.schedule.lanes[1].ops,
        vec![
            Op::WeightGrad(LayerId(1)),
            Op::WeightGrad(LayerId(2)),
            Op::WeightGrad(LayerId(3)),
        ]
    );
    assert_eq!(
        g.schedule.lanes[2].ops,
        vec![
            Op::SyncWeightGrad(LayerId(1)),
            Op::SyncWeightGrad(LayerId(2)),
            Op::SyncWeightGrad(LayerId(3)),
        ]
    );
    assert_eq!(g.certified(&UnitCost).unwrap(), 8);
}

/// Hand-computed fixture for the gradinterleaved generator: 3 layers,
/// unit cost, one stream. Each `dW_i` is issued before `dO_i`, updates
/// (width 0) are deferred past the backward pass, and the serial chain
/// of 3 `dW` + 2 `dO` + 3 `F` unit ops makes the makespan 8.
#[test]
fn gradinterleaved_fixture_3_layers_unit_cost() {
    let s = strategy_by_name("gradinterleaved").unwrap();
    let g = s
        .generate(Shape::SingleGpu { layers: 3 }, &UnitCost)
        .unwrap();
    assert_eq!(
        g.schedule.lanes[0].ops,
        vec![
            Op::Loss,
            Op::WeightGrad(LayerId(3)),
            Op::OutputGrad(LayerId(3)),
            Op::WeightGrad(LayerId(2)),
            Op::OutputGrad(LayerId(2)),
            Op::WeightGrad(LayerId(1)),
            Op::Update(LayerId(3)),
            Op::Update(LayerId(2)),
            Op::Update(LayerId(1)),
            Op::Forward(LayerId(1)),
            Op::Forward(LayerId(2)),
            Op::Forward(LayerId(3)),
        ]
    );
    assert_eq!(g.certified(&UnitCost).unwrap(), 8);
}

/// The repo-wide tie-break key `(priority desc, op id asc)` is a pure
/// function of the pushed set: shuffled insertion orders pop
/// identically, including under duplicate priorities.
#[test]
fn ready_queue_pop_order_is_insertion_invariant() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..50 {
        let n = rng.gen_range(2usize..40);
        let mut items: Vec<(i64, usize)> = (0..n).map(|id| (rng.gen_range(-3i64..3), id)).collect();
        let mut q = ReadyQueue::new();
        for &(p, id) in &items {
            q.push(p, id);
        }
        let mut reference = Vec::new();
        while let Some(x) = q.pop() {
            reference.push(x);
        }
        items.shuffle(&mut rng);
        let mut q = ReadyQueue::new();
        for &(p, id) in &items {
            q.push(p, id);
        }
        let mut shuffled = Vec::new();
        while let Some(x) = q.pop() {
            shuffled.push(x);
        }
        assert_eq!(reference, shuffled);
    }
}

/// Small shapes fit `ooo-cert`'s exact solver: every complete strategy
/// output earns a bracket whose lower bound never exceeds the certified
/// makespan, and an `Optimal` certificate restates that makespan.
#[test]
fn small_strategy_outputs_earn_cert_brackets() {
    use ooo_backprop::cert::Certificate;
    let shapes = [
        Shape::SingleGpu { layers: 2 },
        Shape::DataParallel { layers: 2 },
        Shape::Pipeline {
            layers: 2,
            devices: 2,
        },
    ];
    let mut bracketed = 0usize;
    for shape in shapes {
        for s in zoo() {
            if !s.applicable(shape) || !s.complete() {
                continue;
            }
            let g = s.generate(shape, &UnitCost).unwrap();
            let makespan = g.certified(&UnitCost).unwrap();
            let solved = g
                .cert_bracket(&UnitCost, 50_000)
                .unwrap()
                .expect("2-layer shapes are far under the 128-op ceiling");
            assert!(
                solved.lower_bound <= makespan,
                "{} on {}: bound {} above makespan {makespan}",
                s.name(),
                shape.kind(),
                solved.lower_bound
            );
            match &solved.certificate {
                Certificate::Optimal { makespan: m } => assert_eq!(*m, makespan),
                Certificate::Improvable {
                    baseline,
                    witness_makespan,
                    ..
                } => {
                    assert_eq!(*baseline, makespan);
                    assert!(witness_makespan < baseline);
                }
                Certificate::Unknown { .. } => {}
            }
            bracketed += 1;
        }
    }
    assert!(bracketed >= 10, "only {bracketed} brackets ran");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Feeding any strategy's output to `ooo-tune` never yields a worse
    /// predicted makespan, and re-tuning the tuned schedule with the
    /// same greedy options is a fixpoint (schedule and makespan).
    #[test]
    fn tuning_strategy_output_never_regresses_and_retune_is_fixpoint(
        seed in 1u64..200,
        strat_idx in 0usize..6,
    ) {
        let names = ["conventional", "fastforward", "reversek", "layerpipe", "twobp", "gradinterleaved"];
        let s = strategy_by_name(names[strat_idx]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(2usize..8);
        let cost = random_cost(l, &mut rng);
        let shape = Shape::DataParallel { layers: l };
        prop_assume!(s.applicable(shape));
        let g = s.generate(shape, &cost).unwrap();
        let baseline = g.predicted(&cost).unwrap();
        // Greedy-only options keep the descent deterministic from any
        // start, so a local optimum must re-tune to itself exactly.
        let opts = TuneOptions { restarts: 0, ..TuneOptions::default() };
        let sync_cost: &(dyn CostModel + Sync) = &cost;
        let tuned = g.tuned(sync_cost, &opts).unwrap();
        prop_assert!(tuned.predicted <= baseline,
            "{}: tuned {} worse than strategy {baseline}", s.name(), tuned.predicted);
        let again = Generated {
            graph: g.graph.clone(),
            schedule: tuned.schedule.clone(),
            complete: g.complete,
        }
        .tuned(sync_cost, &opts)
        .unwrap();
        prop_assert_eq!(again.predicted, tuned.predicted);
        prop_assert_eq!(again.schedule, tuned.schedule);
    }

    /// Heterogeneous-spec differential as a property: any uniform fleet
    /// (every factor 100%) over any seed/order/policy reproduces the
    /// homogeneous simulator's makespan and worker-0 timeline exactly.
    #[test]
    fn uniform_speed_factors_are_the_homogeneous_path(
        seed in 1u64..200,
        workers in 1usize..6,
        k_frac in 0.0f64..=1.0,
        fifo in 0u8..2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(2usize..12);
        let graph = TrainGraph::data_parallel(l);
        let cost = random_cost(l, &mut rng);
        let k = ((l as f64) * k_frac) as usize;
        let order = reverse_first_k(&graph, k.min(l), None::<(u64, &TableCost)>).unwrap();
        let policy = if fifo == 0 { CommPolicy::FifoCompletion } else { CommPolicy::PriorityByLayer };
        let homo = simulate_data_parallel_with_tail(&graph, &order, &cost, policy, 0).unwrap();
        let hetero = simulate_data_parallel_hetero(
            &graph, &order, &cost, policy, 0, &vec![SpeedFactor::UNIT; workers],
        ).unwrap();
        prop_assert_eq!(hetero.makespan(), homo.makespan());
        prop_assert_eq!(&hetero.workers[0].entries, &homo.entries);
    }
}
