//! Differential conformance for the scale refactor: every hot path that
//! was rewritten from a quadratic pending-list scan to a cursor/heap/
//! arena/delta structure must produce byte-identical output to the
//! pre-refactor code on arbitrary inputs.
//!
//! Old-path oracles come from [`ooo_backprop::netsim::reference`] (the
//! frozen `remove(0)` / filter-and-min loops) and from verbatim local
//! copies where the original lived in a private function. On top of the
//! component differentials, all four cluster engines and the `ooo-trace`
//! CLI are double-run and compared byte-for-byte, and a property test
//! checks that the parallel restart sweep returns exactly the
//! sequential sweep's winner.

use ooo_backprop::core::cost::{LayerCost, TableCost, UnitCost};
use ooo_backprop::core::datapar::{plan_sync_service, CommPolicy};
use ooo_backprop::core::op::LayerId;
use ooo_backprop::core::pipeline::Strategy;
use ooo_backprop::core::reverse_k::reverse_first_k;
use ooo_backprop::core::{SimTime, TrainGraph};
use ooo_backprop::gpusim::engine::{Command, GpuSim, IssueMode, StreamSpec};
use ooo_backprop::gpusim::kernel::Kernel;
use ooo_backprop::gpusim::spec::GpuSpec;
use ooo_backprop::netsim::commsim::{simulate_queue_recorded, CommRequest, Policy};
use ooo_backprop::netsim::flows::{simulate_flows, Capacities, Flow};
use ooo_backprop::netsim::link::LinkSpec;
use ooo_backprop::netsim::reference;
use ooo_backprop::tune::order::{tune_backward_order, KFamily};
use ooo_backprop::tune::{tune_schedule, TuneOptions};
use proptest::prelude::*;

/// Deterministic pseudo-random stream (splitmix64); the differential
/// inputs must not depend on a seeded RNG shim's evolution.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn flows_cursor_matches_remove0_reference() {
    // Sizes straddling empty, tiny, and large; arrival patterns with
    // duplicate ready times, zero-byte flows, and self-loops (src == dst).
    for (seed0, n) in [(1u64, 0usize), (2, 1), (3, 7), (4, 100), (5, 1500)] {
        let mut seed = seed0;
        let flows: Vec<Flow> = (0..n)
            .map(|i| Flow {
                id: i,
                src: (mix(&mut seed) % 6) as usize,
                dst: (mix(&mut seed) % 6) as usize,
                bytes: (mix(&mut seed) % 3_000_000) * u64::from(mix(&mut seed).is_multiple_of(2)),
                // Duplicated ready times on purpose.
                ready_ns: ((mix(&mut seed) % 50) * 1_000_000) as SimTime,
            })
            .collect();
        let mut capacities = Capacities::new();
        for r in 0..6 {
            capacities.insert(r, 2e9);
        }
        let fast = simulate_flows(&flows, &capacities);
        let naive = reference::simulate_flows_naive(&flows, &capacities);
        assert_eq!(fast, naive, "flows diverged at n={n} seed={seed0}");
    }
}

#[test]
fn commsim_heap_matches_filter_min_reference() {
    // Both policies, chunk sizes from pathological (1 byte) to
    // whole-tensor, duplicate priorities and ready times.
    let link = LinkSpec::nvlink();
    for policy in [Policy::Fifo, Policy::Priority] {
        // Byte range scales with the chunk size so the 1-byte-chunk
        // pathological case stays at thousands of chunk events, not
        // hundreds of millions through the O(n²) reference.
        for (chunk, byte_range) in [(1u64, 40u64), (40_000, 500_000), (10_000_000, 500_000)] {
            for (seed0, n) in [(11u64, 0usize), (12, 1), (13, 9), (14, 300)] {
                let mut seed = seed0;
                let requests: Vec<CommRequest> = (0..n)
                    .map(|i| CommRequest {
                        id: i,
                        bytes: mix(&mut seed) % byte_range,
                        ready_ns: ((mix(&mut seed) % 20) * 25_000) as SimTime,
                        priority: (mix(&mut seed) % 5) as i64,
                    })
                    .collect();
                let fast = simulate_queue_recorded(&link, chunk, policy, &requests);
                let naive =
                    reference::simulate_queue_recorded_naive(&link, chunk, policy, &requests);
                assert_eq!(
                    fast, naive,
                    "commsim diverged: policy={policy:?} chunk={chunk} n={n}"
                );
            }
        }
    }
}

/// The pre-refactor sync-service planner from `ooo_core::datapar`
/// (`pending.retain(|&i| i != pick)` per pick), verbatim.
fn plan_sync_service_naive(
    dw_finish: &[SimTime],
    policy: CommPolicy,
    mut sync_ns: impl FnMut(usize) -> SimTime,
) -> Vec<(usize, SimTime, SimTime)> {
    let l = dw_finish.len().saturating_sub(1);
    let mut pending: Vec<usize> = (1..=l).collect();
    let mut link_free: SimTime = 0;
    let mut out = Vec::with_capacity(l);
    while !pending.is_empty() {
        let earliest_ready = pending
            .iter()
            .map(|&i| dw_finish[i])
            .min()
            .expect("non-empty");
        let now = link_free.max(earliest_ready);
        let pick = match policy {
            CommPolicy::FifoCompletion => pending
                .iter()
                .copied()
                .filter(|&i| dw_finish[i] <= now)
                .min_by_key(|&i| (dw_finish[i], i))
                .expect("at least the earliest-ready sync qualifies"),
            CommPolicy::PriorityByLayer => pending
                .iter()
                .copied()
                .filter(|&i| dw_finish[i] <= now)
                .min()
                .expect("at least the earliest-ready sync qualifies"),
        };
        pending.retain(|&i| i != pick);
        let start = now;
        let end = start + sync_ns(pick);
        out.push((pick, start, end));
        link_free = end;
    }
    out
}

#[test]
fn sync_plan_matches_retain_reference() {
    // Heavily tied dW finish times force every tie-break path.
    for (seed0, l) in [(21u64, 0usize), (22, 1), (23, 5), (24, 64), (25, 700)] {
        let mut seed = seed0;
        let dw_finish: Vec<SimTime> = (0..=l)
            .map(|i| {
                if i == 0 {
                    0
                } else {
                    (mix(&mut seed) % (l as u64 / 2 + 3)) as SimTime
                }
            })
            .collect();
        let sync_of = |i: usize| 1 + (i as SimTime % 4);
        for policy in [CommPolicy::FifoCompletion, CommPolicy::PriorityByLayer] {
            assert_eq!(
                plan_sync_service(&dw_finish, policy, sync_of),
                plan_sync_service_naive(&dw_finish, policy, sync_of),
                "sync plan diverged: policy={policy:?} l={l}"
            );
        }
    }
}

#[test]
fn gpusim_alloc_order_and_traces_identical_seeds_1_30() {
    // The engine used to re-sort the allocation order on every
    // scheduling step with key `(Reverse(priority), stream index)`;
    // priorities are immutable for a run, so the hoisted one-time sort
    // must equal the per-step sort from *any* starting permutation —
    // including the duplicated-priority tie-breaks. On top of the
    // order-level differential, the full engine is double-run per seed
    // and its wave/record output compared exactly.
    for seed0 in 1u64..=30 {
        let mut seed = seed0;
        let n_streams = 2 + (mix(&mut seed) % 5) as usize;
        let priorities: Vec<i32> = (0..n_streams)
            .map(|_| (mix(&mut seed) % 3) as i32 - 1) // duplicates guaranteed
            .collect();

        // Decision-level differential: hoisted sort == per-step sort.
        let mut hoisted: Vec<usize> = (0..n_streams).collect();
        hoisted.sort_by_key(|&i| (std::cmp::Reverse(priorities[i]), i));
        for step in 0..8 {
            // The old loop re-sorted whatever permutation the previous
            // step left; emulate arbitrary history with a rotation.
            let mut order: Vec<usize> = (0..n_streams).collect();
            order.rotate_left(step % n_streams);
            order.sort_by_key(|&i| (std::cmp::Reverse(priorities[i]), i));
            assert_eq!(order, hoisted, "alloc order diverged at seed {seed0}");
        }

        // Engine-level determinism: byte-identical wave/record output.
        let streams: Vec<StreamSpec> = priorities
            .iter()
            .enumerate()
            .map(|(si, &priority)| {
                let mut commands = Vec::new();
                let kernels = 1 + (mix(&mut seed) % 4);
                for k in 0..kernels {
                    commands.push(Command::Launch(Kernel::new(
                        &format!("k{si}_{k}"),
                        1 + (mix(&mut seed) % 2000) as u32,
                        100 + (mix(&mut seed) % 5_000) as SimTime,
                        500,
                    )));
                }
                if si > 0 && mix(&mut seed).is_multiple_of(2) {
                    commands.push(Command::RecordEvent(si as u32));
                }
                StreamSpec { priority, commands }
            })
            .collect();
        let sim = GpuSim::new(GpuSpec::v100(), IssueMode::PerKernel);
        let a = sim.run(streams.clone()).expect("engine runs");
        let b = sim.run(streams).expect("engine runs");
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "gpusim output not deterministic at seed {seed0}"
        );
    }
}

#[test]
fn cluster_engines_double_run_identical() {
    use ooo_backprop::cluster::{datapar, hybrid, pipeline as cpipe, single};
    use ooo_backprop::models::zoo::{bert, densenet121, resnet};
    use ooo_backprop::models::GpuProfile;
    use ooo_backprop::netsim::topology::ClusterTopology;

    let gpu = GpuProfile::v100();

    let m = densenet121(12, 32);
    let s1 = single::run(&m, 32, &gpu, single::Engine::OooXla).unwrap();
    let s2 = single::run(&m, 32, &gpu, single::Engine::OooXla).unwrap();
    assert_eq!(format!("{s1:?}"), format!("{s2:?}"), "single diverged");

    let topo = ClusterTopology::pub_a();
    let rm = resnet(50);
    let d1 = datapar::run(&rm, 128, &gpu, &topo, 16, datapar::CommSystem::OooBytePS).unwrap();
    let d2 = datapar::run(&rm, 128, &gpu, &topo, 16, datapar::CommSystem::OooBytePS).unwrap();
    assert_eq!(format!("{d1:?}"), format!("{d2:?}"), "datapar diverged");

    let nv = LinkSpec::nvlink();
    let eth = LinkSpec::ethernet_10g();
    let pm = bert(12, 128);
    let p1 = cpipe::run(&pm, 96, 4, &gpu, &nv, 4, Strategy::OooPipe2, 1, 2).unwrap();
    let p2 = cpipe::run(&pm, 96, 4, &gpu, &nv, 4, Strategy::OooPipe2, 1, 2).unwrap();
    assert_eq!(format!("{p1:?}"), format!("{p2:?}"), "pipeline diverged");

    let h1 = hybrid::run_combined(&pm, 96, 4, &gpu, &nv, &eth, 4, 4, 2, 2).unwrap();
    let h2 = hybrid::run_combined(&pm, 96, 4, &gpu, &nv, &eth, 4, 4, 2, 2).unwrap();
    assert_eq!(format!("{h1:?}"), format!("{h2:?}"), "hybrid diverged");
}

#[test]
fn trace_cli_json_double_run_identical() {
    // `ooo-trace export` drives all four cluster engines end-to-end and
    // emits JSON; two runs of the same invocation must agree to the byte.
    let exe = std::env::current_exe().expect("test executable path");
    let debug_dir = exe
        .parent()
        .and_then(|p| p.parent())
        .expect("target/debug dir")
        .to_path_buf();
    let bin = debug_dir.join("ooo-trace");
    if !bin.exists() {
        let status = std::process::Command::new(env!("CARGO"))
            .args(["build", "-q", "-p", "ooo-cluster", "--bin", "ooo-trace"])
            .status()
            .expect("cargo build runs");
        assert!(status.success(), "building ooo-trace failed");
    }
    for system in ["single", "datapar", "pipeline", "hybrid"] {
        let run = || {
            // Defaults (resnet50, batch 64) blow the single-GPU memory
            // budget; batch 32 is the CI-proven configuration there.
            let mut args = vec!["export", "--system", system];
            if system == "single" {
                args.extend(["--batch", "32"]);
            }
            std::process::Command::new(&bin)
                .args(&args)
                .output()
                .expect("ooo-trace spawns")
        };
        let a = run();
        let b = run();
        assert!(
            a.status.success(),
            "ooo-trace --system {system} failed: {}",
            String::from_utf8_lossy(&a.stderr)
        );
        assert_eq!(
            a.stdout, b.stdout,
            "--system {system} JSON not byte-identical"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The parallel restart sweep must return exactly the sequential
    /// sweep's winner — same makespan, same order, same trajectory, same
    /// adoption count — for any instance and restart budget.
    #[test]
    fn parallel_tuner_matches_sequential(l in 2usize..7, k in 0usize..3, restarts in 1u64..4, sw in 1u64..6) {
        let graph = TrainGraph::data_parallel(l);
        let cost = TableCost::uniform(
            l,
            LayerCost { sync_weight: sw, ..LayerCost::default() },
        );
        let baseline = reverse_first_k(&graph, k.min(l), None::<(u64, &TableCost)>).unwrap();
        let tune = |parallel: bool| {
            tune_backward_order(
                &graph,
                &baseline,
                Some(k.min(l)),
                &cost,
                CommPolicy::PriorityByLayer,
                KFamily::ReverseFirstK,
                &TuneOptions { restarts, parallel, ..TuneOptions::default() },
            )
            .unwrap()
        };
        let par = tune(true);
        let seq = tune(false);
        prop_assert_eq!(par.predicted, seq.predicted);
        prop_assert_eq!(par.order, seq.order);
        prop_assert_eq!(par.restarts_adopted, seq.restarts_adopted);
        prop_assert_eq!(
            par.moves.iter().map(|m| m.description.clone()).collect::<Vec<_>>(),
            seq.moves.iter().map(|m| m.description.clone()).collect::<Vec<_>>()
        );
    }

    /// Same property for the multi-lane schedule tuner, and windowed
    /// search must equal the exhaustive search whenever the window
    /// covers the whole lane.
    #[test]
    fn parallel_schedule_tuner_matches_sequential(l in 2usize..6, restarts in 1u64..3) {
        let (graph, schedule) =
            ooo_backprop::core::pipeline::op_level_schedule(l, 2, Strategy::GPipe, 1);
        let tune = |parallel: bool, window: Option<usize>| {
            tune_schedule(
                &graph,
                &schedule,
                &UnitCost,
                &TuneOptions { restarts, parallel, window, require_complete: true, ..TuneOptions::default() },
            )
            .unwrap()
        };
        let par = tune(true, None);
        let seq = tune(false, None);
        prop_assert_eq!(par.predicted, seq.predicted);
        prop_assert_eq!(&par.schedule, &seq.schedule);
        prop_assert_eq!(par.restarts_adopted, seq.restarts_adopted);
        // A window at least as wide as every lane changes nothing.
        let wide = tune(true, Some(64));
        prop_assert_eq!(wide.predicted, par.predicted);
        prop_assert_eq!(&wide.schedule, &par.schedule);
    }
}

/// The arena-backed graph accessors must agree with a plain scan of the
/// op list — the `GraphArena` is the new ground truth for op ids, so
/// pin it against the O(n) path it replaced.
#[test]
fn arena_ids_match_linear_scan_on_all_flavours() {
    for l in [1usize, 2, 7, 33, 250] {
        for graph in [
            TrainGraph::single_gpu(l),
            TrainGraph::data_parallel(l),
            TrainGraph::pipeline_parallel(l),
        ] {
            let arena = graph.arena();
            let ops = arena.ops();
            assert_eq!(ops.len(), arena.len());
            for (idx, &op) in ops.iter().enumerate() {
                assert_eq!(arena.id_of(op), Some(idx as u32), "{op} id mismatch");
                assert_eq!(arena.op_of(idx as u32), op);
                assert!(graph.contains(op));
            }
            // An op outside the graph resolves to no id.
            assert_eq!(
                arena.id_of(ooo_backprop::core::op::Op::Forward(LayerId(l + 7))),
                None
            );
        }
    }
}
