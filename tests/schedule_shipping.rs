//! End-to-end "ship a schedule" workflow, mirroring the paper's artifact:
//! a searched schedule is exported as JSON, re-imported (with
//! validation), and replayed by a numeric training job with identical
//! results.

use ooo_backprop::core::cost::UnitCost;
use ooo_backprop::core::export::ScheduleBundle;
use ooo_backprop::core::reverse_k::reverse_first_k;
use ooo_backprop::nn::data::synthetic_classification;
use ooo_backprop::nn::layers::{Dense, Relu};
use ooo_backprop::nn::optim::Momentum;
use ooo_backprop::nn::Sequential;

fn mlp(seed: u64) -> Sequential {
    let mut net = Sequential::new();
    net.push(Dense::seeded(5, 24, seed));
    net.push(Relu::new());
    net.push(Dense::seeded(24, 12, seed + 1));
    net.push(Relu::new());
    net.push(Dense::seeded(12, 3, seed + 2));
    net
}

#[test]
fn exported_schedule_replays_identically() {
    let net = mlp(3);
    let graph = net.train_graph();

    // Producer side: search/construct schedules and export them.
    let mut bundle = ScheduleBundle::new("mlp-5", &graph);
    for k in 0..=net.len() {
        bundle
            .add_order(
                &format!("reverse_first_{k}"),
                &graph,
                reverse_first_k::<UnitCost>(&graph, k, None).unwrap(),
            )
            .unwrap();
    }
    let json = bundle.to_json().unwrap();

    // Consumer side: import (validated) and train under a shipped order.
    let imported = ScheduleBundle::from_json(&json).unwrap();
    let (x, y) = synthetic_classification(9, 32, 5, 3);
    let mut direct = mlp(3);
    let mut via_json = mlp(3);
    let direct_order = reverse_first_k::<UnitCost>(&graph, 2, None).unwrap();
    let shipped_order = &imported.orders["reverse_first_2"];
    let mut opt_a = Momentum::new(0.05, 0.9);
    let mut opt_b = Momentum::new(0.05, 0.9);
    for _ in 0..10 {
        let la = direct
            .train_step(&x, &y, &direct_order, &mut opt_a)
            .unwrap();
        let lb = via_json
            .train_step(&x, &y, shipped_order, &mut opt_b)
            .unwrap();
        assert_eq!(la.to_bits(), lb.to_bits());
    }
    assert_eq!(direct.snapshot_params(), via_json.snapshot_params());
}

#[test]
fn corrupted_bundle_cannot_be_replayed() {
    let net = mlp(4);
    let graph = net.train_graph();
    let mut bundle = ScheduleBundle::new("mlp-5", &graph);
    bundle
        .add_order("ok", &graph, graph.conventional_backprop())
        .unwrap();
    // Simulate on-disk corruption: swap the loss away from the front.
    let mut json = bundle.to_json().unwrap();
    json = json.replacen("\"Loss\"", "{\"Forward\":1}", 1);
    match ScheduleBundle::from_json(&json) {
        // Either the JSON no longer parses as a valid op list or the
        // validation catches the broken dependency; both refuse replay.
        Err(_) => {}
        Ok(b) => panic!("corrupted bundle accepted: {:?}", b.orders.keys()),
    }
}
