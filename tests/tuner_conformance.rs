//! Conformance layer for the `ooo-tune` autotuner: across seeds 1-30 and
//! all four cluster engine shapes (single-GPU multi-region, data-parallel,
//! pipeline, hybrid), every tuned schedule must (a) pass the `ooo-verify`
//! safety analyzer with zero diagnostics, (b) certify — static prediction
//! equals the discrete-event simulation exactly, tolerance 0 — and (c)
//! never be worse than the engine's own heuristic baseline, with a strict
//! improvement on at least one seed per engine.

use ooo_backprop::core::combined::{choose_split_k, combined_backward_order};
use ooo_backprop::core::cost::{LayerCost, TableCost, UnitCost};
use ooo_backprop::core::datapar::{simulate_data_parallel, CommPolicy};
use ooo_backprop::core::list_scheduling::simulate;
use ooo_backprop::core::multi_region::{
    backward_regions, multi_region_joint_schedule, ConstantProfile,
};
use ooo_backprop::core::op::LayerId;
use ooo_backprop::core::pipeline::Strategy;
use ooo_backprop::core::reverse_k::{reverse_first_k, search_optimal_k};
use ooo_backprop::core::TrainGraph;
use ooo_backprop::tune::order::{best_reverse_k, certify_order, tune_backward_order, KFamily};
use ooo_backprop::tune::pipeline::tune_pipeline;
use ooo_backprop::tune::{certify_schedule, tune_schedule, TuneOptions};
use ooo_backprop::verify::{Verifier, VerifyConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The same varied per-layer cost table the predictor conformance suite
/// uses: distinct compute, sync, and update durations so ties are rare.
fn random_cost(l: usize, rng: &mut StdRng) -> TableCost {
    let mut cost = TableCost::uniform(l, LayerCost::default());
    for i in 1..=l {
        let c = cost.layer_mut(LayerId(i));
        c.forward = rng.gen_range(1..6);
        c.output_grad = rng.gen_range(1..6);
        c.weight_grad = rng.gen_range(1..6);
        c.update = rng.gen_range(1..4);
        c.sync_weight = rng.gen_range(1..8);
    }
    cost
}

/// Seeds 1-30, single-GPU engine: tuning the multi-region joint schedule
/// (main stream + sub-stream weight gradients) stays verify-clean,
/// certifies exactly, and never regresses; at least one seed improves.
#[test]
fn single_engine_tuning_conforms_on_seeds_1_to_30() {
    let opts = TuneOptions {
        require_complete: false,
        ..TuneOptions::default()
    };
    let config = VerifyConfig {
        require_complete: false,
        ..VerifyConfig::default()
    };
    let mut improved = 0usize;
    for seed in 1u64..=30 {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(2usize..14);
        let graph = TrainGraph::single_gpu(l);
        let cost = random_cost(l, &mut rng);
        let per = rng.gen_range(1usize..=3);
        let (regions, subs) = backward_regions(&graph, &cost, per);
        let profile = ConstantProfile {
            speedup: 1.0 + rng.gen_range(0..5) as f64 / 10.0,
            sub_time: rng.gen_range(1..5),
        };
        let mrs = multi_region_joint_schedule(&graph, &regions, &subs, &profile).unwrap();
        let baseline = mrs.to_schedule(&regions);
        let tuned = tune_schedule(&graph, &baseline, &cost, &opts).unwrap();
        let report = Verifier::new(&graph)
            .with_config(config.clone())
            .with_cost(&cost)
            .verify(&tuned.schedule);
        assert!(
            report.is_clean(),
            "seed {seed}: tuned schedule drew diagnostics {:?}",
            report.rule_codes()
        );
        let certified = certify_schedule(&graph, &tuned.schedule, &cost).unwrap();
        assert_eq!(certified, tuned.predicted, "seed {seed}: certification");
        let base_sim = simulate(&graph, &baseline, &cost).unwrap().makespan();
        assert_eq!(base_sim, tuned.baseline, "seed {seed}: baseline prediction");
        assert!(
            tuned.predicted <= tuned.baseline,
            "seed {seed}: tuned {} worse than heuristic {}",
            tuned.predicted,
            tuned.baseline
        );
        improved += usize::from(tuned.improved());
    }
    assert!(improved >= 1, "no seed improved the multi-region heuristic");
}

/// A per-layer cost table with wide, spiky ranges: sync and compute
/// durations varied enough that the best backward order is usually
/// *outside* the reverse-first-k family, giving the tuner's relocation
/// moves room the depth parameter alone cannot reach.
fn spiky_cost(l: usize, rng: &mut StdRng) -> TableCost {
    let mut cost = TableCost::uniform(l, LayerCost::default());
    for i in 1..=l {
        let c = cost.layer_mut(LayerId(i));
        c.forward = rng.gen_range(1..12);
        c.output_grad = rng.gen_range(1..12);
        c.weight_grad = rng.gen_range(1..20);
        c.update = rng.gen_range(1..4);
        c.sync_weight = rng.gen_range(0..40);
    }
    cost
}

/// Seeds 1-30, data-parallel engine: tuning from the `search_optimal_k`
/// heuristic baseline stays verify-clean, certifies against the wire
/// simulator exactly, and never regresses; at least one seed improves.
#[test]
fn datapar_engine_tuning_conforms_on_seeds_1_to_30() {
    let opts = TuneOptions::default();
    let mut improved = 0usize;
    for seed in 1u64..=30 {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(2usize..12);
        let graph = TrainGraph::data_parallel(l);
        let cost = spiky_cost(l, &mut rng);
        let policy = if seed % 2 == 0 {
            CommPolicy::FifoCompletion
        } else {
            CommPolicy::PriorityByLayer
        };
        let sim_k = |k: usize| {
            let order = reverse_first_k(&graph, k, None::<(u64, &TableCost)>).unwrap();
            simulate_data_parallel(&graph, &order, &cost, policy)
                .unwrap()
                .makespan()
        };
        let k = search_optimal_k(l, |k| 1.0 / sim_k(k) as f64);
        let baseline = reverse_first_k(&graph, k, None::<(u64, &TableCost)>).unwrap();
        let tuned = tune_backward_order(
            &graph,
            &baseline,
            Some(k),
            &cost,
            policy,
            KFamily::ReverseFirstK,
            &opts,
        )
        .unwrap();
        let certified = certify_order(&graph, &tuned.order, &cost, policy).unwrap();
        assert_eq!(certified, tuned.predicted, "seed {seed}: certification");
        assert_eq!(sim_k(k), tuned.baseline, "seed {seed}: baseline prediction");
        assert!(
            tuned.predicted <= tuned.baseline,
            "seed {seed}: tuned {} worse than heuristic k={k} ({})",
            tuned.predicted,
            tuned.baseline
        );
        improved += usize::from(tuned.improved());
    }
    assert!(
        improved >= 1,
        "no seed improved the search_optimal_k heuristic"
    );
}

/// Seeds 1-30, pipeline engine: tuning each strategy's op-level schedule
/// (modulo regrouping + in-lane `dW`/`[dW,U]` moves) stays verify-clean,
/// certifies exactly, and never regresses; at least one seed improves.
#[test]
fn pipeline_engine_tuning_conforms_on_seeds_1_to_30() {
    let strategies = [
        Strategy::ModelParallel,
        Strategy::GPipe,
        Strategy::PipeDream,
        Strategy::Dapple,
        Strategy::OooPipe1,
        Strategy::OooPipe2,
    ];
    let opts = TuneOptions::default();
    let mut improved = 0usize;
    for seed in 1u64..=30 {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = rng.gen_range(2usize..10);
        let devices = rng.gen_range(1usize..=4);
        let strategy = strategies[rng.gen_range(0..strategies.len())];
        let tuned = tune_pipeline(layers, devices, strategy, 1, &UnitCost, &opts).unwrap();
        let report = Verifier::new(&tuned.graph)
            .with_cost(&UnitCost)
            .verify(&tuned.schedule);
        assert!(
            report.is_clean(),
            "seed {seed} {strategy:?}: diagnostics {:?}",
            report.rule_codes()
        );
        let certified = certify_schedule(&tuned.graph, &tuned.schedule, &UnitCost).unwrap();
        assert_eq!(certified, tuned.predicted, "seed {seed}: certification");
        assert!(
            tuned.predicted <= tuned.baseline,
            "seed {seed} {strategy:?}: tuned {} worse than {}",
            tuned.predicted,
            tuned.baseline
        );
        improved += usize::from(tuned.improved());
    }
    assert!(improved >= 1, "no seed improved any pipeline strategy");
}

/// Seeds 1-30, hybrid engine: tuning the combined reverse-first-k +
/// fast-forwarding order from the `choose_split_k` heuristic stays
/// verify-clean, certifies exactly, and never regresses; at least one
/// seed improves.
#[test]
fn hybrid_engine_tuning_conforms_on_seeds_1_to_30() {
    let opts = TuneOptions::default();
    let mut improved = 0usize;
    for seed in 1u64..=30 {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(2usize..12);
        let graph = TrainGraph::data_parallel(l);
        let cost = spiky_cost(l, &mut rng);
        let policy = CommPolicy::PriorityByLayer;
        let sim_k = |k: usize| {
            let order = combined_backward_order(&graph, k).unwrap();
            simulate_data_parallel(&graph, &order, &cost, policy)
                .unwrap()
                .makespan()
        };
        let k = choose_split_k(l, |k| 1.0 / sim_k(k) as f64);
        let baseline = combined_backward_order(&graph, k).unwrap();
        let tuned = tune_backward_order(
            &graph,
            &baseline,
            Some(k),
            &cost,
            policy,
            KFamily::Combined,
            &opts,
        )
        .unwrap();
        let certified = certify_order(&graph, &tuned.order, &cost, policy).unwrap();
        assert_eq!(certified, tuned.predicted, "seed {seed}: certification");
        assert_eq!(sim_k(k), tuned.baseline, "seed {seed}: baseline prediction");
        assert!(
            tuned.predicted <= tuned.baseline,
            "seed {seed}: tuned {} worse than split k={k} ({})",
            tuned.predicted,
            tuned.baseline
        );
        improved += usize::from(tuned.improved());
    }
    assert!(
        improved >= 1,
        "no seed improved the choose_split_k heuristic"
    );
}

/// Regression: at 21 layers `search_optimal_k` scans `k` with step 2 and
/// only refines around the coarse winner, so on a non-concave makespan
/// surface it can settle in a local minimum. The tuner's exhaustive
/// k-jump move escapes it: starting *from* the heuristic's chosen depth,
/// tuning reaches the true argmin (or better, via `dW` relocations).
#[test]
fn tuner_k_move_escapes_search_optimal_k_local_minimum() {
    let l = 21usize;
    let mut rng = StdRng::seed_from_u64(13);
    let graph = TrainGraph::data_parallel(l);
    let cost = spiky_cost(l, &mut rng);
    let policy = CommPolicy::FifoCompletion;
    let sim_k = |k: usize| {
        let order = reverse_first_k(&graph, k, None::<(u64, &TableCost)>).unwrap();
        simulate_data_parallel(&graph, &order, &cost, policy)
            .unwrap()
            .makespan()
    };
    // Brute force over every depth: the surface's true optimum.
    let (true_k, true_ms) = (0..=l)
        .map(|k| (k, sim_k(k)))
        .min_by_key(|&(_, m)| m)
        .unwrap();
    // The concavity-assuming heuristic stops short of it.
    let heuristic_k = search_optimal_k(l, |k| 1.0 / sim_k(k) as f64);
    assert!(
        sim_k(heuristic_k) > true_ms,
        "surface must be non-concave for this regression: heuristic k={heuristic_k} \
         ({}) vs argmin k={true_k} ({true_ms})",
        sim_k(heuristic_k)
    );
    // The tuner's exhaustive sweep agrees with brute force...
    let (swept_k, swept_ms) = best_reverse_k(&graph, &cost, policy).unwrap();
    assert_eq!((swept_k, swept_ms), (true_k, true_ms));
    // ...and tuning *from* the heuristic's local minimum escapes it.
    let baseline = reverse_first_k(&graph, heuristic_k, None::<(u64, &TableCost)>).unwrap();
    let tuned = tune_backward_order(
        &graph,
        &baseline,
        Some(heuristic_k),
        &cost,
        policy,
        KFamily::ReverseFirstK,
        &TuneOptions::default(),
    )
    .unwrap();
    assert!(
        tuned.predicted <= true_ms,
        "tuned {} must reach the global reverse-k optimum {true_ms}",
        tuned.predicted
    );
    let certified = certify_order(&graph, &tuned.order, &cost, policy).unwrap();
    assert_eq!(certified, tuned.predicted);
}
