//! End-to-end NLP integration: a BERT-tiny (embedding + transformer
//! blocks + head) trained on token sequences under out-of-order
//! schedules, with bitwise schedule equivalence — the numeric counterpart
//! of the paper's BERT pipeline experiments.

use ooo_backprop::core::cost::UnitCost;
use ooo_backprop::core::reverse_k::reverse_first_k;
use ooo_backprop::nn::composite::TransformerBlock;
use ooo_backprop::nn::data::synthetic_tokens;
use ooo_backprop::nn::layers::Dense;
use ooo_backprop::nn::nlp::Embedding;
use ooo_backprop::nn::optim::Adam;
use ooo_backprop::nn::Sequential;
use ooo_backprop::tensor::Tensor;

const VOCAB: usize = 12;
const HIDDEN: usize = 8;
const SEQ: usize = 4;
const CLASSES: usize = 3;

fn bert_tiny(seed: u64) -> Sequential {
    let mut net = Sequential::new();
    net.push(Embedding::seeded(VOCAB, HIDDEN, seed));
    net.push(TransformerBlock::seeded(HIDDEN, SEQ, seed + 1));
    net.push(TransformerBlock::seeded(HIDDEN, SEQ, seed + 2));
    net.push(Dense::seeded(HIDDEN, CLASSES, seed + 3));
    net
}

/// Token ids as a `[tokens, 1]` tensor plus per-token labels
/// (`token mod CLASSES`, a function the embedding can represent).
fn token_batch(seed: u64, sequences: usize) -> (Tensor, Vec<usize>) {
    let seqs = synthetic_tokens(seed, sequences, SEQ, VOCAB);
    let flat: Vec<f32> = seqs.iter().flatten().map(|&t| t as f32).collect();
    let labels: Vec<usize> = seqs.iter().flatten().map(|&t| t % CLASSES).collect();
    let x = Tensor::from_vec(flat, &[sequences * SEQ, 1]).unwrap();
    (x, labels)
}

#[test]
fn bert_tiny_schedule_equivalence() {
    let net = bert_tiny(41);
    let graph = net.train_graph();
    let (x, y) = token_batch(5, 6);
    let base = net
        .grads_with_order(&x, &y, &graph.conventional_backprop())
        .unwrap();
    for k in 0..=net.len() {
        let order = reverse_first_k::<UnitCost>(&graph, k, None).unwrap();
        let (loss, grads) = net.grads_with_order(&x, &y, &order).unwrap();
        assert_eq!(loss.to_bits(), base.0.to_bits(), "k={k}");
        for (a, b) in grads.iter().flatten().zip(base.1.iter().flatten()) {
            assert_eq!(a.data(), b.data(), "k={k}");
        }
    }
}

#[test]
fn bert_tiny_trains_under_ooo_schedule() {
    let mut net = bert_tiny(17);
    let graph = net.train_graph();
    let order = graph.fast_forward_backprop();
    let (x, y) = token_batch(23, 16);
    let mut opt = Adam::new(0.01);
    let first = net.train_step(&x, &y, &order, &mut opt).unwrap();
    let mut last = first;
    for _ in 0..60 {
        last = net.train_step(&x, &y, &order, &mut opt).unwrap();
    }
    assert!(last < first * 0.5, "loss {first} -> {last}");
    let (_, acc) = net.evaluate(&x, &y).unwrap();
    assert!(acc > 0.85, "accuracy {acc}");
}

#[test]
fn bert_tiny_has_transformer_granularity() {
    // One scheduling layer per transformer block: the network exposes 4
    // layers (embedding, 2 transformers, head), exactly the granularity
    // the paper's modulo allocation uses for NLP models.
    let net = bert_tiny(1);
    assert_eq!(net.len(), 4);
    assert_eq!(
        net.layer_names(),
        vec![
            "embedding",
            "transformer_block",
            "transformer_block",
            "dense"
        ]
    );
}
