//! Cross-crate integration test: the central claim of the paper — that
//! out-of-order backprop changes only the schedule, never the training
//! semantics — checked numerically with real tensors on a CNN, under
//! conventional, fast-forwarded, reverse-first-k, and *randomly shuffled
//! valid* orders.

use ooo_backprop::core::cost::UnitCost;
use ooo_backprop::core::op::Op;
use ooo_backprop::core::reverse_k::reverse_first_k;
use ooo_backprop::core::schedule::validate_partial_order;
use ooo_backprop::nn::data::{synthetic_classification, synthetic_images};
use ooo_backprop::nn::layers::{Conv2d, Dense, GlobalAvgPool, LayerNorm, MaxPool2d, Relu};
use ooo_backprop::nn::optim::{Adam, Momentum, RmsProp, Sgd};
use ooo_backprop::nn::Sequential;
use ooo_backprop::tensor::conv::Conv2dParams;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn small_cnn(seed: u64) -> Sequential {
    let p1 = Conv2dParams {
        stride: 1,
        padding: 1,
    };
    let mut net = Sequential::new();
    net.push(Conv2d::seeded(8, 1, 3, p1, seed));
    net.push(Relu::new());
    net.push(Conv2d::seeded(8, 8, 3, p1, seed + 1));
    net.push(Relu::new());
    net.push(MaxPool2d::new(
        2,
        Conv2dParams {
            stride: 2,
            padding: 0,
        },
    ));
    net.push(Conv2d::seeded(16, 8, 3, p1, seed + 2));
    net.push(Relu::new());
    net.push(GlobalAvgPool::new());
    net.push(Dense::seeded(16, 3, seed + 3));
    net
}

/// A random valid linearization of the backward ops: repeatedly pick a
/// random ready op.
fn random_valid_backward(graph: &ooo_backprop::core::TrainGraph, rng: &mut StdRng) -> Vec<Op> {
    let backward: Vec<Op> = graph
        .ops()
        .iter()
        .copied()
        .filter(|o| o.is_backward())
        .collect();
    let mut remaining = backward.clone();
    let mut done: Vec<Op> = Vec::new();
    while !remaining.is_empty() {
        let mut ready: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter(|(_, &op)| {
                graph
                    .deps(op)
                    .unwrap()
                    .iter()
                    .all(|d| !remaining.contains(d) || done.contains(d))
            })
            .map(|(i, _)| i)
            .collect();
        ready.shuffle(rng);
        let pick = ready[0];
        done.push(remaining.remove(pick));
    }
    done
}

#[test]
fn cnn_gradients_identical_across_schedules() {
    let net = small_cnn(11);
    let graph = net.train_graph();
    let (x, y) = synthetic_images(5, 6, 1, 8, 8, 3);
    let baseline = net
        .grads_with_order(&x, &y, &graph.conventional_backprop())
        .unwrap();

    let mut orders: Vec<Vec<Op>> = vec![graph.fast_forward_backprop()];
    for k in [1, 3, net.len()] {
        orders.push(reverse_first_k::<UnitCost>(&graph, k, None).unwrap());
    }
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..5 {
        orders.push(random_valid_backward(&graph, &mut rng));
    }

    for (oi, order) in orders.iter().enumerate() {
        validate_partial_order(&graph, order).unwrap();
        let (loss, grads) = net.grads_with_order(&x, &y, order).unwrap();
        assert_eq!(loss.to_bits(), baseline.0.to_bits(), "order {oi}");
        for (a, b) in grads.iter().flatten().zip(baseline.1.iter().flatten()) {
            assert_eq!(a.data(), b.data(), "order {oi}");
        }
    }
}

#[test]
fn multi_step_training_identical_for_every_optimizer() {
    let (x, y) = synthetic_classification(3, 24, 8, 3);
    let graph_layers = 5;
    let mk = || {
        let mut net = Sequential::new();
        net.push(Dense::seeded(8, 32, 41));
        net.push(Relu::new());
        net.push(Dense::seeded(32, 16, 42));
        net.push(LayerNorm::new(16));
        net.push(Dense::seeded(16, 3, 43));
        assert_eq!(net.len(), graph_layers);
        net
    };

    // Each optimizer: conventional vs fast-forward over 8 steps.
    fn check<O: ooo_backprop::nn::optim::Optimizer>(
        mk: impl Fn() -> Sequential,
        x: &ooo_backprop::tensor::Tensor,
        y: &[usize],
        mut opt_a: O,
        mut opt_b: O,
    ) {
        let mut a = mk();
        let mut b = mk();
        let g = a.train_graph();
        for _ in 0..8 {
            let la = a
                .train_step(x, y, &g.conventional_backprop(), &mut opt_a)
                .unwrap();
            let lb = b
                .train_step(x, y, &g.fast_forward_backprop(), &mut opt_b)
                .unwrap();
            assert_eq!(la.to_bits(), lb.to_bits(), "{}", opt_a.name());
        }
        assert_eq!(a.snapshot_params(), b.snapshot_params(), "{}", opt_a.name());
    }

    check(mk, &x, &y, Sgd::new(0.05), Sgd::new(0.05));
    check(
        mk,
        &x,
        &y,
        Momentum::new(0.02, 0.9),
        Momentum::new(0.02, 0.9),
    );
    check(mk, &x, &y, RmsProp::new(0.01, 0.9), RmsProp::new(0.01, 0.9));
    check(mk, &x, &y, Adam::new(0.01), Adam::new(0.01));
}

#[test]
fn cnn_trains_to_high_accuracy_under_ooo_schedule() {
    let mut net = small_cnn(21);
    let graph = net.train_graph();
    let order = graph.fast_forward_backprop();
    let (x, y) = synthetic_images(17, 24, 1, 8, 8, 3);
    let mut opt = Momentum::new(0.05, 0.9);
    let first = net.train_step(&x, &y, &order, &mut opt).unwrap();
    let mut last = first;
    for _ in 0..60 {
        last = net.train_step(&x, &y, &order, &mut opt).unwrap();
    }
    assert!(last < first * 0.5, "loss {first} -> {last}");
    let (_, acc) = net.evaluate(&x, &y).unwrap();
    assert!(acc >= 0.8, "accuracy {acc}");
}
