//! The shared CLI contract, asserted in one place for all eight tools
//! (`ooo-lint`, `ooo-advise`, `ooo-memcheck`, `ooo-trace`, `ooo-chaos`,
//! `ooo-tune`, `ooo-cert`, `ooo-serve`):
//!
//! * exit code 0 on success, 1 when findings fire (diagnostics,
//!   advisories, unsafe inputs, unparsable traces), 2 on usage/IO/parse
//!   errors;
//! * graceful failure — never a panic — on malformed, empty, and
//!   deeply-nested JSON inputs;
//! * byte-identical output across double runs of the same invocation.
//!
//! `tournament-bench` follows the bench-binary convention instead —
//! a bare invocation runs the full bracket and exits 0 — so it gets
//! its own contract test covering flag validation and determinism.

use ooo_backprop::core::export::ScheduleBundle;
use ooo_backprop::core::op::{LayerId, Op};
use ooo_backprop::core::schedule::Schedule;
use ooo_backprop::core::TrainGraph;
use std::path::PathBuf;
use std::process::{Command, Output};

/// The eight CLIs under contract, with the package that owns each.
const CLIS: [(&str, &str); 8] = [
    ("ooo-lint", "ooo-verify"),
    ("ooo-advise", "ooo-verify"),
    ("ooo-memcheck", "ooo-verify"),
    ("ooo-trace", "ooo-cluster"),
    ("ooo-chaos", "ooo-faults"),
    ("ooo-tune", "ooo-tune"),
    ("ooo-cert", "ooo-cert"),
    ("ooo-serve", "ooo-serve"),
];

/// Bench binaries under the lighter bench contract (bare runs are
/// full-bracket runs, not usage errors), with their owning package.
const BENCH_CLIS: [(&str, &str); 1] = [("tournament-bench", "ooo-bench")];

/// Path to a CLI binary, building it on demand: the root package's
/// integration tests do not implicitly build other crates' binaries.
fn bin(name: &str) -> PathBuf {
    let exe = std::env::current_exe().expect("test executable path");
    let debug_dir = exe
        .parent()
        .and_then(|p| p.parent())
        .expect("target/debug dir")
        .to_path_buf();
    let path = debug_dir.join(name);
    if !path.exists() {
        let pkg = CLIS
            .iter()
            .chain(BENCH_CLIS.iter())
            .find(|(n, _)| *n == name)
            .map(|(_, p)| *p)
            .expect("known CLI");
        let status = Command::new(env!("CARGO"))
            .args(["build", "-q", "-p", pkg, "--bin", name])
            .status()
            .expect("cargo build runs");
        assert!(status.success(), "building {name} failed");
    }
    path
}

fn run(name: &str, args: &[&str]) -> Output {
    Command::new(bin(name))
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("{name} failed to spawn: {e}"))
}

/// Like [`run`], but feeding `input` on stdin — the `ooo-serve`
/// protocol arrives there rather than via file arguments.
fn run_with_stdin(name: &str, args: &[&str], input: &str) -> Output {
    use std::io::Write as _;
    use std::process::Stdio;
    let mut child = Command::new(bin(name))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("{name} failed to spawn: {e}"));
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("stdin accepts input");
    child
        .wait_with_output()
        .unwrap_or_else(|e| panic!("{name} failed to finish: {e}"))
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("CLI terminated by signal")
}

fn assert_no_panic(name: &str, out: &Output) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "{name} panicked:\n{stderr}");
}

/// Scratch directory for generated inputs, unique per test process.
fn scratch(file: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ooo-cli-contracts-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(file)
}

/// A well-formed bundle whose only entry is the canonical complete
/// backprop order — every linter and tuner accepts it cleanly.
fn clean_bundle_json() -> String {
    let graph = TrainGraph::single_gpu(4);
    let mut bundle = ScheduleBundle::new("contract-clean", &graph);
    bundle
        .add_order("conventional", &graph, graph.conventional_backprop())
        .expect("canonical order validates");
    bundle.to_json().expect("bundle serializes")
}

/// A structurally valid bundle carrying a schedule that breaks the
/// dependency graph (`dW2` runs before the `dO3` it consumes): parses
/// everywhere, then draws findings from every analysis tool.
fn unsafe_bundle_json() -> String {
    let graph = TrainGraph::single_gpu(3);
    let mut bundle = ScheduleBundle::new("contract-unsafe", &graph);
    let mut s = Schedule::new();
    s.add_lane(
        "gpu",
        vec![
            Op::Loss,
            Op::WeightGrad(LayerId(2)),
            Op::OutputGrad(LayerId(3)),
        ],
    );
    bundle.schedules.insert("broken".to_string(), s);
    bundle.to_json().expect("bundle serializes")
}

/// Bare invocations (and `--help`) are usage errors: exit 2, a usage
/// string on stderr, and no panic — for every CLI.
#[test]
fn bare_invocations_exit_2_with_usage() {
    for (name, _) in CLIS {
        let out = run(name, &[]);
        assert_no_panic(name, &out);
        assert_eq!(code(&out), 2, "{name} bare invocation");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("usage:"),
            "{name} must print usage, got:\n{stderr}"
        );
        let help = run(name, &["--help"]);
        assert_no_panic(name, &help);
        assert_eq!(code(&help), 2, "{name} --help");
    }
}

/// Malformed, empty, and deeply-nested JSON inputs fail gracefully in
/// every file-consuming CLI: the documented nonzero exit code, no panic,
/// no stack overflow from nesting.
#[test]
fn hostile_json_inputs_fail_gracefully() {
    let malformed = scratch("malformed.json");
    std::fs::write(&malformed, "{ this is not json").unwrap();
    let empty = scratch("empty.json");
    std::fs::write(&empty, "").unwrap();
    let nested = scratch("nested.json");
    std::fs::write(&nested, "[".repeat(100_000)).unwrap();

    for hostile in [&malformed, &empty, &nested] {
        let path = hostile.to_str().unwrap();
        // Bundle consumers treat unparsable input as an IO/parse error.
        for (name, args) in [
            ("ooo-lint", vec![path]),
            ("ooo-advise", vec!["bundle", path]),
            ("ooo-memcheck", vec!["bundle", path]),
            ("ooo-tune", vec!["bundle", path]),
            ("ooo-cert", vec!["bundle", path]),
        ] {
            let out = run(name, &args);
            assert_no_panic(name, &out);
            assert_eq!(code(&out), 2, "{name} on {path}");
        }
        // The trace tool diagnoses an unparsable *trace* as a finding.
        let out = run("ooo-trace", &["summarize", path]);
        assert_no_panic("ooo-trace", &out);
        assert_eq!(code(&out), 1, "ooo-trace summarize on {path}");
    }
}

/// Each CLI's success path exits 0 and its findings path exits 1.
#[test]
fn success_and_findings_exit_codes() {
    let clean = scratch("clean.json");
    std::fs::write(&clean, clean_bundle_json()).unwrap();
    let unsafe_b = scratch("unsafe.json");
    std::fs::write(&unsafe_b, unsafe_bundle_json()).unwrap();

    // ooo-lint: clean bundle passes, broken schedule draws diagnostics.
    let out = run("ooo-lint", &[clean.to_str().unwrap()]);
    assert_no_panic("ooo-lint", &out);
    assert_eq!(code(&out), 0, "ooo-lint clean bundle");
    let out = run("ooo-lint", &[unsafe_b.to_str().unwrap()]);
    assert_no_panic("ooo-lint", &out);
    assert_eq!(code(&out), 1, "ooo-lint unsafe bundle");

    // ooo-advise: OOO-Pipe2 is advisory-free; GPipe draws advisories.
    let pipe2 = run(
        "ooo-advise",
        &[
            "pipeline",
            "--layers",
            "8",
            "--devices",
            "2",
            "--strategy",
            "pipe2",
        ],
    );
    assert_no_panic("ooo-advise", &pipe2);
    assert_eq!(code(&pipe2), 0, "ooo-advise pipe2");
    let gpipe = run(
        "ooo-advise",
        &[
            "pipeline",
            "--layers",
            "8",
            "--devices",
            "2",
            "--strategy",
            "gpipe",
        ],
    );
    assert_no_panic("ooo-advise", &gpipe);
    assert_eq!(code(&gpipe), 1, "ooo-advise gpipe");

    // ooo-memcheck: the clean bundle's ledger draws no OM findings; the
    // broken schedule's premature dW2 is a use-of-freed-or-undefined
    // lifetime error, and a starvation budget flags any clean ledger.
    let out = run("ooo-memcheck", &["bundle", clean.to_str().unwrap()]);
    assert_no_panic("ooo-memcheck", &out);
    assert_eq!(code(&out), 0, "ooo-memcheck clean bundle");
    let out = run("ooo-memcheck", &["bundle", unsafe_b.to_str().unwrap()]);
    assert_no_panic("ooo-memcheck", &out);
    assert_eq!(code(&out), 1, "ooo-memcheck unsafe bundle");
    let out = run(
        "ooo-memcheck",
        &["order", "--layers", "6", "--k", "2", "--budget", "1"],
    );
    assert_no_panic("ooo-memcheck", &out);
    assert_eq!(code(&out), 1, "ooo-memcheck over-budget order");

    // ooo-trace: export a pipeline timeline, then summarize it back.
    let trace = scratch("trace.json");
    let out = run(
        "ooo-trace",
        &[
            "export",
            "--system",
            "pipeline",
            "--out",
            trace.to_str().unwrap(),
        ],
    );
    assert_no_panic("ooo-trace", &out);
    assert_eq!(code(&out), 0, "ooo-trace export");
    let out = run("ooo-trace", &["summarize", trace.to_str().unwrap()]);
    assert_no_panic("ooo-trace", &out);
    assert_eq!(code(&out), 0, "ooo-trace summarize");

    // ooo-chaos: a deterministic campaign completes with recovery intact.
    let out = run("ooo-chaos", &["run", "--seed", "42", "--scenarios", "5"]);
    assert_no_panic("ooo-chaos", &out);
    assert_eq!(code(&out), 0, "ooo-chaos run");
    let out = run("ooo-chaos", &["list"]);
    assert_no_panic("ooo-chaos", &out);
    assert_eq!(code(&out), 0, "ooo-chaos list");

    // ooo-tune: a known-improvable depth-0 order tunes successfully; the
    // broken bundle is refused by the safety gate.
    let out = run(
        "ooo-tune",
        &["order", "--layers", "8", "--k", "0", "--sync", "3"],
    );
    assert_no_panic("ooo-tune", &out);
    assert_eq!(code(&out), 0, "ooo-tune order");
    let out = run("ooo-tune", &["bundle", unsafe_b.to_str().unwrap()]);
    assert_no_panic("ooo-tune", &out);
    assert_eq!(code(&out), 1, "ooo-tune unsafe bundle");

    // ooo-cert: a sync-free order realization runs back-to-back and is
    // certified optimal (exit 0); the eager depth-0 order under heavy
    // syncs is refuted with a better witness (exit 1, a finding).
    let out = run(
        "ooo-cert",
        &["order", "--layers", "3", "--k", "0", "--sync", "0"],
    );
    assert_no_panic("ooo-cert", &out);
    assert_eq!(code(&out), 0, "ooo-cert optimal order");
    let out = run(
        "ooo-cert",
        &["order", "--layers", "3", "--k", "0", "--sync", "2"],
    );
    assert_no_panic("ooo-cert", &out);
    assert_eq!(code(&out), 1, "ooo-cert improvable order");
}

/// The tournament bench under the bench contract: unknown flags and
/// unknown strategy names are usage errors (exit 2, usage on stderr),
/// `--smoke` double runs are byte-identical on stdout, and a strategy
/// filter restricts the emitted cells to that strategy.
#[test]
fn tournament_bench_flags_filters_and_determinism() {
    // Unknown flag: exit 2 with the usage string, no panic.
    let bogus = run("tournament-bench", &["--bogus"]);
    assert_no_panic("tournament-bench", &bogus);
    assert_eq!(code(&bogus), 2, "tournament-bench unknown flag");
    let stderr = String::from_utf8_lossy(&bogus.stderr);
    assert!(
        stderr.contains("usage:"),
        "tournament-bench must print usage, got:\n{stderr}"
    );

    // Unknown strategy: exit 2, naming the known strategies.
    let unknown = run("tournament-bench", &["--smoke", "--strategy", "nonesuch"]);
    assert_no_panic("tournament-bench", &unknown);
    assert_eq!(code(&unknown), 2, "tournament-bench unknown strategy");
    let stderr = String::from_utf8_lossy(&unknown.stderr);
    assert!(
        stderr.contains("nonesuch") && stderr.contains("fastforward"),
        "unknown-strategy error should name the offender and the zoo:\n{stderr}"
    );

    // Smoke double runs: exit 0, byte-identical, every cell certified.
    let first = run("tournament-bench", &["--smoke"]);
    assert_no_panic("tournament-bench", &first);
    assert_eq!(code(&first), 0, "tournament-bench --smoke");
    let second = run("tournament-bench", &["--smoke"]);
    assert_eq!(
        first.stdout, second.stdout,
        "tournament-bench --smoke not byte-deterministic"
    );
    let doc = String::from_utf8_lossy(&first.stdout);
    assert!(doc.contains("\"bench\": \"tournament\""), "{doc}");
    assert!(!doc.contains("\"certified\": false"), "{doc}");
    assert!(!doc.contains("\"clean\": false"), "{doc}");

    // Strategy filter: only the named strategy's cells are emitted.
    // (gradinterleaved serializes onto one lane and never wins a group,
    // so it can only appear in the output via an unfiltered cell.)
    let filtered = run("tournament-bench", &["--smoke", "--strategy", "twobp"]);
    assert_no_panic("tournament-bench", &filtered);
    assert_eq!(code(&filtered), 0, "tournament-bench strategy filter");
    let doc = String::from_utf8_lossy(&filtered.stdout);
    assert!(doc.contains("\"strategy\": \"twobp\""), "{doc}");
    assert!(!doc.contains("\"strategy\": \"gradinterleaved\""), "{doc}");
}

/// The daemon's one-shot mode under the shared contract: one request
/// in, one response out, exit 0 on `ok`, 1 on any other response
/// status, 2 on usage errors — and hostile stdin (malformed, empty,
/// bomb-nested) draws a structured error without a panic.
#[test]
fn serve_oneshot_exit_codes_and_hostile_stdin() {
    let ok = run_with_stdin(
        "ooo-serve",
        &["--oneshot"],
        "{\"id\":1,\"cmd\":\"order\",\"layers\":4,\"k\":1,\"tier\":\"heuristic\"}\n",
    );
    assert_no_panic("ooo-serve", &ok);
    assert_eq!(code(&ok), 0, "ooo-serve oneshot success");
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert_eq!(stdout.lines().count(), 1, "one response: {stdout}");
    assert!(
        stdout.starts_with("{\"id\":1,\"status\":\"ok\""),
        "{stdout}"
    );

    // Findings path: a refused request is a structured response and
    // exit 1 (timeouts count — an expired deadline is not a success).
    let timeout = run_with_stdin(
        "ooo-serve",
        &["--oneshot"],
        "{\"cmd\":\"order\",\"layers\":4,\"timeout_ms\":0}\n",
    );
    assert_no_panic("ooo-serve", &timeout);
    assert_eq!(code(&timeout), 1, "ooo-serve oneshot timeout");

    for hostile in [
        "not json\n",
        "{\"cmd\":\"order\"}\n",
        "{\"cmd\":\"nope\"}\n",
        &format!("{}\n", "[".repeat(100_000)),
    ] {
        let out = run_with_stdin("ooo-serve", &["--oneshot"], hostile);
        assert_no_panic("ooo-serve", &out);
        assert_eq!(code(&out), 1, "ooo-serve oneshot on {hostile:.40?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(stdout.lines().count(), 1, "one response: {stdout}");
        assert!(
            stdout.contains("\"status\":\"error\""),
            "structured error expected: {stdout}"
        );
    }

    // Empty stdin is zero requests, not a success.
    let empty = run_with_stdin("ooo-serve", &["--oneshot"], "");
    assert_no_panic("ooo-serve", &empty);
    assert_eq!(code(&empty), 1, "ooo-serve oneshot empty stdin");

    // Usage errors stay on the CLI side of the contract.
    let usage = run_with_stdin("ooo-serve", &["--oneshot", "--workers"], "");
    assert_eq!(code(&usage), 2, "ooo-serve dangling flag");
}

/// Double runs of `--oneshot` and `--daemon` invocations over the same
/// stdin are byte-identical — the stream-level determinism the serve
/// conformance suite proves in-process, held at the process boundary.
#[test]
fn serve_double_runs_are_byte_identical() {
    let oneshot = "{\"id\":\"d\",\"cmd\":\"order\",\"layers\":6,\"k\":1,\"sync\":2}\n";
    let daemon = concat!(
        "{\"id\":1,\"cmd\":\"order\",\"layers\":5,\"k\":0,\"sync\":3}\n",
        "{\"id\":2,\"cmd\":\"cert\",\"layers\":3,\"k\":0,\"sync\":2}\n",
        "{\"id\":1,\"cmd\":\"order\",\"layers\":5,\"k\":0,\"sync\":3}\n",
        "bogus line\n",
        "{\"id\":3,\"cmd\":\"stats\"}\n",
    );
    for (args, input) in [
        (vec!["--oneshot"], oneshot),
        (vec!["--daemon", "--workers", "2"], daemon),
    ] {
        let first = run_with_stdin("ooo-serve", &args, input);
        let second = run_with_stdin("ooo-serve", &args, input);
        assert_no_panic("ooo-serve", &first);
        assert_eq!(
            first.stdout, second.stdout,
            "ooo-serve {args:?} not byte-deterministic"
        );
        assert_eq!(code(&first), code(&second), "ooo-serve exit code changed");
    }
}

/// Double runs of the same invocation are byte-identical on stdout —
/// the determinism half of the contract, JSON mode included.
#[test]
fn double_runs_are_byte_identical() {
    let unsafe_b = scratch("unsafe-det.json");
    std::fs::write(&unsafe_b, unsafe_bundle_json()).unwrap();

    let invocations: Vec<(&str, Vec<&str>)> = vec![
        ("ooo-lint", vec![unsafe_b.to_str().unwrap(), "--json"]),
        (
            "ooo-advise",
            vec![
                "pipeline",
                "--layers",
                "8",
                "--devices",
                "2",
                "--strategy",
                "gpipe",
                "--json",
            ],
        ),
        (
            "ooo-memcheck",
            vec!["bundle", unsafe_b.to_str().unwrap(), "--json"],
        ),
        ("ooo-trace", vec!["export", "--system", "pipeline"]),
        (
            "ooo-chaos",
            vec!["run", "--seed", "42", "--scenarios", "5", "--json"],
        ),
        (
            "ooo-tune",
            vec![
                "order", "--layers", "8", "--k", "0", "--sync", "3", "--json",
            ],
        ),
        (
            "ooo-cert",
            vec![
                "order", "--layers", "3", "--k", "0", "--sync", "2", "--json",
            ],
        ),
    ];
    for (name, args) in invocations {
        let first = run(name, &args);
        let second = run(name, &args);
        assert_no_panic(name, &first);
        assert_eq!(
            first.stdout, second.stdout,
            "{name} {args:?} not byte-deterministic"
        );
        assert_eq!(code(&first), code(&second), "{name} exit code changed");
    }
}
