//! Differential validation of the static makespan predictor and the
//! `OP`-series performance advisories against the discrete-event
//! simulators: for every engine (single-GPU multi-region, data-parallel,
//! pipeline, hybrid) the predictor must reproduce the simulated timeline
//! *exactly* (tolerance 0), and every applied advisory fix must stay
//! verify-clean while being strictly faster.

use ooo_backprop::core::bounds::lower_bound;
use ooo_backprop::core::combined::combined_backward_order;
use ooo_backprop::core::cost::{LayerCost, TableCost, UnitCost};
use ooo_backprop::core::datapar::{simulate_data_parallel, CommPolicy};
use ooo_backprop::core::list_scheduling::simulate;
use ooo_backprop::core::multi_region::{
    backward_regions, multi_region_joint_schedule, ConstantProfile,
};
use ooo_backprop::core::op::{LayerId, Op};
use ooo_backprop::core::pipeline::{op_level_schedule, Strategy};
use ooo_backprop::core::reverse_k::reverse_first_k;
use ooo_backprop::core::schedule::Schedule;
use ooo_backprop::core::TrainGraph;
use ooo_backprop::verify::perf::{advise_pipeline, PerfAdvisor, Suggestion};
use ooo_backprop::verify::predict::{datapar_schedule, predict_makespan};
use ooo_backprop::verify::{RuleId, Verifier};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random per-layer cost table: varied compute, sync, and update
/// durations so ties are rare and reconstruction order matters.
fn random_cost(l: usize, rng: &mut StdRng) -> TableCost {
    let mut cost = TableCost::uniform(l, LayerCost::default());
    for i in 1..=l {
        let c = cost.layer_mut(LayerId(i));
        c.forward = rng.gen_range(1..6);
        c.output_grad = rng.gen_range(1..6);
        c.weight_grad = rng.gen_range(1..6);
        c.update = rng.gen_range(1..4);
        c.sync_weight = rng.gen_range(1..8);
    }
    cost
}

/// Seeds 1–30: the policy-realized data-parallel reconstruction predicts
/// the simulator's timeline exactly — makespan and per-op finish times —
/// for random layer counts, costs, split depths, and both wire policies.
#[test]
fn datapar_prediction_matches_simulation_exactly() {
    for seed in 1u64..=30 {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(2usize..12);
        let graph = TrainGraph::data_parallel(l);
        let cost = random_cost(l, &mut rng);
        let k = rng.gen_range(0usize..=l);
        for policy in [CommPolicy::FifoCompletion, CommPolicy::PriorityByLayer] {
            let order = reverse_first_k(&graph, k, None::<(u64, &TableCost)>).unwrap();
            let sim = simulate_data_parallel(&graph, &order, &cost, policy).unwrap();
            let schedule = datapar_schedule(&graph, &order, &cost, policy).unwrap();
            let pred = predict_makespan(&graph, &schedule, &cost).unwrap();
            assert_eq!(
                pred.makespan(),
                sim.makespan(),
                "seed {seed} l={l} k={k} {policy:?}"
            );
            for e in &sim.entries {
                assert_eq!(
                    pred.finish_of(e.op),
                    Some(e.end),
                    "seed {seed} l={l} k={k} {policy:?} {}",
                    e.op
                );
            }
        }
    }
}

/// Seeds 1–30: every pipeline strategy's op-level schedule is predicted
/// exactly, op for op, at random layer/device counts.
#[test]
fn pipeline_prediction_matches_simulation_exactly() {
    let strategies = [
        Strategy::ModelParallel,
        Strategy::GPipe,
        Strategy::PipeDream,
        Strategy::Dapple,
        Strategy::OooPipe1,
        Strategy::OooPipe2,
    ];
    for seed in 1u64..=30 {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = rng.gen_range(2usize..12);
        let devices = rng.gen_range(1usize..=4);
        let strategy = strategies[rng.gen_range(0..strategies.len())];
        let (graph, schedule) = op_level_schedule(layers, devices, strategy, 1);
        let sim = simulate(&graph, &schedule, &UnitCost).unwrap();
        let pred = predict_makespan(&graph, &schedule, &UnitCost).unwrap();
        assert_eq!(
            pred.makespan(),
            sim.makespan(),
            "seed {seed} {strategy:?} l={layers} d={devices}"
        );
        for e in &sim.entries {
            assert_eq!(
                pred.start_of(e.op),
                Some(e.start),
                "seed {seed} {strategy:?} {}",
                e.op
            );
            assert_eq!(
                pred.finish_of(e.op),
                Some(e.end),
                "seed {seed} {strategy:?} {}",
                e.op
            );
        }
    }
}

/// Seeds 1–30: the multi-region joint schedule of the single-GPU engine
/// (main stream regions plus sub-stream weight gradients) is predicted
/// exactly.
#[test]
fn multi_region_prediction_matches_simulation_exactly() {
    for seed in 1u64..=30 {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(2usize..14);
        let graph = TrainGraph::single_gpu(l);
        let cost = random_cost(l, &mut rng);
        let per = rng.gen_range(1usize..=3);
        let (regions, subs) = backward_regions(&graph, &cost, per);
        let profile = ConstantProfile {
            speedup: 1.0 + rng.gen_range(0..5) as f64 / 10.0,
            sub_time: rng.gen_range(1..5),
        };
        let mrs = multi_region_joint_schedule(&graph, &regions, &subs, &profile).unwrap();
        let schedule = mrs.to_schedule(&regions);
        let sim = simulate(&graph, &schedule, &cost).unwrap();
        let pred = predict_makespan(&graph, &schedule, &cost).unwrap();
        assert_eq!(
            pred.makespan(),
            sim.makespan(),
            "seed {seed} l={l} per={per}"
        );
        for e in &sim.entries {
            assert_eq!(pred.finish_of(e.op), Some(e.end), "seed {seed} {}", e.op);
        }
    }
}

/// Seeds 1–30: the hybrid engine's combined reverse-first-k +
/// fast-forwarding orders reconstruct and predict exactly under both
/// policies.
#[test]
fn hybrid_combined_order_prediction_matches_simulation() {
    for seed in 1u64..=30 {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(2usize..12);
        let graph = TrainGraph::data_parallel(l);
        let cost = random_cost(l, &mut rng);
        let k = rng.gen_range(0usize..=l);
        let order = combined_backward_order(&graph, k).unwrap();
        for policy in [CommPolicy::FifoCompletion, CommPolicy::PriorityByLayer] {
            let sim = simulate_data_parallel(&graph, &order, &cost, policy).unwrap();
            let schedule = datapar_schedule(&graph, &order, &cost, policy).unwrap();
            let pred = predict_makespan(&graph, &schedule, &cost).unwrap();
            assert_eq!(
                pred.makespan(),
                sim.makespan(),
                "seed {seed} l={l} k={k} {policy:?}"
            );
        }
    }
}

/// Every OP101 (deferrable critical dW) suggestion, applied, yields a
/// schedule that the safety analyzer accepts and that simulates strictly
/// faster than the original.
#[test]
fn op101_fixes_are_clean_and_strictly_faster() {
    use ooo_backprop::core::graph::GraphConfig;
    let graph = TrainGraph::new(GraphConfig {
        include_updates: false,
        include_forward: false,
        ..GraphConfig::single_gpu(3)
    })
    .unwrap();
    let mut s = Schedule::new();
    s.add_lane(
        "main",
        vec![
            Op::Loss,
            Op::WeightGrad(LayerId(3)),
            Op::OutputGrad(LayerId(3)),
            Op::OutputGrad(LayerId(2)),
        ],
    );
    s.add_lane(
        "sub",
        vec![Op::WeightGrad(LayerId(2)), Op::WeightGrad(LayerId(1))],
    );
    let advisor = PerfAdvisor::new(&graph);
    let report = advisor.analyze(&s).unwrap();
    let hits = report.by_rule(RuleId::MissedOooOpportunity);
    assert!(!hits.is_empty(), "OP101 must fire on this construction");
    let base = simulate(&graph, &s, &UnitCost).unwrap().makespan();
    for advice in hits {
        let suggestion = advice.suggestion.as_ref().expect("OP101 carries a fix");
        let fixed = suggestion.apply(&s).expect("defer suggestions rebuild");
        assert!(
            Verifier::new(&graph).verify(&fixed).is_clean(),
            "applied fix must stay verify-clean"
        );
        let after = simulate(&graph, &fixed, &UnitCost).unwrap().makespan();
        assert!(
            after < base,
            "fix must be strictly faster: {after} vs {base}"
        );
    }
}

/// The OP301 depth recommendation, adopted, simulates strictly faster
/// than the analyzed order (checked against the real data-parallel
/// simulator, not just the predictor).
#[test]
fn op301_recommended_depth_is_strictly_faster_when_emitted() {
    let l = 8;
    let graph = TrainGraph::data_parallel(l);
    let cost = TableCost::uniform(
        l,
        LayerCost {
            sync_weight: 3,
            ..LayerCost::default()
        },
    );
    let policy = CommPolicy::FifoCompletion;
    let order = reverse_first_k(&graph, 0, None::<(u64, &TableCost)>).unwrap();
    let report = PerfAdvisor::new(&graph)
        .with_cost(cost.clone())
        .analyze_order(&order, policy)
        .unwrap();
    let hits = report.by_rule(RuleId::SuboptimalReverseK);
    assert!(!hits.is_empty(), "OP301 must fire at k=0 under these costs");
    let Some(Suggestion::SetK { k }) = hits[0].suggestion else {
        panic!("OP301 carries a SetK suggestion");
    };
    let base = simulate_data_parallel(&graph, &order, &cost, policy)
        .unwrap()
        .makespan();
    let better = reverse_first_k(&graph, k, None::<(u64, &TableCost)>).unwrap();
    let after = simulate_data_parallel(&graph, &better, &cost, policy)
        .unwrap()
        .makespan();
    assert!(after < base, "k={k} must beat k=0: {after} vs {base}");
}

/// `advise_pipeline` across the full strategy matrix never errors and
/// its gap is a valid ratio; OOO-Pipe2 self-analysis draws no advisory.
#[test]
fn advise_pipeline_is_total_and_pipe2_is_advisory_free() {
    for layers in [2usize, 5, 8, 13] {
        for devices in [1usize, 2, 4] {
            for strategy in [
                Strategy::ModelParallel,
                Strategy::GPipe,
                Strategy::PipeDream,
                Strategy::Dapple,
                Strategy::OooPipe1,
                Strategy::OooPipe2,
            ] {
                let report = advise_pipeline(layers, devices, strategy, 1).unwrap();
                if let Some(gap) = report.optimality_gap {
                    assert!(gap >= 1.0 - 1e-9, "{strategy:?} l={layers} d={devices}");
                }
                if strategy == Strategy::OooPipe2 {
                    assert!(
                        !report.has_advice(),
                        "OOO-Pipe2 must be advisory-free at l={layers} d={devices}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The combined lower bound never exceeds the simulated makespan of
    /// any complete single-lane schedule (satellite #3's property, run
    /// against the simulator rather than the predictor).
    #[test]
    fn lower_bound_never_exceeds_simulated_makespan(
        l in 1usize..16,
        seed in 0u64..1000,
        per in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = TrainGraph::single_gpu(l);
        let cost = random_cost(l, &mut rng);
        // The canonical order is complete: backward pass plus the
        // update/forward tail.
        let s = Schedule::single_lane("gpu", graph.conventional_backprop());
        let makespan = simulate(&graph, &s, &cost).unwrap().makespan();
        prop_assert!(lower_bound(&graph, &cost, 1, 1) <= makespan);
        // And on the multi-lane side: the data-parallel realization for a
        // random split depth, against a one-compute-one-link bound.
        let dgraph = TrainGraph::data_parallel(l);
        let k = per.min(l);
        let backward = reverse_first_k(&dgraph, k, None::<(u64, &TableCost)>).unwrap();
        let dmakespan =
            simulate_data_parallel(&dgraph, &backward, &cost, CommPolicy::FifoCompletion)
                .unwrap()
                .makespan();
        prop_assert!(lower_bound(&dgraph, &cost, 1, 1) <= dmakespan);
    }
}
