//! Stream-level conformance for the `ooo-serve` daemon, driven by the
//! seeded traffic traces from `ooo_faults::serve`.
//!
//! Every trace is replayed through the in-process daemon twice and the
//! two response streams are compared byte for byte. On top of that,
//! each stream is checked against the protocol invariants:
//!
//! * exactly one response per request line — none lost, none
//!   duplicated (ids are unique per trace and each must come back
//!   exactly once);
//! * every response is valid JSON with a recognized `status`;
//! * hostile request lines draw `"id":null` structured errors, never a
//!   panic, never a desynchronized stream;
//! * hold-gated overload blocks bounce exactly the predicted number of
//!   requests with `{"status":"overloaded"}`;
//! * caching is invisible on the wire: the same trace served with the
//!   cache disabled produces the identical byte stream.

use ooo_backprop::core::json::Value;
use ooo_backprop::serve::{serve, ServeConfig, ServeSummary};
use ooo_faults::serve::{generate_trace, ServeTrace, TraceConfig};
use std::collections::BTreeMap;
use std::io::Cursor;

fn run(input: &str, config: &ServeConfig) -> (String, ServeSummary) {
    let mut out = Vec::new();
    let summary = serve(Cursor::new(input.as_bytes()), &mut out, config).expect("serve runs");
    (String::from_utf8(out).expect("utf8 output"), summary)
}

const STATUSES: [&str; 5] = ["ok", "error", "unsafe", "timeout", "overloaded"];

/// The summary fields that are functions of the response stream alone.
/// (`respawned` is bookkeeping about pool internals: how many workers
/// were replaced depends on when the admission loop observed a death,
/// which is timing, not wire state.)
fn wire_counts(sum: &ServeSummary) -> [u64; 7] {
    [
        sum.responses,
        sum.ok,
        sum.errors,
        sum.unsafe_inputs,
        sum.timeouts,
        sum.overloaded,
        sum.cache_served,
    ]
}

/// Asserts the per-stream invariants of `out` against its trace.
fn assert_stream_invariants(trace: &ServeTrace, out: &str, summary: &ServeSummary) {
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(
        lines.len(),
        trace.expected_responses(),
        "seed {}: one response per request line",
        trace.seed
    );
    assert_eq!(summary.responses as usize, lines.len());

    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    let mut nulls = 0usize;
    for line in &lines {
        let v = Value::parse(line)
            .unwrap_or_else(|e| panic!("seed {}: unparsable response {line:?}: {e}", trace.seed));
        let status = v
            .get("status")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("seed {}: response without status: {line}", trace.seed));
        assert!(
            STATUSES.contains(&status),
            "seed {}: unknown status {status:?}",
            trace.seed
        );
        match v.get("id") {
            Some(Value::Str(id)) => *seen.entry(id.clone()).or_insert(0) += 1,
            Some(Value::Null) | None => nulls += 1,
            Some(other) => panic!("seed {}: unexpected id {other:?}", trace.seed),
        }
    }
    assert_eq!(
        nulls, trace.hostile,
        "seed {}: hostile lines answer with id null",
        trace.seed
    );
    for id in &trace.ids {
        assert_eq!(
            seen.get(id).copied().unwrap_or(0),
            1,
            "seed {}: id {id} must come back exactly once",
            trace.seed
        );
    }
    assert_eq!(
        seen.len(),
        trace.ids.len(),
        "seed {}: no invented ids",
        trace.seed
    );
}

/// Seeds 1–30 of mixed chaos traffic — orders, certs, pipelines,
/// duplicates, hostile lines, panics, flaky workers, kills, and
/// zero-deadline timeouts — each replayed twice, byte-identical.
#[test]
fn chaos_traces_replay_byte_identical_seeds_1_to_30() {
    let cfg = TraceConfig {
        len: 12,
        workers: 2,
        queue: 64,
        overload: false,
        chaos: true,
    };
    let serve_cfg = ServeConfig {
        workers: 2,
        queue: 64,
        cache: 64,
        ..ServeConfig::default()
    };
    for seed in 1..=30u64 {
        let trace = generate_trace(seed, &cfg);
        let input = trace.input();
        let (first, sum1) = run(&input, &serve_cfg);
        let (second, sum2) = run(&input, &serve_cfg);
        assert_eq!(
            first, second,
            "seed {seed}: response stream not deterministic"
        );
        assert_eq!(
            wire_counts(&sum1),
            wire_counts(&sum2),
            "seed {seed}: summaries diverged"
        );
        assert_stream_invariants(&trace, &first, &sum1);
        // The queue is deeper than the trace, so nothing may bounce.
        assert_eq!(sum1.overloaded, 0, "seed {seed}");
    }
}

/// Hold-gated overload: with every worker parked, the queue fills
/// exactly and the surplus bounces — the same two requests, every run.
#[test]
fn overload_blocks_bounce_exactly_the_surplus() {
    for seed in 1..=5u64 {
        // The queue must be at least as deep as the mixed prefix:
        // until the holds park every worker, up to `len` mixed jobs
        // can be outstanding at once, and only the hold-gated block
        // may overflow.
        let cfg = TraceConfig {
            len: 6,
            workers: 2,
            queue: 6,
            overload: true,
            chaos: false,
        };
        let serve_cfg = ServeConfig {
            workers: cfg.workers,
            queue: cfg.queue,
            cache: 64,
            ..ServeConfig::default()
        };
        let trace = generate_trace(seed, &cfg);
        let input = trace.input();
        let (first, sum1) = run(&input, &serve_cfg);
        let (second, _) = run(&input, &serve_cfg);
        assert_eq!(
            first, second,
            "seed {seed}: overload stream not deterministic"
        );
        assert_stream_invariants(&trace, &first, &sum1);
        assert_eq!(
            sum1.overloaded as usize, trace.expect_overloaded,
            "seed {seed}: exact backpressure"
        );
    }
}

/// The cache must be invisible on the wire: serving the same trace
/// with caching disabled yields the identical byte stream, while the
/// cached run actually serves from the cache.
#[test]
fn cache_hits_are_byte_identical_to_cold_misses() {
    let trace = generate_trace(
        17,
        &TraceConfig {
            len: 16,
            workers: 2,
            queue: 64,
            overload: false,
            chaos: false,
        },
    );
    // Stats responses deliberately report cache counters, so they are
    // the one place the cache is *supposed* to show; drop them and
    // compare the work responses.
    let mut input: String = trace
        .lines
        .iter()
        .filter(|l| !l.contains("\"cmd\":\"stats\""))
        .map(|l| format!("{l}\n"))
        .collect();
    if input.is_empty() {
        input.push('\n');
    }
    let cached_cfg = ServeConfig {
        workers: 2,
        queue: 64,
        cache: 64,
        ..ServeConfig::default()
    };
    let cold_cfg = ServeConfig {
        cache: 0,
        ..cached_cfg.clone()
    };
    let (cached, cached_sum) = run(&input, &cached_cfg);
    let (cold, cold_sum) = run(&input, &cold_cfg);
    assert_eq!(cached, cold, "cache visibly changed the response stream");
    assert!(
        cached_sum.cache_served > 0,
        "trace never hit the cache: {cached_sum:?}"
    );
    assert_eq!(cold_sum.cache_served, 0);
}

/// Worker crashes (kill directives) reap threads mid-stream; the pool
/// respawns and every response is still accounted for.
#[test]
fn worker_crashes_lose_no_responses() {
    let mut input = String::new();
    for i in 0..3 {
        input.push_str(&format!(
            "{{\"id\":\"k{i}\",\"cmd\":\"order\",\"layers\":3,\"tier\":\"heuristic\",\"fault\":\"kill\"}}\n"
        ));
    }
    for i in 0..3 {
        input.push_str(&format!(
            "{{\"id\":\"n{i}\",\"cmd\":\"order\",\"layers\":{},\"tier\":\"heuristic\"}}\n",
            4 + i
        ));
    }
    let config = ServeConfig {
        workers: 2,
        queue: 64,
        cache: 0,
        ..ServeConfig::default()
    };
    let (first, sum1) = run(&input, &config);
    let (second, sum2) = run(&input, &config);
    assert_eq!(first, second, "crash recovery not deterministic");
    assert_eq!(sum1.responses, 6);
    assert_eq!(sum1.ok, 6, "{first}");
    assert_eq!(wire_counts(&sum1), wire_counts(&sum2));
}
