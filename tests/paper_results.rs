//! Integration tests pinning the *shape* of the paper's headline results
//! across crates: who wins, by roughly what factor, and where regimes
//! flip. Exact unit-time makespans from the paper's figures are asserted
//! exactly; simulated throughputs are asserted as bands.

use ooo_backprop::cluster::datapar::{self, CommSystem};
use ooo_backprop::cluster::pipeline as cpipe;
use ooo_backprop::cluster::single::{self, Engine};
use ooo_backprop::core::pipeline::{simulate_pipeline, PipelineConfig, Strategy};
use ooo_backprop::models::zoo::{bert, densenet121, ffnn16, resnet};
use ooo_backprop::models::GpuProfile;
use ooo_backprop::netsim::link::LinkSpec;
use ooo_backprop::netsim::topology::ClusterTopology;

#[test]
fn figure5_exact_unit_makespans() {
    // Paper: 23 -> 19 -> 16 unit times.
    let m = |s| {
        simulate_pipeline(&PipelineConfig::unit(8, 2, 1, s))
            .unwrap()
            .makespan()
    };
    assert_eq!(m(Strategy::ModelParallel), 23);
    assert_eq!(m(Strategy::OooPipe1), 19);
    assert_eq!(m(Strategy::OooPipe2), 16);
}

#[test]
fn figure5_speedup_factors() {
    // Paper: fast-forwarding gives 21% (23 -> 19), modulo 1.44x (23 -> 16).
    let m = |s| {
        simulate_pipeline(&PipelineConfig::unit(8, 2, 1, s))
            .unwrap()
            .makespan() as f64
    };
    let conv = m(Strategy::ModelParallel);
    assert!((conv / m(Strategy::OooPipe1) - 1.21).abs() < 0.01);
    assert!((conv / m(Strategy::OooPipe2) - 1.4375).abs() < 0.01);
}

#[test]
fn figure12_ffnn16_bands() {
    // Paper: on the 16-layer FFNN, fast-forwarding alone gives 1.22x over
    // GPipe and with modulo allocation 1.62x (unit-time analysis).
    let m = |s| {
        simulate_pipeline(&PipelineConfig::unit(16, 4, 4, s))
            .unwrap()
            .makespan() as f64
    };
    let gpipe = m(Strategy::GPipe);
    let p1 = gpipe / m(Strategy::OooPipe1);
    let p2 = gpipe / m(Strategy::OooPipe2);
    assert!((1.05..1.45).contains(&p1), "Pipe1/GPipe {p1}");
    assert!((1.3..1.9).contains(&p2), "Pipe2/GPipe {p2}");
    assert!(p2 > p1);
}

#[test]
fn figure7_single_gpu_bands() {
    // Paper: OOO-XLA is 1.03-1.58x over XLA; DenseNet-121 k=12 batch 32
    // is near the top of the band.
    let gpu = GpuProfile::v100();
    let m = densenet121(12, 32);
    let xla = single::run(&m, 32, &gpu, Engine::Xla).unwrap().throughput;
    let ooo = single::run(&m, 32, &gpu, Engine::OooXla)
        .unwrap()
        .throughput;
    let s = ooo / xla;
    assert!((1.15..2.2).contains(&s), "DenseNet speedup {s}");

    // ResNet stays at the bottom of the band.
    let r = resnet(50);
    let xla = single::run(&r, 64, &gpu, Engine::Xla).unwrap().throughput;
    let ooo = single::run(&r, 64, &gpu, Engine::OooXla)
        .unwrap()
        .throughput;
    let s = ooo / xla;
    assert!((1.0..1.3).contains(&s), "ResNet speedup {s}");
}

#[test]
fn figure7_nimble_comparison() {
    // Paper: OOO-XLA >= Nimble everywhere (1.0-1.55x), Nimble OOM at
    // batch 64 for most models.
    let gpu = GpuProfile::v100();
    let m = densenet121(24, 32);
    let nimble = single::run(&m, 32, &gpu, Engine::Nimble)
        .unwrap()
        .throughput;
    let ooo = single::run(&m, 32, &gpu, Engine::OooXla)
        .unwrap()
        .throughput;
    assert!(ooo >= nimble * 0.99, "OOO {ooo} vs Nimble {nimble}");
    assert!(single::run(&resnet(50), 64, &gpu, Engine::Nimble).is_err());
}

#[test]
fn figure10_data_parallel_bands() {
    // Paper: OOO-BytePS 1.10-1.27x over BytePS at 16-48 GPUs; Horovod far
    // behind on Ethernet clusters.
    let m = resnet(50);
    let gpu = GpuProfile::v100();
    let topo = ClusterTopology::pub_a();
    for gpus in [16usize, 32, 48] {
        let b = datapar::run(&m, 128, &gpu, &topo, gpus, CommSystem::BytePS).unwrap();
        let o = datapar::run(&m, 128, &gpu, &topo, gpus, CommSystem::OooBytePS).unwrap();
        let s = o.throughput / b.throughput;
        assert!((1.03..1.45).contains(&s), "{gpus} GPUs: speedup {s}");
        let h = datapar::run(&m, 128, &gpu, &topo, gpus, CommSystem::Horovod).unwrap();
        assert!(
            b.throughput > h.throughput,
            "{gpus} GPUs: BytePS vs Horovod"
        );
    }
}

#[test]
fn figure11a_fine_tuning_ranking() {
    // Paper: model-par < GPipe < OOO-Pipe1 < OOO-Pipe2 for BERT-24 on 4
    // V100s (1.59x GPipe for OOO-Pipe2).
    let m = bert(24, 128);
    let gpu = GpuProfile::v100();
    let nv = LinkSpec::nvlink();
    let gpipe = cpipe::run(&m, 96, 4, &gpu, &nv, 4, Strategy::GPipe, 1, 5)
        .unwrap()
        .throughput;
    let p1 = cpipe::run(&m, 96, 4, &gpu, &nv, 4, Strategy::OooPipe1, 1, 5)
        .unwrap()
        .throughput;
    let p2 = cpipe::run(&m, 96, 4, &gpu, &nv, 4, Strategy::OooPipe2, 1, 5)
        .unwrap()
        .throughput;
    assert!(p1 >= gpipe);
    assert!(p2 > p1);
    let s = p2 / gpipe;
    assert!((1.2..2.0).contains(&s), "BERT-24 Pipe2/GPipe {s}");
}

#[test]
fn figure13_weak_scaling_keeps_the_gain() {
    // Paper: growing GPUs 16 -> 32 with larger models, OOO-Pipe2's edge
    // over GPipe does not shrink (41-45%).
    let gpu = GpuProfile::v100();
    let nv = LinkSpec::nvlink();
    let gain = |layers: usize, devices: usize| {
        let m = bert(layers, 128);
        let gp = cpipe::run(&m, 512, 8, &gpu, &nv, devices, Strategy::GPipe, 1, 4)
            .unwrap()
            .throughput;
        let p2 = cpipe::run(&m, 512, 8, &gpu, &nv, devices, Strategy::OooPipe2, 1, 4)
            .unwrap()
            .throughput;
        p2 / gp
    };
    let g16 = gain(24, 16);
    let g32 = gain(48, 32);
    assert!(g16 > 1.15, "16 GPUs gain {g16}");
    assert!(g32 > 1.15, "32 GPUs gain {g32}");
}

#[test]
fn ffnn_pipeline_matches_experimental_reduction() {
    // Paper: experiments show 1.18x / 1.5x (vs 1.22x / 1.62x analytic)
    // once communication costs bite.
    let m = ffnn16(4_096);
    let gpu = GpuProfile::v100();
    let nv = LinkSpec::nvlink();
    let gp = cpipe::run(&m, 1_024, 4, &gpu, &nv, 4, Strategy::GPipe, 1, 4)
        .unwrap()
        .throughput;
    let p2 = cpipe::run(&m, 1_024, 4, &gpu, &nv, 4, Strategy::OooPipe2, 1, 4)
        .unwrap()
        .throughput;
    let s = p2 / gp;
    assert!((1.25..1.9).contains(&s), "FFNN speedup {s}");
}

#[test]
fn titan_xp_gains_mirror_v100() {
    // Paper: "with 32 and 64 batch sizes, the performance gain of
    // OOO-XLA [on Titan XP] is similar to that of V100."
    let m = densenet121(12, 32);
    let gain = |gpu: &GpuProfile| {
        let xla = single::run(&m, 32, gpu, Engine::Xla).unwrap().throughput;
        let ooo = single::run(&m, 32, gpu, Engine::OooXla).unwrap().throughput;
        ooo / xla
    };
    let v100 = gain(&GpuProfile::v100());
    let titan = gain(&GpuProfile::titan_xp());
    assert!(titan > 1.1, "Titan XP gain {titan}");
    assert!(
        (titan / v100 - 1.0).abs() < 0.35,
        "Titan {titan} vs V100 {v100}"
    );
}

#[test]
fn memory_overheads_stay_bounded() {
    // Paper: single-GPU ooo peak-memory increase < 0.1% under a 1.1x
    // budget; our coarser model stays within 5%.
    let gpu = GpuProfile::v100();
    let m = densenet121(12, 32);
    let base = single::run(&m, 32, &gpu, Engine::Xla).unwrap().peak_mem;
    let ooo = single::run(&m, 32, &gpu, Engine::OooXla).unwrap().peak_mem;
    assert!((ooo as f64) < base as f64 * 1.05);
}
