//! Property-based tests on the scheduling core and its numeric
//! counterpart: every algorithm's output must be a valid linearization,
//! schedules must cover all operations exactly once, memory accounting
//! must balance, and simulators must respect conservation laws.

use ooo_backprop::core::cost::{LayerCost, TableCost, UnitCost};
use ooo_backprop::core::datapar::{reverse_k_makespan, CommPolicy};
use ooo_backprop::core::memory::memory_profile;
use ooo_backprop::core::multi_region::{
    backward_regions, multi_region_joint_schedule, ConstantProfile,
};
use ooo_backprop::core::op::{LayerId, Op};
use ooo_backprop::core::pipeline::{
    simulate_pipeline, PipeCost, PipelineConfig, Strategy, TaskKind,
};
use ooo_backprop::core::reverse_k::reverse_first_k;
use ooo_backprop::core::schedule::{validate_order, validate_partial_order, Schedule};
use ooo_backprop::core::TrainGraph;
use ooo_backprop::verify::{Verifier, VerifyConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reverse first-k always yields a valid partial order covering every
    /// weight gradient exactly once, for every (L, k).
    #[test]
    fn reverse_k_always_valid(l in 1usize..40, k_frac in 0.0f64..=1.0) {
        let k = ((l as f64) * k_frac) as usize;
        let graph = TrainGraph::data_parallel(l);
        let order = reverse_first_k::<UnitCost>(&graph, k.min(l), None).unwrap();
        validate_partial_order(&graph, &order).unwrap();
        let dws = order.iter().filter(|o| o.is_weight_grad()).count();
        prop_assert_eq!(dws, l);
    }

    /// The canonical orders are valid for any graph flavour.
    #[test]
    fn canonical_orders_valid(l in 1usize..30, flavour in 0u8..3) {
        let graph = match flavour {
            0 => TrainGraph::single_gpu(l),
            1 => TrainGraph::data_parallel(l),
            _ => TrainGraph::pipeline_parallel(l),
        };
        validate_order(&graph, &graph.conventional_backprop()).unwrap();
        validate_order(&graph, &graph.fast_forward_backprop()).unwrap();
    }

    /// Memory accounting balances: after a full iteration every
    /// temporary buffer is freed, and the peak is at least the initial
    /// resident set.
    #[test]
    fn memory_balances(l in 1usize..30, act in 1u64..100, w in 1u64..100) {
        let graph = TrainGraph::single_gpu(l);
        let cost = TableCost::uniform(
            l,
            LayerCost { activation_bytes: act, out_grad_bytes: act, weight_bytes: w, ..LayerCost::default() },
        );
        for order in [graph.conventional_backprop(), graph.fast_forward_backprop()] {
            let p = memory_profile(&graph, &order, &cost).unwrap();
            prop_assert_eq!(p.samples.last().unwrap().1, 0);
            prop_assert!(p.peak >= p.initial);
        }
    }

    /// Delaying weight gradients never *reduces* peak memory, and the
    /// fast-forward peak is bounded by initial + all gradient buffers.
    #[test]
    fn ooo_memory_monotone(l in 2usize..25) {
        let graph = TrainGraph::single_gpu(l);
        let conv = memory_profile(&graph, &graph.conventional_backprop(), &UnitCost).unwrap();
        let ooo = memory_profile(&graph, &graph.fast_forward_backprop(), &UnitCost).unwrap();
        prop_assert!(ooo.peak >= conv.peak);
        prop_assert!(ooo.peak <= ooo.initial + 2 * l as u64 + 1);
    }

    /// In the data-parallel simulator, priority communication is never
    /// slower than FIFO, for any sync cost.
    #[test]
    fn priority_never_hurts(l in 2usize..25, sync in 0u64..8) {
        let graph = TrainGraph::data_parallel(l);
        let cost = TableCost::uniform(l, LayerCost { sync_weight: sync, ..LayerCost::default() });
        let fifo = reverse_k_makespan(&graph, 0, &cost, CommPolicy::FifoCompletion).unwrap();
        let prio = reverse_k_makespan(&graph, 0, &cost, CommPolicy::PriorityByLayer).unwrap();
        prop_assert!(prio <= fifo);
    }

    /// The iteration makespan is bounded below by total compute and above
    /// by compute plus all synchronization time (work conservation).
    #[test]
    fn datapar_makespan_bounds(l in 2usize..20, sync in 0u64..6, k_frac in 0.0f64..=1.0) {
        let k = ((l as f64) * k_frac) as usize;
        let graph = TrainGraph::data_parallel(l);
        let cost = TableCost::uniform(l, LayerCost { sync_weight: sync, ..LayerCost::default() });
        let m = reverse_k_makespan(&graph, k.min(l), &cost, CommPolicy::PriorityByLayer).unwrap();
        let compute = cost.total_backward() + cost.total_forward() - 1; // dO_1 absent
        let total_sync = sync * l as u64;
        prop_assert!(m >= compute, "{m} < {compute}");
        prop_assert!(m <= compute + total_sync, "{m} > {} + {}", compute, total_sync);
    }

    /// Pipeline simulation conservation: every compute task executes
    /// exactly once, devices never self-overlap, and fast-forwarding
    /// never increases the single-iteration makespan relative to the same
    /// strategy without it.
    #[test]
    fn pipeline_conservation(
        layers in 4usize..16,
        devices in 2usize..4,
        micros in 1usize..4,
    ) {
        prop_assume!(devices <= layers);
        for strategy in [Strategy::GPipe, Strategy::OooPipe1, Strategy::OooPipe2] {
            let cfg = PipelineConfig::unit(layers, devices, micros, strategy);
            let r = simulate_pipeline(&cfg).unwrap();
            let compute = r
                .events
                .iter()
                .filter(|e| e.task.kind != TaskKind::Transfer)
                .count();
            // F: layers, dO: layers-1, dW: layers, per micro.
            prop_assert_eq!(compute, micros * (3 * layers - 1));
            for res in 0..2 * devices {
                let mut evs: Vec<_> = r.events.iter().filter(|e| e.resource == res).collect();
                evs.sort_by_key(|e| e.start);
                for w in evs.windows(2) {
                    prop_assert!(w[0].end <= w[1].start);
                }
            }
        }
        let gp = simulate_pipeline(&PipelineConfig::unit(layers, devices, micros, Strategy::GPipe))
            .unwrap()
            .makespan();
        let p1 = simulate_pipeline(&PipelineConfig::unit(layers, devices, micros, Strategy::OooPipe1))
            .unwrap()
            .makespan();
        prop_assert!(p1 <= gp, "ff {p1} > gpipe {gp}");
    }

    /// Pipeline cost scaling: doubling every kernel time doubles the
    /// makespan exactly (linearity of the schedule).
    #[test]
    fn pipeline_time_scales_linearly(layers in 4usize..12, devices in 2usize..4) {
        prop_assume!(devices <= layers);
        let mut cfg = PipelineConfig::unit(layers, devices, 2, Strategy::OooPipe2);
        let m1 = simulate_pipeline(&cfg).unwrap().makespan();
        cfg.cost = PipeCost::uniform(layers, 2, 0);
        let m2 = simulate_pipeline(&cfg).unwrap().makespan();
        prop_assert_eq!(m2, 2 * m1);
    }
}

/// Partial-schedule configuration for the static analyzer: backward-only
/// orders and two-stream assignments omit forwards and updates by design.
fn partial() -> VerifyConfig {
    VerifyConfig {
        require_complete: false,
        ..VerifyConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every reverse-first-k order passes every `ooo-verify` lint, for
    /// every (L, k).
    #[test]
    fn reverse_k_passes_all_lints(l in 1usize..30, k_frac in 0.0f64..=1.0) {
        let k = ((l as f64) * k_frac) as usize;
        let graph = TrainGraph::data_parallel(l);
        let order = reverse_first_k::<UnitCost>(&graph, k.min(l), None).unwrap();
        let report = Verifier::new(&graph).with_config(partial()).verify_order(&order);
        prop_assert!(report.is_clean(), "{}", report);
    }

    /// Algorithm 1's two-stream (main/sub) schedule passes every lint for
    /// any region granularity and co-run speedup.
    #[test]
    fn multi_region_schedule_passes_all_lints(
        l in 1usize..25,
        per in 1usize..6,
        speedup in 1.0f64..2.0,
    ) {
        let graph = TrainGraph::single_gpu(l);
        let (regions, subs) = backward_regions(&graph, &UnitCost, per);
        let profile = ConstantProfile { speedup, sub_time: 1 };
        let plan = multi_region_joint_schedule(&graph, &regions, &subs, &profile).unwrap();
        let report = Verifier::new(&graph)
            .with_config(partial())
            .verify(&plan.to_schedule(&regions));
        prop_assert!(report.is_clean(), "{}", report);
    }

    /// Every pipeline strategy's op-level schedule (device lanes plus the
    /// activation-gradient link lane) passes every lint, complete.
    #[test]
    fn pipeline_op_schedules_pass_all_lints(
        layers in 1usize..20,
        devices in 1usize..5,
        modulo in 1usize..3,
    ) {
        prop_assume!(devices <= layers);
        for strategy in [
            Strategy::ModelParallel,
            Strategy::GPipe,
            Strategy::PipeDream,
            Strategy::OooPipe1,
            Strategy::OooPipe2,
        ] {
            let (graph, schedule) =
                ooo_backprop::cluster::pipeline::op_level_schedule(layers, devices, strategy, modulo);
            let report = Verifier::new(&graph).verify(&schedule);
            prop_assert!(report.is_clean(), "{:?}: {}", strategy, report);
        }
    }

    /// Mutation: swapping two adjacent output gradients inverts a true
    /// dependency — flagged `OV101`, with the `OV401` ooo-legality
    /// warning riding along (dO is not weight-gradient-class).
    #[test]
    fn mutation_swapped_output_grads_flagged(l in 3usize..30) {
        let graph = TrainGraph::single_gpu(l);
        let mut order = graph.conventional_backprop();
        let pos = |ops: &[Op], op: Op| ops.iter().position(|&o| o == op).unwrap();
        let a = pos(&order, Op::OutputGrad(LayerId(l)));
        let b = pos(&order, Op::OutputGrad(LayerId(l - 1)));
        order.swap(a, b);
        let report = Verifier::new(&graph).verify_order(&order);
        prop_assert_eq!(report.rule_codes(), vec!["OV101", "OV401"]);
    }

    /// Mutation: dropping the activation-gradient transfer between two
    /// devices leaves the consumer racing the producer on the gradient
    /// buffer — flagged `OV201`; restoring the link lane is clean.
    #[test]
    fn mutation_dropped_sync_flagged(l in 2usize..20) {
        let graph = TrainGraph::pipeline_parallel(l);
        let upper: Vec<Op> = std::iter::once(Op::Loss)
            .chain((2..=l).rev().map(|i| Op::OutputGrad(LayerId(i))))
            .collect();
        let mut broken = Schedule::new();
        broken.add_lane("gpu1", upper.clone());
        broken.add_lane("gpu0", vec![Op::WeightGrad(LayerId(1))]);
        let report = Verifier::new(&graph).with_config(partial()).verify(&broken);
        prop_assert_eq!(report.rule_codes(), vec!["OV201"]);

        let mut fixed = Schedule::new();
        fixed.add_lane("gpu1", upper);
        fixed.add_lane("gpu0", vec![Op::WeightGrad(LayerId(1))]);
        fixed.add_lane(
            "link",
            (2..=l).rev().map(|i| Op::SyncOutputGrad(LayerId(i))).collect(),
        );
        let report = Verifier::new(&graph).with_config(partial()).verify(&fixed);
        prop_assert!(report.is_clean(), "{}", report);
    }

    /// Mutation: assigning one op to two lanes is a structural duplicate —
    /// flagged `OV002` before any ordering analysis runs.
    #[test]
    fn mutation_double_assignment_flagged(l in 1usize..20) {
        let graph = TrainGraph::single_gpu(l);
        let mut schedule = Schedule::new();
        schedule.add_lane("gpu0", graph.conventional_backprop());
        schedule.add_lane("gpu1", vec![Op::WeightGrad(LayerId(1))]);
        let report = Verifier::new(&graph).with_config(partial()).verify(&schedule);
        prop_assert_eq!(report.rule_codes(), vec!["OV002"]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Numeric invariance: gradients of a random MLP are bitwise equal
    /// between conventional and any reverse-first-k schedule.
    #[test]
    fn numeric_invariance_random_widths(
        hidden in 4usize..24,
        seed in 0u64..1000,
        k in 0usize..4,
    ) {
        use ooo_backprop::nn::layers::{Dense, Relu};
        use ooo_backprop::nn::data::synthetic_classification;
        use ooo_backprop::nn::Sequential;

        let mut net = Sequential::new();
        net.push(Dense::seeded(6, hidden, seed));
        net.push(Relu::new());
        net.push(Dense::seeded(hidden, 3, seed + 1));
        let graph = net.train_graph();
        let (x, y) = synthetic_classification(seed, 8, 6, 3);
        let base = net.grads_with_order(&x, &y, &graph.conventional_backprop()).unwrap();
        let order = reverse_first_k::<UnitCost>(&graph, k.min(net.len()), None).unwrap();
        let (loss, grads) = net.grads_with_order(&x, &y, &order).unwrap();
        prop_assert_eq!(loss.to_bits(), base.0.to_bits());
        for (a, b) in grads.iter().flatten().zip(base.1.iter().flatten()) {
            prop_assert_eq!(a.data(), b.data());
        }
    }
}
