//! Conformance layer for the `ooo-cert` exact certifier: across seeds
//! and all four engine shapes (single-GPU two-stream, data-parallel,
//! pipeline, hybrid), the branch-and-bound certificate must bracket the
//! tuning trajectory — `lower bound <= optimal <= tuned <= heuristic` —
//! be byte-deterministic across double runs, and exercise incremental
//! delta evaluation (which the solver cross-checks against full
//! re-evaluation at tolerance 0 on every call) on every instance.
//! Two regression seeds pin a provably-optimal and a provably-not
//! instance exactly.

use ooo_backprop::cert::{certify_order, certify_with, Budget, Certificate, Placement, Solved};
use ooo_backprop::core::cost::{CostModel, LayerCost, TableCost, UnitCost};
use ooo_backprop::core::datapar::CommPolicy;
use ooo_backprop::core::op::{LayerId, Op};
use ooo_backprop::core::pipeline::{op_level_schedule, Strategy};
use ooo_backprop::core::reverse_k::reverse_first_k;
use ooo_backprop::core::schedule::Schedule;
use ooo_backprop::core::{SimTime, TrainGraph};
use ooo_backprop::tune::order::{tune_backward_order, KFamily};
use ooo_backprop::tune::{tune_schedule, TuneOptions};
use ooo_backprop::verify::predict::{predict_makespan, DeltaEval};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_cost(l: usize, rng: &mut StdRng) -> TableCost {
    let mut cost = TableCost::uniform(l, LayerCost::default());
    for i in 1..=l {
        let c = cost.layer_mut(LayerId(i));
        c.forward = rng.gen_range(1..6);
        c.output_grad = rng.gen_range(1..6);
        c.weight_grad = rng.gen_range(1..8);
        c.update = rng.gen_range(0..2);
        c.sync_weight = rng.gen_range(1..8);
    }
    cost
}

/// The single-GPU engine's lazy two-stream shape: backward and forward
/// on the main stream, every weight gradient and update on the
/// sub-stream, in layer-descending order.
fn lazy_two_stream(l: usize) -> Schedule {
    let mut main = vec![Op::Loss];
    for i in (2..=l).rev() {
        main.push(Op::OutputGrad(LayerId(i)));
    }
    for i in 1..=l {
        main.push(Op::Forward(LayerId(i)));
    }
    let mut sub = Vec::new();
    for i in (1..=l).rev() {
        sub.push(Op::WeightGrad(LayerId(i)));
        sub.push(Op::Update(LayerId(i)));
    }
    let mut s = Schedule::new();
    s.add_lane("main", main);
    s.add_lane("sub", sub);
    s
}

/// Asserts the trajectory bracket on one certified instance and
/// returns whether the certificate is a proof of optimality.
fn assert_bracket(name: &str, heuristic: SimTime, tuned: SimTime, solved: &Solved) -> bool {
    assert!(
        solved.delta_checks >= 1,
        "{name}: delta evaluation not exercised"
    );
    let best = solved.certificate.best_makespan();
    assert!(
        solved.lower_bound <= best,
        "{name}: lower bound {} > best {best}",
        solved.lower_bound
    );
    assert!(best <= tuned, "{name}: best {best} > tuned {tuned}");
    assert!(
        tuned <= heuristic,
        "{name}: tuned {tuned} > heuristic {heuristic}"
    );
    solved.is_optimal()
}

/// Seeds 1-5 on each of the four engine shapes: every certificate
/// brackets the heuristic -> tuned -> optimal trajectory, delta
/// evaluation is exercised on every instance, and at least 10 of the
/// 20 instances are proven optimal outright.
#[test]
fn certificates_bracket_the_tuning_trajectory_across_engines() {
    let budget = Budget::default();
    let mut optimal = 0usize;
    let mut total = 0usize;

    // Single-GPU engine shape: tune the lazy two-stream schedule, then
    // certify the tuned result over all class-legal placements.
    for seed in 1u64..=5 {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(2usize..5);
        let graph = TrainGraph::single_gpu(l);
        let cost = random_cost(l, &mut rng);
        let baseline = lazy_two_stream(l);
        let heuristic = predict_makespan(&graph, &baseline, &cost)
            .unwrap()
            .makespan();
        let tuned = tune_schedule(&graph, &baseline, &cost, &TuneOptions::default()).unwrap();
        let solved =
            certify_with(&graph, &tuned.schedule, &cost, Placement::ByClass, &budget).unwrap();
        total += 1;
        if assert_bracket(
            &format!("single seed {seed}"),
            heuristic,
            tuned.predicted,
            &solved,
        ) {
            optimal += 1;
        }
    }

    // Data-parallel engine shape: tune the conventional (k=0) backward
    // order, then certify its two-lane realization.
    for seed in 1u64..=5 {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(3usize..5);
        let graph = TrainGraph::data_parallel(l);
        let cost = random_cost(l, &mut rng);
        let policy = CommPolicy::PriorityByLayer;
        let baseline = reverse_first_k(&graph, 0, None::<(u64, &TableCost)>).unwrap();
        let tuned = tune_backward_order(
            &graph,
            &baseline,
            Some(0),
            &cost,
            policy,
            KFamily::ReverseFirstK,
            &TuneOptions::default(),
        )
        .unwrap();
        let (_, solved) = certify_order(&graph, &tuned.order, &cost, policy, &budget).unwrap();
        total += 1;
        if assert_bracket(
            &format!("datapar seed {seed}"),
            tuned.baseline,
            tuned.predicted,
            &solved,
        ) {
            optimal += 1;
        }
    }

    // Pipeline engine shape: certify each strategy's op-level schedule
    // under fixed device placement (stage assignment is the strategy's).
    for (i, strategy) in [
        Strategy::GPipe,
        Strategy::PipeDream,
        Strategy::Dapple,
        Strategy::OooPipe1,
        Strategy::OooPipe2,
    ]
    .into_iter()
    .enumerate()
    {
        let l = 3 + (i % 2);
        let (graph, schedule) = op_level_schedule(l, 2, strategy, 1);
        let heuristic = predict_makespan(&graph, &schedule, &UnitCost)
            .unwrap()
            .makespan();
        let solved = certify_with(&graph, &schedule, &UnitCost, Placement::Fixed, &budget).unwrap();
        total += 1;
        if assert_bracket(
            &format!("pipeline {strategy:?}"),
            heuristic,
            solved.certificate.baseline_makespan(),
            &solved,
        ) {
            optimal += 1;
        }
    }

    // Hybrid engine shape: the predictor-optimal combined split depth's
    // backward order, certified on its data-parallel realization.
    for seed in 1u64..=5 {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(3usize..5);
        let graph = TrainGraph::data_parallel(l);
        let cost = random_cost(l, &mut rng);
        let policy = CommPolicy::PriorityByLayer;
        let k0 = ooo_backprop::core::combined::combined_backward_order(&graph, 0).unwrap();
        let heuristic =
            ooo_backprop::tune::order::certify_order(&graph, &k0, &cost, policy).unwrap();
        let (k, predicted) =
            ooo_backprop::tune::order::best_combined_k(&graph, &cost, policy).unwrap();
        let order = ooo_backprop::core::combined::combined_backward_order(&graph, k).unwrap();
        let (_, solved) = certify_order(&graph, &order, &cost, policy, &budget).unwrap();
        total += 1;
        if assert_bracket(
            &format!("hybrid seed {seed}"),
            heuristic,
            predicted,
            &solved,
        ) {
            optimal += 1;
        }
    }

    assert_eq!(total, 20);
    assert!(
        optimal >= 10,
        "only {optimal}/{total} instances certified optimal"
    );
}

/// Double runs of the certifier on the same instance return identical
/// `Solved` values — certificate, bounds, node counts, and delta
/// counters included.
#[test]
fn certification_double_runs_are_identical() {
    for seed in 1u64..=5 {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(3usize..5);
        let graph = TrainGraph::data_parallel(l);
        let cost = random_cost(l, &mut rng);
        let order = reverse_first_k(&graph, 1, None::<(u64, &TableCost)>).unwrap();
        let policy = CommPolicy::PriorityByLayer;
        let (s1, r1) = certify_order(&graph, &order, &cost, policy, &Budget::default()).unwrap();
        let (s2, r2) = certify_order(&graph, &order, &cost, policy, &Budget::default()).unwrap();
        assert_eq!(s1, s2, "seed {seed}: witness schedules differ");
        assert_eq!(r1, r2, "seed {seed}: certificates differ");
    }
}

/// Regression pin: the sync-free conventional realization is provably
/// optimal — status, makespan, bound, and node count are all exact.
#[test]
fn regression_sync_free_conventional_is_provably_optimal() {
    let graph = TrainGraph::data_parallel(3);
    let cost = TableCost::uniform(
        3,
        LayerCost {
            sync_weight: 0,
            ..LayerCost::default()
        },
    );
    let order = reverse_first_k(&graph, 0, None::<(u64, &TableCost)>).unwrap();
    let (_, solved) = certify_order(
        &graph,
        &order,
        &cost,
        CommPolicy::PriorityByLayer,
        &Budget::default(),
    )
    .unwrap();
    assert_eq!(
        solved.certificate,
        Certificate::Optimal { makespan: 8 },
        "certificate changed: {solved:?}"
    );
    assert_eq!(solved.lower_bound, 8);
    assert_eq!(solved.nodes, 0, "root shortcut regressed");
}

/// Regression pin: the eager sub-stream schedule with a heavy `dW_3` is
/// provably NOT optimal — the solver exhibits a strictly better witness
/// and proves the witness itself optimal.
#[test]
fn regression_heavy_dw_lazy_schedule_is_provably_not_optimal() {
    let graph = TrainGraph::single_gpu(3);
    let mut cost = TableCost::uniform(3, LayerCost::default());
    cost.layer_mut(LayerId(3)).weight_grad = 5;
    let mut s = Schedule::new();
    s.add_lane(
        "main",
        vec![
            Op::Loss,
            Op::OutputGrad(LayerId(3)),
            Op::OutputGrad(LayerId(2)),
            Op::Forward(LayerId(1)),
            Op::Forward(LayerId(2)),
            Op::Forward(LayerId(3)),
        ],
    );
    s.add_lane(
        "sub",
        vec![
            Op::WeightGrad(LayerId(3)),
            Op::Update(LayerId(3)),
            Op::WeightGrad(LayerId(2)),
            Op::Update(LayerId(2)),
            Op::WeightGrad(LayerId(1)),
            Op::Update(LayerId(1)),
        ],
    );
    let solved = certify_with(&graph, &s, &cost, Placement::ByClass, &Budget::default()).unwrap();
    let Certificate::Improvable {
        baseline,
        witness_makespan,
        witness_optimal,
        ref witness,
    } = solved.certificate
    else {
        panic!("expected Improvable, got {:?}", solved.certificate);
    };
    assert_eq!(baseline, 10);
    assert_eq!(witness_makespan, 7);
    assert!(witness_optimal, "witness not proven optimal");
    // The witness re-certifies as optimal on its own.
    let again = certify_with(
        &graph,
        witness,
        &cost,
        Placement::ByClass,
        &Budget::default(),
    )
    .unwrap();
    assert!(again.is_optimal(), "witness failed re-certification");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After an arbitrary sequence of legal `place`/`unplace_last`
    /// moves, the incremental evaluator's makespan equals a full
    /// from-scratch prediction of the same partial schedule — the
    /// invariant the branch-and-bound solver's bounds stand on.
    #[test]
    fn delta_equals_full_after_arbitrary_move_sequences(seed in 1u64..400, moves in 1usize..48) {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = rng.gen_range(2usize..6);
        let graph = TrainGraph::data_parallel(l);
        let cost = random_cost(l, &mut rng);
        let mut de = DeltaEval::empty(&graph, ["gpu", "sub", "link"], &cost);
        for step in 0..moves {
            if rng.gen_range(0u32..4) == 0 {
                let lane = rng.gen_range(0usize..3);
                de.unplace_last(lane);
            } else {
                let unscheduled: Vec<Op> = graph
                    .ops()
                    .iter()
                    .copied()
                    .filter(|&o| de.position_of(o).is_none())
                    .collect();
                if unscheduled.is_empty() {
                    continue;
                }
                let op = unscheduled[rng.gen_range(0..unscheduled.len())];
                let lane = rng.gen_range(0usize..3);
                // Illegal placements (would deadlock the union graph)
                // are rejected and rolled back; legal ones commit.
                let _ = de.place(lane, op);
            }
            let full = predict_makespan(&graph, &de.to_schedule(), &cost)
                .expect("incrementally built schedules always evaluate")
                .makespan();
            prop_assert_eq!(
                de.makespan(),
                full,
                "seed {} step {}: delta {} != full {}",
                seed,
                step,
                de.makespan(),
                full
            );
        }
    }
}

/// The cost model trait object is exercised with zero-duration ops too:
/// a free update never changes the certified optimum. (Keeps the
/// `CostModel` import honest.)
#[test]
fn free_updates_do_not_change_the_certified_optimum() {
    let graph = TrainGraph::single_gpu(2);
    let cost = UnitCost;
    assert_eq!(cost.duration(Op::Update(LayerId(1))), 0);
    let s = Schedule::single_lane("gpu", graph.conventional_backprop());
    let solved = certify_with(&graph, &s, &cost, Placement::ByClass, &Budget::default()).unwrap();
    assert!(solved.is_optimal());
}
