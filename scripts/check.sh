#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, and the full test suite.
# Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> ooo-chaos smoke campaign (determinism + invariants)"
cargo build -q -p ooo-faults --bin ooo-chaos
./target/debug/ooo-chaos run --seed 42 --scenarios 5 --json --out /tmp/ooo-chaos-a.json
./target/debug/ooo-chaos run --seed 42 --scenarios 5 --json --out /tmp/ooo-chaos-b.json
cmp /tmp/ooo-chaos-a.json /tmp/ooo-chaos-b.json \
  || { echo "ooo-chaos: same seed produced different reports"; exit 1; }
rm -f /tmp/ooo-chaos-a.json /tmp/ooo-chaos-b.json

echo "==> ooo-advise smoke (exit-code contract + determinism)"
cargo build -q -p ooo-verify --bin ooo-advise
rc=0; ./target/debug/ooo-advise pipeline --layers 8 --devices 2 --strategy pipe2 || rc=$?
[ "$rc" -eq 0 ] || { echo "ooo-advise: OOO-Pipe2 should be advisory-free (got $rc)"; exit 1; }
rc=0; ./target/debug/ooo-advise pipeline --layers 8 --devices 2 --strategy gpipe || rc=$?
[ "$rc" -eq 1 ] || { echo "ooo-advise: GPipe should draw OP401 (got $rc)"; exit 1; }
rc=0; ./target/debug/ooo-advise pipeline --layers 8 --devices 2 --strategy gpipe --json --out /tmp/ooo-advise-a.json || rc=$?
[ "$rc" -eq 1 ] || { echo "ooo-advise: unexpected exit $rc"; exit 1; }
rc=0; ./target/debug/ooo-advise pipeline --layers 8 --devices 2 --strategy gpipe --json --out /tmp/ooo-advise-b.json || rc=$?
[ "$rc" -eq 1 ] || { echo "ooo-advise: unexpected exit $rc"; exit 1; }
cmp /tmp/ooo-advise-a.json /tmp/ooo-advise-b.json \
  || { echo "ooo-advise: same configuration produced different reports"; exit 1; }
rm -f /tmp/ooo-advise-a.json /tmp/ooo-advise-b.json

echo "==> ooo-tune smoke (known-improvable input + determinism)"
cargo build -q -p ooo-tune --bin ooo-tune
rc=0; ./target/debug/ooo-tune order --layers 8 --k 0 --sync 3 --json --out /tmp/ooo-tune-a.json || rc=$?
[ "$rc" -eq 0 ] || { echo "ooo-tune: tuning a safe order should succeed (got $rc)"; exit 1; }
grep -q '"improved": true' /tmp/ooo-tune-a.json \
  || { echo "ooo-tune: depth-0 under sync=3 should tune strictly better"; exit 1; }
rc=0; ./target/debug/ooo-tune order --layers 8 --k 0 --sync 3 --json --out /tmp/ooo-tune-b.json || rc=$?
[ "$rc" -eq 0 ] || { echo "ooo-tune: unexpected exit $rc"; exit 1; }
cmp /tmp/ooo-tune-a.json /tmp/ooo-tune-b.json \
  || { echo "ooo-tune: same input produced different reports"; exit 1; }
rm -f /tmp/ooo-tune-a.json /tmp/ooo-tune-b.json
rc=0; ./target/debug/ooo-tune order --layers 8 --k 0 --sync 3 \
  --memory-cap 999999999 --json --out /tmp/ooo-tune-cap.json || rc=$?
[ "$rc" -eq 0 ] || { echo "ooo-tune: capped tune of a safe order should succeed (got $rc)"; exit 1; }
grep -q '"cap_met": true' /tmp/ooo-tune-cap.json \
  || { echo "ooo-tune: a generous memory cap should be reported met"; exit 1; }
rm -f /tmp/ooo-tune-cap.json

echo "==> ooo-memcheck smoke (exit-code contract + determinism)"
cargo build -q -p ooo-verify --bin ooo-memcheck
rc=0; ./target/debug/ooo-memcheck order --layers 6 --k 2 || rc=$?
[ "$rc" -eq 0 ] || { echo "ooo-memcheck: an uncapped clean order should draw no findings (got $rc)"; exit 1; }
rc=0; ./target/debug/ooo-memcheck order --layers 6 --k 2 --budget 1 --json --out /tmp/ooo-memcheck-a.json || rc=$?
[ "$rc" -eq 1 ] || { echo "ooo-memcheck: a one-byte budget should draw OM301 (got $rc)"; exit 1; }
grep -q '"OM301"' /tmp/ooo-memcheck-a.json \
  || { echo "ooo-memcheck: over-budget finding should carry rule OM301"; exit 1; }
rc=0; ./target/debug/ooo-memcheck order --layers 6 --k 2 --budget 1 --json --out /tmp/ooo-memcheck-b.json || rc=$?
[ "$rc" -eq 1 ] || { echo "ooo-memcheck: unexpected exit $rc"; exit 1; }
cmp /tmp/ooo-memcheck-a.json /tmp/ooo-memcheck-b.json \
  || { echo "ooo-memcheck: same configuration produced different reports"; exit 1; }
rm -f /tmp/ooo-memcheck-a.json /tmp/ooo-memcheck-b.json

echo "==> ooo-cert smoke (exact certification + determinism)"
cargo build -q -p ooo-cert --bin ooo-cert
rc=0; ./target/debug/ooo-cert order --layers 3 --k 0 --sync 0 --json --out /tmp/ooo-cert-a.json || rc=$?
[ "$rc" -eq 0 ] || { echo "ooo-cert: sync-free order should certify optimal (got $rc)"; exit 1; }
grep -q '"status": "optimal"' /tmp/ooo-cert-a.json \
  || { echo "ooo-cert: sync-free conventional realization should be optimal"; exit 1; }
rc=0; ./target/debug/ooo-cert order --layers 3 --k 0 --sync 2 --json --out /tmp/ooo-cert-b.json || rc=$?
[ "$rc" -eq 1 ] || { echo "ooo-cert: eager order under sync=2 should be improvable (got $rc)"; exit 1; }
rc=0; ./target/debug/ooo-cert order --layers 3 --k 0 --sync 2 --json --out /tmp/ooo-cert-c.json || rc=$?
[ "$rc" -eq 1 ] || { echo "ooo-cert: unexpected exit $rc"; exit 1; }
cmp /tmp/ooo-cert-b.json /tmp/ooo-cert-c.json \
  || { echo "ooo-cert: same instance produced different certificates"; exit 1; }
rm -f /tmp/ooo-cert-a.json /tmp/ooo-cert-b.json /tmp/ooo-cert-c.json

echo "==> scale-bench smoke (old==new differentials, byte-determinism)"
cargo build -q --release -p ooo-bench --bin scale-bench
./target/release/scale-bench --smoke --out /tmp/ooo-scale-a.json
./target/release/scale-bench --smoke --out /tmp/ooo-scale-b.json
cmp /tmp/ooo-scale-a.json /tmp/ooo-scale-b.json \
  || { echo "scale-bench: two smoke runs produced different bytes"; exit 1; }
rm -f /tmp/ooo-scale-a.json /tmp/ooo-scale-b.json

echo "==> ooo-serve smoke (oneshot contract, daemon determinism, crash recovery)"
cargo build -q -p ooo-serve --bin ooo-serve
rc=0; printf '{"id":1,"cmd":"order","layers":4,"tier":"heuristic"}\n' \
  | ./target/debug/ooo-serve --oneshot > /tmp/ooo-serve-one.json || rc=$?
[ "$rc" -eq 0 ] || { echo "ooo-serve: oneshot order should succeed (got $rc)"; exit 1; }
grep -q '"status":"ok"' /tmp/ooo-serve-one.json \
  || { echo "ooo-serve: oneshot order should answer ok"; exit 1; }
cat > /tmp/ooo-serve-req.jsonl <<'EOF'
{"id":1,"cmd":"order","layers":5,"k":1,"sync":3,"tier":"greedy"}
{"id":2,"cmd":"order","layers":5,"k":1,"sync":3,"tier":"greedy"}
{"id":3,"cmd":"cert","layers":3,"k":0,"sync":2}
{"id":4,"cmd":"pipeline","layers":4,"devices":2,"strategy":"pipe2","tier":"heuristic"}
not json at all
{"id":5,"cmd":"order","layers":4,"timeout_ms":0}
{"id":6,"cmd":"stats"}
EOF
# The daemon exits 0 whenever it serves the whole stream; per-request
# failures live in the responses (oneshot is the mode with CLI exits).
./target/debug/ooo-serve --daemon < /tmp/ooo-serve-req.jsonl > /tmp/ooo-serve-a.jsonl \
  || { echo "ooo-serve: daemon should survive hostile+timeout traffic"; exit 1; }
[ "$(wc -l < /tmp/ooo-serve-a.jsonl)" -eq 7 ] \
  || { echo "ooo-serve: expected one response per request line"; exit 1; }
grep -q '"status":"error"' /tmp/ooo-serve-a.jsonl \
  || { echo "ooo-serve: hostile line should draw a structured error"; exit 1; }
grep -q '"status":"timeout"' /tmp/ooo-serve-a.jsonl \
  || { echo "ooo-serve: expired deadline should answer timeout"; exit 1; }
./target/debug/ooo-serve --daemon < /tmp/ooo-serve-req.jsonl > /tmp/ooo-serve-b.jsonl \
  || { echo "ooo-serve: unexpected daemon failure"; exit 1; }
cmp /tmp/ooo-serve-a.jsonl /tmp/ooo-serve-b.jsonl \
  || { echo "ooo-serve: same traffic produced different response streams"; exit 1; }
cat > /tmp/ooo-serve-kill.jsonl <<'EOF'
{"id":"k1","cmd":"order","layers":3,"tier":"heuristic","fault":"kill"}
{"id":"k2","cmd":"order","layers":3,"tier":"heuristic","fault":"kill"}
{"id":"n1","cmd":"order","layers":4,"tier":"heuristic"}
{"id":"n2","cmd":"order","layers":5,"tier":"heuristic"}
EOF
rc=0; ./target/debug/ooo-serve --daemon < /tmp/ooo-serve-kill.jsonl > /tmp/ooo-serve-k.jsonl || rc=$?
[ "$rc" -eq 0 ] || { echo "ooo-serve: kill directives must not take the daemon down (got $rc)"; exit 1; }
[ "$(wc -l < /tmp/ooo-serve-k.jsonl)" -eq 4 ] \
  || { echo "ooo-serve: crash recovery lost responses"; exit 1; }
rm -f /tmp/ooo-serve-one.json /tmp/ooo-serve-req.jsonl /tmp/ooo-serve-a.jsonl \
  /tmp/ooo-serve-b.jsonl /tmp/ooo-serve-kill.jsonl /tmp/ooo-serve-k.jsonl

echo "==> serve-bench smoke (deterministic scenario counts)"
cargo build -q --release -p ooo-bench --bin serve-bench
./target/release/serve-bench --smoke --out /tmp/ooo-serve-bench-a.json
./target/release/serve-bench --smoke --out /tmp/ooo-serve-bench-b.json
cmp /tmp/ooo-serve-bench-a.json /tmp/ooo-serve-bench-b.json \
  || { echo "serve-bench: two smoke runs produced different bytes"; exit 1; }
rm -f /tmp/ooo-serve-bench-a.json /tmp/ooo-serve-bench-b.json

echo "==> mem-bench smoke (deterministic ledger peaks)"
cargo build -q --release -p ooo-bench --bin mem-bench
./target/release/mem-bench --smoke --out /tmp/ooo-mem-bench-a.json
./target/release/mem-bench --smoke --out /tmp/ooo-mem-bench-b.json
cmp /tmp/ooo-mem-bench-a.json /tmp/ooo-mem-bench-b.json \
  || { echo "mem-bench: two smoke runs produced different bytes"; exit 1; }
rm -f /tmp/ooo-mem-bench-a.json /tmp/ooo-mem-bench-b.json

echo "==> tournament-bench smoke (strategy zoo bracket, byte-determinism)"
cargo build -q --release -p ooo-bench --bin tournament-bench
./target/release/tournament-bench --smoke --out /tmp/ooo-tournament-a.json
./target/release/tournament-bench --smoke --out /tmp/ooo-tournament-b.json
cmp /tmp/ooo-tournament-a.json /tmp/ooo-tournament-b.json \
  || { echo "tournament-bench: two smoke runs produced different bytes"; exit 1; }
grep -q '"certified": false' /tmp/ooo-tournament-a.json \
  && { echo "tournament-bench: a cell failed certification"; exit 1; }
rm -f /tmp/ooo-tournament-a.json /tmp/ooo-tournament-b.json

echo "==> per-strategy ooo-advise smoke (zoo bundle through the advisor)"
./target/release/tournament-bench --bundle /tmp/ooo-zoo-bundle.json
for s in conventional fastforward reversek layerpipe twobp gradinterleaved; do
  rc=0; ./target/debug/ooo-advise bundle /tmp/ooo-zoo-bundle.json --schedule "$s" \
    > /dev/null || rc=$?
  [ "$rc" -le 1 ] || { echo "ooo-advise: strategy $s drew exit $rc"; exit 1; }
done
rm -f /tmp/ooo-zoo-bundle.json

echo "==> ooo-tune 1000-stage smoke (windowed search at scale)"
cargo build -q --release -p ooo-tune --bin ooo-tune
rc=0; ./target/release/ooo-tune pipeline --layers 1000 --devices 8 --strategy pipe2 \
  --restarts 0 --window 4 --json --out /tmp/ooo-tune-scale.json || rc=$?
[ "$rc" -eq 0 ] || { echo "ooo-tune: 1000-stage pipeline tune failed (got $rc)"; exit 1; }
rm -f /tmp/ooo-tune-scale.json

echo "All checks passed."
