#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, and the full test suite.
# Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> ooo-chaos smoke campaign (determinism + invariants)"
cargo build -q -p ooo-faults --bin ooo-chaos
./target/debug/ooo-chaos run --seed 42 --scenarios 5 --json --out /tmp/ooo-chaos-a.json
./target/debug/ooo-chaos run --seed 42 --scenarios 5 --json --out /tmp/ooo-chaos-b.json
cmp /tmp/ooo-chaos-a.json /tmp/ooo-chaos-b.json \
  || { echo "ooo-chaos: same seed produced different reports"; exit 1; }
rm -f /tmp/ooo-chaos-a.json /tmp/ooo-chaos-b.json

echo "All checks passed."
