#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, and the full test suite.
# Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "All checks passed."
