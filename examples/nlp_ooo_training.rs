//! NLP training under out-of-order schedules: a BERT-tiny (embedding +
//! transformer blocks + head) trained token-classification-style with
//! the high-level trainer, demonstrating
//!
//! 1. transformer-granularity scheduling layers (the unit the paper's
//!    modulo allocation moves between GPUs),
//! 2. bitwise-identical epoch metrics under conventional and
//!    out-of-order schedules, and
//! 3. exporting the schedules as JSON, the way the paper's artifact
//!    ships its per-model execution schedules.
//!
//! Run with: `cargo run --release --example nlp_ooo_training`

use ooo_backprop::core::export::ScheduleBundle;
use ooo_backprop::nn::composite::TransformerBlock;
use ooo_backprop::nn::data::synthetic_tokens;
use ooo_backprop::nn::layers::Dense;
use ooo_backprop::nn::nlp::Embedding;
use ooo_backprop::nn::optim::Adam;
use ooo_backprop::nn::trainer::{fit, LrSchedule, TrainerConfig};
use ooo_backprop::nn::Sequential;
use ooo_backprop::tensor::Tensor;

const VOCAB: usize = 16;
const HIDDEN: usize = 8;
const SEQ: usize = 4;
const CLASSES: usize = 4;

fn bert_tiny(seed: u64) -> Sequential {
    let mut net = Sequential::new();
    net.push(Embedding::seeded(VOCAB, HIDDEN, seed));
    net.push(TransformerBlock::seeded(HIDDEN, SEQ, seed + 1));
    net.push(TransformerBlock::seeded(HIDDEN, SEQ, seed + 2));
    net.push(Dense::seeded(HIDDEN, CLASSES, seed + 3));
    net
}

fn main() {
    // Token data: predict `token mod CLASSES` per token.
    let seqs = synthetic_tokens(3, 32, SEQ, VOCAB);
    let flat: Vec<f32> = seqs.iter().flatten().map(|&t| t as f32).collect();
    let labels: Vec<usize> = seqs.iter().flatten().map(|&t| t % CLASSES).collect();
    let x = Tensor::from_vec(flat, &[32 * SEQ, 1]).unwrap();

    let cfg = TrainerConfig {
        epochs: 6,
        batch_size: 32,
        schedule: LrSchedule::Warmup { warmup_steps: 4 },
    };

    let mut conventional = bert_tiny(7);
    let mut out_of_order = bert_tiny(7);
    let graph = conventional.train_graph();
    println!(
        "BERT-tiny: {} scheduling layers ({:?})\n",
        conventional.len(),
        conventional.layer_names()
    );

    let conv_metrics = fit(
        &mut conventional,
        &x,
        &labels,
        &graph.conventional_backprop(),
        &mut Adam::new(0.01),
        &cfg,
    )
    .unwrap();
    let ooo_metrics = fit(
        &mut out_of_order,
        &x,
        &labels,
        &graph.fast_forward_backprop(),
        &mut Adam::new(0.01),
        &cfg,
    )
    .unwrap();

    println!("epoch | conventional loss | out-of-order loss | identical?");
    for (e, (a, b)) in conv_metrics.iter().zip(&ooo_metrics).enumerate() {
        println!(
            "{e:>5} | {:>17.4} | {:>17.4} | {}",
            a.mean_loss,
            b.mean_loss,
            if a.mean_loss.to_bits() == b.mean_loss.to_bits() {
                "yes"
            } else {
                "NO"
            }
        );
        assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
    }
    println!(
        "\nfinal accuracy: {:.0}% — identical weights under both schedules: {}",
        ooo_metrics.last().unwrap().accuracy * 100.0,
        conventional.snapshot_params() == out_of_order.snapshot_params()
    );

    // Ship the schedules like the paper's artifact does.
    let mut bundle = ScheduleBundle::new("BERT-tiny", &graph);
    bundle
        .add_order("conventional", &graph, graph.conventional_backprop())
        .unwrap();
    bundle
        .add_order("fast_forward", &graph, graph.fast_forward_backprop())
        .unwrap();
    std::fs::write("bert_tiny_schedules.json", bundle.to_json().unwrap()).unwrap();
    println!("schedules exported to bert_tiny_schedules.json");
}
