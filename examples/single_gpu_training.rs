//! Single-GPU scheduling scenario (the paper's Section 8.2).
//!
//! Simulates training DenseNet-121 and MobileNetV3 on a V100 under the
//! five executor engines, prints the Figure 7-style comparison, and shows
//! the Figure 8 main-/sub-stream region schedule plus the Figure 1 issue
//! overhead anatomy.
//!
//! Run with: `cargo run --release --example single_gpu_training`

use ooo_backprop::cluster::single::{issue_analysis, run, Engine};
use ooo_backprop::models::zoo::{densenet121, mobilenet_v3_large};
use ooo_backprop::models::GpuProfile;

fn main() {
    let gpu = GpuProfile::v100();
    let engines = [
        Engine::TensorFlow,
        Engine::Xla,
        Engine::Nimble,
        Engine::OooXlaOpt1,
        Engine::OooXla,
    ];

    for (model, batch) in [(densenet121(12, 32), 32), (mobilenet_v3_large(0.5), 32)] {
        println!("=== {} (batch {batch}) on {} ===", model.name, gpu.name);
        let mut baseline = None;
        for engine in engines {
            match run(&model, batch, &gpu, engine) {
                Ok(report) => {
                    let base = *baseline.get_or_insert(report.throughput);
                    // Normalize to XLA once it is measured.
                    if engine == Engine::Xla {
                        baseline = Some(report.throughput);
                    }
                    println!(
                        "  {:>14}: {:>8.1} samples/s  ({:.2}x)  peak {:.2} GB",
                        engine.name(),
                        report.throughput,
                        report.throughput / base,
                        report.peak_mem as f64 / 1e9,
                    );
                }
                Err(e) => println!("  {:>14}: N/A ({e})", engine.name()),
            }
        }
        println!();
    }

    // Figure 1 anatomy: issue gap vs execution time per kernel for the
    // late DenseNet blocks.
    println!("=== Kernel issue overhead, DenseNet-121 block 3/4 (XLA engine) ===");
    let series = issue_analysis(&densenet121(12, 32), 32, &gpu).unwrap();
    let mut shown = 0;
    for (name, gap, exec) in &series {
        if (name.contains("block3") || name.contains("block4")) && name.contains("conv3x3") {
            if shown % 8 == 0 {
                println!(
                    "  {:<28} issue-gap {:>6.1} us   exec {:>6.1} us   ratio {:.1}",
                    name,
                    *gap as f64 / 1e3,
                    *exec as f64 / 1e3,
                    *gap as f64 / (*exec).max(1) as f64
                );
            }
            shown += 1;
        }
    }
    println!("\nLate-block kernels are issue-bound — exactly the regime pre-compiled");
    println!("issue (Opt1) and multi-stream ooo computation (Opt2) attack.");
}
