//! Quickstart: out-of-order backprop in five minutes.
//!
//! Builds a training-iteration dependency graph, shows which reorderings
//! are legal, trains a small real network under an out-of-order schedule,
//! and verifies that the loss trajectory is bitwise identical to
//! conventional backpropagation.
//!
//! Run with: `cargo run --example quickstart`

use ooo_backprop::core::cost::UnitCost;
use ooo_backprop::core::reverse_k::reverse_first_k;
use ooo_backprop::core::schedule::validate_order;
use ooo_backprop::core::TrainGraph;
use ooo_backprop::nn::data::synthetic_classification;
use ooo_backprop::nn::layers::{Dense, Relu};
use ooo_backprop::nn::optim::Momentum;
use ooo_backprop::nn::Sequential;

fn main() {
    // 1. The dependency structure of one training iteration.
    let graph = TrainGraph::single_gpu(6);
    println!("A 6-layer iteration has {} operations.", graph.len());
    println!(
        "dW_3 depends only on {:?} — nothing depends on it except its update,",
        graph
            .deps(ooo_backprop::core::Op::WeightGrad(
                ooo_backprop::core::LayerId(3)
            ))
            .unwrap()
    );
    println!("so out-of-order backprop may move it freely.\n");

    // 2. Three valid execution orders.
    let conventional = graph.conventional_backprop();
    let fast_forward = graph.fast_forward_backprop();
    let reverse_k = reverse_first_k::<UnitCost>(&graph, 3, None).unwrap();
    validate_order(&graph, &conventional).unwrap();
    validate_order(&graph, &fast_forward).unwrap();
    println!("conventional: {}", orders(&conventional));
    println!("fast-forward: {}", orders(&fast_forward));
    println!("reverse k=3 : {}\n", orders(&reverse_k));

    // 3. Real training under the out-of-order schedule: losses are
    //    bitwise identical to the conventional order.
    let mut net_a = mlp();
    let mut net_b = mlp();
    let g = net_a.train_graph();
    let (x, y) = synthetic_classification(7, 64, 8, 4);
    let mut opt_a = Momentum::new(0.05, 0.9);
    let mut opt_b = Momentum::new(0.05, 0.9);
    for step in 0..20 {
        let la = net_a
            .train_step(&x, &y, &g.conventional_backprop(), &mut opt_a)
            .unwrap();
        let lb = net_b
            .train_step(&x, &y, &g.fast_forward_backprop(), &mut opt_b)
            .unwrap();
        assert_eq!(la.to_bits(), lb.to_bits(), "schedules diverged");
        if step % 5 == 0 {
            println!("step {step:>2}: loss {la:.4} (identical under both schedules)");
        }
    }
    let (_, acc) = net_a.evaluate(&x, &y).unwrap();
    println!("\nfinal training accuracy: {:.0}%", acc * 100.0);
    println!("out-of-order backprop changed the schedule, not the semantics.");
}

fn mlp() -> Sequential {
    let mut net = Sequential::new();
    net.push(Dense::seeded(8, 32, 1));
    net.push(Relu::new());
    net.push(Dense::seeded(32, 16, 2));
    net.push(Relu::new());
    net.push(Dense::seeded(16, 4, 3));
    net
}

fn orders(ops: &[ooo_backprop::core::Op]) -> String {
    ops.iter()
        .take(12)
        .map(|o| o.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}
