//! Exports kernel-level Chrome traces of DenseNet-121 training under the
//! XLA and OOO-XLA engines, for side-by-side inspection in
//! `chrome://tracing` or https://ui.perfetto.dev — the simulated
//! equivalents of the paper's Figure 2 (issue starvation) and Figure 8
//! (main/sub-stream overlap).
//!
//! Run with: `cargo run --release --example export_trace`

use ooo_backprop::cluster::single::{run, Engine};
use ooo_backprop::gpusim::trace::to_chrome_trace;
use ooo_backprop::models::zoo::densenet121;
use ooo_backprop::models::GpuProfile;

fn main() -> std::io::Result<()> {
    let model = densenet121(12, 32);
    let gpu = GpuProfile::v100();
    for (engine, path) in [
        (Engine::Xla, "trace_xla.json"),
        (Engine::OooXla, "trace_ooo_xla.json"),
    ] {
        let report = run(&model, 32, &gpu, engine).expect("simulation");
        std::fs::write(path, to_chrome_trace(&report.trace))?;
        println!(
            "{:<8} -> {path}  ({} kernels, iteration {:.2} ms, {:.0} samples/s)",
            engine.name(),
            report.trace.records.len(),
            report.iter_ns as f64 / 1e6,
            report.throughput
        );
    }
    println!("\nOpen the files in chrome://tracing: the OOO trace shows the");
    println!("sub-stream (tid 1) filling the main stream's SM headroom.");
    Ok(())
}
