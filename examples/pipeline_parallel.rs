//! Pipeline-parallel scheduling scenario (the paper's Section 8.4).
//!
//! Reproduces the unit-time schedules of Figures 5 and 12 (with ASCII
//! Gantt charts), then runs the BERT-24 fine-tuning comparison across
//! GPipe / PipeDream / OOO-Pipe1 / OOO-Pipe2 on three interconnects —
//! including the Ethernet regime where modulo allocation must be grouped.
//!
//! Run with: `cargo run --release --example pipeline_parallel`

use ooo_backprop::cluster::pipeline::run;
use ooo_backprop::core::pipeline::{simulate_pipeline, PipelineConfig, Strategy};
use ooo_backprop::models::zoo::bert;
use ooo_backprop::models::GpuProfile;
use ooo_backprop::netsim::link::LinkSpec;

fn main() {
    println!("=== Figure 5: 8-layer network, 2 GPUs, unit-time kernels ===");
    for (label, strategy) in [
        ("conventional model parallelism", Strategy::ModelParallel),
        ("gradient fast-forwarding", Strategy::OooPipe1),
        ("+ modulo allocation", Strategy::OooPipe2),
    ] {
        let r = simulate_pipeline(&PipelineConfig::unit(8, 2, 1, strategy)).unwrap();
        println!("--- {label}: makespan {} units ---", r.makespan());
        print!("{}", r.render_ascii());
        println!();
    }

    println!("=== Figure 12: 8-layer FFNN, 4 GPUs, 2 micro-batches ===");
    for (label, strategy) in [
        ("GPipe", Strategy::GPipe),
        ("OOO-Pipe1", Strategy::OooPipe1),
        ("OOO-Pipe2", Strategy::OooPipe2),
    ] {
        let r = simulate_pipeline(&PipelineConfig::unit(8, 4, 2, strategy)).unwrap();
        println!("--- {label}: makespan {} units ---", r.makespan());
        print!("{}", r.render_ascii());
        println!();
    }

    println!("=== Figure 11b: BERT-24 fine-tuning, 4x V100, three interconnects ===");
    let model = bert(24, 128);
    let gpu = GpuProfile::v100();
    for (net_name, link, group) in [
        ("NVLink", LinkSpec::nvlink(), 1usize),
        ("PCIe 3.0", LinkSpec::pcie3(), 1),
        ("10GbE (grouped x2)", LinkSpec::ethernet_10g(), 2),
    ] {
        let gpipe = run(&model, 96, 4, &gpu, &link, 4, Strategy::GPipe, 1, 5).unwrap();
        let pd = run(&model, 96, 4, &gpu, &link, 4, Strategy::PipeDream, 1, 5).unwrap();
        let p2 = run(&model, 96, 4, &gpu, &link, 4, Strategy::OooPipe2, group, 5).unwrap();
        println!(
            "  {net_name:<18} GPipe {:>6.1}  PipeDream {:>6.1}  OOO-Pipe2 {:>6.1} seqs/s  \
             (+{:.0}% over GPipe)",
            gpipe.throughput,
            pd.throughput,
            p2.throughput,
            (p2.throughput / gpipe.throughput - 1.0) * 100.0
        );
    }
    println!("\nOn Ethernet, per-transformer modulo allocation drowns in transfers;");
    println!("grouping two transformers per allocation unit restores the win —");
    println!("the communication/overlap trade-off of the paper's Section 5.2.");
}
