//! Exports a small ResNet-50 schedule bundle — the conventional backward
//! order plus a reverse first-k order — as validated JSON, ready for
//! `ooo-lint`:
//!
//! ```text
//! cargo run --release --example export_bundle
//! cargo run --release -p ooo-verify --bin ooo-lint -- bundle_resnet50.json --partial
//! ```

use ooo_backprop::core::cost::UnitCost;
use ooo_backprop::core::export::ScheduleBundle;
use ooo_backprop::core::reverse_k::reverse_first_k;
use ooo_backprop::core::TrainGraph;
use ooo_backprop::models::zoo::resnet;

fn main() -> std::io::Result<()> {
    let model = resnet(50);
    let graph = TrainGraph::data_parallel(model.num_layers());
    let mut bundle = ScheduleBundle::new(&model.name, &graph);
    bundle
        .add_order("conventional", &graph, graph.conventional_backprop())
        .expect("conventional order validates");
    let k = 10;
    bundle
        .add_order(
            &format!("reverse_first_{k}"),
            &graph,
            reverse_first_k::<UnitCost>(&graph, k, None).expect("reverse first-k order"),
        )
        .expect("reverse first-k order validates");
    let path = "bundle_resnet50.json";
    std::fs::write(path, bundle.to_json().expect("serialization"))?;
    println!(
        "{path}: {} layers, {} orders",
        model.num_layers(),
        bundle.orders.len()
    );
    Ok(())
}
