//! Data-parallel scheduling scenario (the paper's Section 8.3).
//!
//! Part 1 simulates ResNet-50/101 on the paper's three clusters under
//! Horovod, BytePS, and OOO-BytePS (reverse first-k with the concave
//! k-search) — the Figure 10 sweep at a few representative points.
//!
//! Part 2 runs *real numeric* data-parallel training on CPU threads where
//! every worker uses a different valid backward order, demonstrating that
//! the distributed semantics are untouched by the reordering.
//!
//! Run with: `cargo run --release --example data_parallel`

use ooo_backprop::cluster::datapar::{run, CommSystem};
use ooo_backprop::models::zoo::resnet;
use ooo_backprop::models::GpuProfile;
use ooo_backprop::netsim::topology::ClusterTopology;
use ooo_backprop::nn::data::{shard, synthetic_classification};
use ooo_backprop::nn::layers::{Dense, Relu};
use ooo_backprop::nn::optim::Sgd;
use ooo_backprop::nn::parallel::data_parallel_step;
use ooo_backprop::nn::Sequential;

fn main() {
    println!("=== Simulated throughput: ResNet-50, Pub-A cluster (V100, NVLink + 10GbE) ===");
    let model = resnet(50);
    let gpu = GpuProfile::v100();
    let topo = ClusterTopology::pub_a();
    for gpus in [4usize, 8, 16, 32, 48] {
        let h = run(&model, 128, &gpu, &topo, gpus, CommSystem::Horovod).unwrap();
        let b = run(&model, 128, &gpu, &topo, gpus, CommSystem::BytePS).unwrap();
        let o = run(&model, 128, &gpu, &topo, gpus, CommSystem::OooBytePS).unwrap();
        println!(
            "  {gpus:>2} GPUs: Horovod {:>8.0}  BytePS {:>8.0}  OOO-BytePS {:>8.0} samples/s  \
             (k = {:>3}, +{:.1}% over BytePS)",
            h.throughput,
            b.throughput,
            o.throughput,
            o.k,
            (o.throughput / b.throughput - 1.0) * 100.0
        );
    }

    println!("\n=== Numeric data-parallel training: 4 workers, 4 different schedules ===");
    let mut net = Sequential::new();
    net.push(Dense::seeded(10, 48, 5));
    net.push(Relu::new());
    net.push(Dense::seeded(48, 24, 6));
    net.push(Relu::new());
    net.push(Dense::seeded(24, 5, 7));
    let graph = net.train_graph();
    let (x, y) = synthetic_classification(99, 128, 10, 5);
    let shards = shard(&x, &y, 4);
    // Worker 0: conventional; workers 1-3: reverse first-k with k = 1..3.
    let orders: Vec<_> = (0..4)
        .map(|k| {
            ooo_backprop::core::reverse_k::reverse_first_k::<ooo_backprop::core::cost::UnitCost>(
                &graph, k, None,
            )
            .unwrap()
        })
        .collect();
    let mut opt = Sgd::new(0.1);
    let mut last = f32::NAN;
    for step in 0..30 {
        last = data_parallel_step(&mut net, &shards, &orders, &mut opt).unwrap();
        if step % 10 == 0 {
            println!("  step {step:>2}: mean worker loss {last:.4}");
        }
    }
    let (_, acc) = net.evaluate(&x, &y).unwrap();
    println!("  final loss {last:.4}, accuracy {:.0}%", acc * 100.0);
    println!("  (gradient averaging is order-independent: any valid per-worker");
    println!("   schedule produces the same global update)");
}
