//! # ooo-backprop — Out-Of-Order BackProp, reproduced in Rust
//!
//! A workspace-level facade over the crates implementing *"Out-Of-Order
//! BackProp: An Effective Scheduling Technique for Deep Learning"*
//! (EuroSys '22):
//!
//! - [`core`] (`ooo-core`) — the paper's contribution: training-iteration
//!   dependency graphs, out-of-order backprop, and the three scheduling
//!   algorithms (multi-region joint scheduling, reverse first-k, gradient
//!   fast-forwarding + modulo allocation).
//! - [`tensor`] (`ooo-tensor`) and [`nn`] (`ooo-nn`) — a real CPU
//!   training stack whose backward kernels are split per layer, proving
//!   numerically that any valid schedule yields bitwise-identical
//!   training.
//! - [`gpusim`] (`ooo-gpusim`) — a discrete-event GPU with SM occupancy,
//!   prioritized streams, kernel issue overheads, and CUDA-Graph launch.
//! - [`netsim`] (`ooo-netsim`) — interconnects, topologies, and
//!   chunk-preemptive priority communication.
//! - [`models`] (`ooo-models`) — the twelve evaluated networks with cost
//!   profiles.
//! - [`cluster`] (`ooo-cluster`) — the single-GPU, data-parallel, and
//!   pipeline-parallel experiment engines.
//! - [`verify`] (`ooo-verify`) — the static schedule-safety analyzer
//!   (happens-before, race, deadlock, memory-liveness, and ooo-legality
//!   lints) and the `ooo-lint` CLI.
//! - [`tune`] (`ooo-tune`) — the predictor-guided schedule autotuner:
//!   local search over ooo-legal moves, gated by the verifier, scored by
//!   the exact makespan predictor, certified by simulation.
//! - [`cert`] (`ooo-cert`) — exact optimality certification: a
//!   branch-and-bound solver over the union graph, driven by incremental
//!   delta evaluation, that proves schedules optimal (or exhibits a
//!   strictly better witness).
//! - [`serve`] (`ooo-serve`) — a fault-tolerant scheduling daemon over
//!   the tuner and certifier: bounded queues with backpressure,
//!   panic-isolated workers with retry and respawn, per-request
//!   deadlines, tiered graceful degradation, and a content-addressed
//!   schedule cache — all byte-deterministic at the stream level.
//!
//! # Quickstart
//!
//! ```
//! use ooo_backprop::core::TrainGraph;
//! use ooo_backprop::core::schedule::validate_order;
//!
//! let graph = TrainGraph::single_gpu(8);
//! // Out-of-order backprop: the fast-forwarded order is a valid
//! // linearization of the true dependencies.
//! validate_order(&graph, &graph.fast_forward_backprop()).unwrap();
//! ```

#![warn(missing_docs)]

pub use ooo_cert as cert;
pub use ooo_cluster as cluster;
pub use ooo_core as core;
pub use ooo_gpusim as gpusim;
pub use ooo_models as models;
pub use ooo_netsim as netsim;
pub use ooo_nn as nn;
pub use ooo_serve as serve;
pub use ooo_tensor as tensor;
pub use ooo_tune as tune;
pub use ooo_verify as verify;
