//! Value-generation strategies: ranges, tuples, `prop_map`, and `Just`.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// Generates random values of an output type from an RNG.
///
/// Unlike real proptest there is no shrinking; `generate` draws one
/// value per test case.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Strategy producing `f(value)` for each drawn `value`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Strategy that re-draws until `f(value)` holds (bounded retries).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter: no accepted value in 1000 draws ({})",
            self.reason
        );
    }
}

/// Strategy producing a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for core::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
