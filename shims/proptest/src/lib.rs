//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a small, deterministic property-testing harness behind the
//! subset of the proptest 1.x API it uses: the [`proptest!`] macro,
//! [`strategy::Strategy`] with ranges / tuples / `collection::vec` /
//! `prop_map`, and the `prop_assert!` / `prop_assert_eq!` /
//! [`prop_assume!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! - inputs are drawn from a seeded RNG (seed derived from the test
//!   name), so every run exercises the same cases — failures are always
//!   reproducible;
//! - no shrinking: the failing input values are printed as drawn.

#![warn(missing_docs)]

pub mod strategy;

/// Test-runner plumbing used by the [`proptest!`] macro.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the input out; the case is skipped.
        Reject(String),
        /// A `prop_assert!` failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection with the given message.
        pub fn reject<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// A single test's driver: hands out per-case RNGs.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        seed: u64,
    }

    impl TestRunner {
        /// Builds a runner for the named test.
        pub fn new(config: ProptestConfig, test_name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and rustc
            // versions, unlike `DefaultHasher`.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner { config, seed }
        }

        /// Number of cases to attempt.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// Deterministic RNG for case number `case`.
        pub fn rng(&self, case: u32) -> StdRng {
            StdRng::seed_from_u64(self.seed ^ ((case as u64) << 32 | 0x5bd1_e995))
        }
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Number-of-elements specification: a fixed count or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "collection::vec: empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element drawn from `element`, length drawn
    /// from `size` (a `usize` or a `usize` range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; runs each over many deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])+
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let runner =
                $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            let mut rejected = 0u32;
            for case in 0..runner.cases() {
                let mut rng = runner.rng(case);
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                #[allow(unreachable_code)]
                let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            case + 1,
                            runner.cases(),
                            msg
                        );
                    }
                }
            }
            assert!(
                rejected < runner.cases(),
                "proptest: every case was rejected by prop_assume!"
            );
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// `assert!` that fails the enclosing proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that fails the enclosing proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// `assert_ne!` that fails the enclosing proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_draw_in_bounds(x in 3usize..9, y in -1.0f64..=1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&y));
        }

        #[test]
        fn vec_and_map_compose(
            v in crate::collection::vec((1u32..5, 0u64..10), 2..6)
                .prop_map(|pairs| pairs.into_iter().map(|(a, b)| a as u64 + b).collect::<Vec<_>>()),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v {
                prop_assert!(*x >= 1 && *x < 15, "out of bounds: {}", x);
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn early_return_ok_is_accepted(n in 0u32..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert!(n < 10);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        use crate::strategy::Strategy;
        let runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(4), "det");
        let a: Vec<u64> = (0..4)
            .map(|c| (0u64..1000).generate(&mut runner.rng(c)))
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| (0u64..1000).generate(&mut runner.rng(c)))
            .collect();
        assert_eq!(a, b);
    }
}
