//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a tiny wall-clock benchmark harness behind the subset of the
//! criterion 0.5 API its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple — a warm-up pass, then a fixed
//! number of timed samples reported as min/mean. Good enough to compare
//! scheduling algorithms locally; not a replacement for criterion's
//! rigorous analysis.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration timer handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, once per sample, after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
                        // Aim for enough iterations that timer resolution is irrelevant
                        // while keeping total time per benchmark bounded.
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 1000);
        for _ in 0..self.sample_count() {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
        }
    }

    fn sample_count(&self) -> u32 {
        10
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let sum: Duration = self.samples.iter().sum();
        let mean = sum / self.samples.len() as u32;
        println!("{name:<50} min {min:>12.3?}   mean {mean:>12.3?}");
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Driver honouring a substring filter from the command line
    /// (`cargo bench -- <filter>`).
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }

    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs a single named benchmark.
    pub fn bench_function<S, F>(&mut self, name: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        if self.enabled(&name) {
            run_one(&name, f);
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    b.report(name);
}

/// A group of benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (accepted, ignored: the shim
    /// uses a fixed small count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<S, F>(&mut self, name: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        if self.criterion.enabled(&full) {
            run_one(&full, f);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark entry point named `$group` running each
/// function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(10);
        group.bench_function("sq", |b| b.iter(|| black_box(7u64) * black_box(7u64)));
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sum_bench(&mut c);
    }
}
