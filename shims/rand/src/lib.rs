//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal, deterministic implementation of the subset of the
//! `rand` 0.8 API it actually uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`], [`rngs::StdRng`],
//! [`distributions::Uniform`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded via SplitMix64 — high-quality,
//! fast, and fully reproducible, which is all the workspace needs (the
//! schedule-equivalence tests require *reproducibility*, not any
//! particular stream).

#![warn(missing_docs)]

/// Low-level entropy source: a single `u64` per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS "entropy". Offline stand-in: a
    /// fixed seed, keeping every run reproducible.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x853c_49e6_748f_ea9b)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.gen::<f64>()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable without parameters (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform distribution over a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                low + (high - low) * unit
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                low + (high - low) * unit as $t
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's
    /// ChaCha-based `StdRng`; same API, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the "small" generator shares the implementation here.
    pub type SmallRng = StdRng;
}

/// Distribution objects (`Uniform`) and the `Distribution` trait.
pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a range, pre-constructed.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
        inclusive: bool,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new: empty range");
            Uniform {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            assert!(low <= high, "Uniform::new_inclusive: empty range");
            Uniform {
                low,
                high,
                inclusive: true,
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            let mut r = rng;
            if self.inclusive {
                T::sample_inclusive(&mut r, self.low, self.high)
            } else {
                T::sample_half_open(&mut r, self.low, self.high)
            }
        }
    }
}

/// Sequence helpers (`shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::Uniform;
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&y));
        }
        let dist = Uniform::new_inclusive(-0.5f32, 0.5);
        for _ in 0..1000 {
            let z = dist.sample(&mut rng);
            assert!((-0.5..=0.5).contains(&z));
        }
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = Uniform::new(0usize, 17);
        for _ in 0..1000 {
            assert!(dist.sample(&mut rng) < 17);
            let v = rng.gen_range(3u64..9);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
