/root/repo/target/release/deps/ooo_verify-97af4f66fc8994cc.d: crates/verify/src/lib.rs crates/verify/src/access.rs crates/verify/src/hb.rs

/root/repo/target/release/deps/libooo_verify-97af4f66fc8994cc.rlib: crates/verify/src/lib.rs crates/verify/src/access.rs crates/verify/src/hb.rs

/root/repo/target/release/deps/libooo_verify-97af4f66fc8994cc.rmeta: crates/verify/src/lib.rs crates/verify/src/access.rs crates/verify/src/hb.rs

crates/verify/src/lib.rs:
crates/verify/src/access.rs:
crates/verify/src/hb.rs:
