/root/repo/target/release/deps/ooo_tensor-1cde57546accdb6a.d: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libooo_tensor-1cde57546accdb6a.rlib: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libooo_tensor-1cde57546accdb6a.rmeta: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/error.rs:
crates/tensor/src/init.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
