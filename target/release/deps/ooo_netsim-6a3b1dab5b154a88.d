/root/repo/target/release/deps/ooo_netsim-6a3b1dab5b154a88.d: crates/netsim/src/lib.rs crates/netsim/src/collective.rs crates/netsim/src/commsim.rs crates/netsim/src/flows.rs crates/netsim/src/link.rs crates/netsim/src/topology.rs

/root/repo/target/release/deps/libooo_netsim-6a3b1dab5b154a88.rlib: crates/netsim/src/lib.rs crates/netsim/src/collective.rs crates/netsim/src/commsim.rs crates/netsim/src/flows.rs crates/netsim/src/link.rs crates/netsim/src/topology.rs

/root/repo/target/release/deps/libooo_netsim-6a3b1dab5b154a88.rmeta: crates/netsim/src/lib.rs crates/netsim/src/collective.rs crates/netsim/src/commsim.rs crates/netsim/src/flows.rs crates/netsim/src/link.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/collective.rs:
crates/netsim/src/commsim.rs:
crates/netsim/src/flows.rs:
crates/netsim/src/link.rs:
crates/netsim/src/topology.rs:
