/root/repo/target/release/deps/ooo_nn-576ffc2f91f9e82d.d: crates/nn/src/lib.rs crates/nn/src/composite.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/layers.rs crates/nn/src/metrics.rs crates/nn/src/network.rs crates/nn/src/nlp.rs crates/nn/src/optim.rs crates/nn/src/parallel.rs crates/nn/src/trainer.rs

/root/repo/target/release/deps/libooo_nn-576ffc2f91f9e82d.rlib: crates/nn/src/lib.rs crates/nn/src/composite.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/layers.rs crates/nn/src/metrics.rs crates/nn/src/network.rs crates/nn/src/nlp.rs crates/nn/src/optim.rs crates/nn/src/parallel.rs crates/nn/src/trainer.rs

/root/repo/target/release/deps/libooo_nn-576ffc2f91f9e82d.rmeta: crates/nn/src/lib.rs crates/nn/src/composite.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/layers.rs crates/nn/src/metrics.rs crates/nn/src/network.rs crates/nn/src/nlp.rs crates/nn/src/optim.rs crates/nn/src/parallel.rs crates/nn/src/trainer.rs

crates/nn/src/lib.rs:
crates/nn/src/composite.rs:
crates/nn/src/data.rs:
crates/nn/src/error.rs:
crates/nn/src/layers.rs:
crates/nn/src/metrics.rs:
crates/nn/src/network.rs:
crates/nn/src/nlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/parallel.rs:
crates/nn/src/trainer.rs:
