/root/repo/target/release/deps/ooo_models-647797ae8b396ca7.d: crates/models/src/lib.rs crates/models/src/cost.rs crates/models/src/gpu.rs crates/models/src/spec.rs crates/models/src/zoo.rs

/root/repo/target/release/deps/libooo_models-647797ae8b396ca7.rlib: crates/models/src/lib.rs crates/models/src/cost.rs crates/models/src/gpu.rs crates/models/src/spec.rs crates/models/src/zoo.rs

/root/repo/target/release/deps/libooo_models-647797ae8b396ca7.rmeta: crates/models/src/lib.rs crates/models/src/cost.rs crates/models/src/gpu.rs crates/models/src/spec.rs crates/models/src/zoo.rs

crates/models/src/lib.rs:
crates/models/src/cost.rs:
crates/models/src/gpu.rs:
crates/models/src/spec.rs:
crates/models/src/zoo.rs:
