/root/repo/target/release/deps/ooo_cluster-c946fa0657ab58e8.d: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/checks.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs

/root/repo/target/release/deps/libooo_cluster-c946fa0657ab58e8.rlib: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/checks.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs

/root/repo/target/release/deps/libooo_cluster-c946fa0657ab58e8.rmeta: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/checks.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs

crates/cluster/src/lib.rs:
crates/cluster/src/ablation.rs:
crates/cluster/src/analysis.rs:
crates/cluster/src/checks.rs:
crates/cluster/src/datapar.rs:
crates/cluster/src/hybrid.rs:
crates/cluster/src/pipeline.rs:
crates/cluster/src/single.rs:
