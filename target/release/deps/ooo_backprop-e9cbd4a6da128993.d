/root/repo/target/release/deps/ooo_backprop-e9cbd4a6da128993.d: src/lib.rs

/root/repo/target/release/deps/libooo_backprop-e9cbd4a6da128993.rlib: src/lib.rs

/root/repo/target/release/deps/libooo_backprop-e9cbd4a6da128993.rmeta: src/lib.rs

src/lib.rs:
