/root/repo/target/release/deps/ooo_gpusim-73a0102b51b0cfe7.d: crates/gpusim/src/lib.rs crates/gpusim/src/engine.rs crates/gpusim/src/kernel.rs crates/gpusim/src/spec.rs crates/gpusim/src/trace.rs

/root/repo/target/release/deps/libooo_gpusim-73a0102b51b0cfe7.rlib: crates/gpusim/src/lib.rs crates/gpusim/src/engine.rs crates/gpusim/src/kernel.rs crates/gpusim/src/spec.rs crates/gpusim/src/trace.rs

/root/repo/target/release/deps/libooo_gpusim-73a0102b51b0cfe7.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/engine.rs crates/gpusim/src/kernel.rs crates/gpusim/src/spec.rs crates/gpusim/src/trace.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/engine.rs:
crates/gpusim/src/kernel.rs:
crates/gpusim/src/spec.rs:
crates/gpusim/src/trace.rs:
