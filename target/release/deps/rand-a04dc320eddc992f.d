/root/repo/target/release/deps/rand-a04dc320eddc992f.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-a04dc320eddc992f.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-a04dc320eddc992f.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
