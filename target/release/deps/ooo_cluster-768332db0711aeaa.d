/root/repo/target/release/deps/ooo_cluster-768332db0711aeaa.d: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/checks.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs

/root/repo/target/release/deps/libooo_cluster-768332db0711aeaa.rlib: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/checks.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs

/root/repo/target/release/deps/libooo_cluster-768332db0711aeaa.rmeta: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/checks.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs

crates/cluster/src/lib.rs:
crates/cluster/src/ablation.rs:
crates/cluster/src/analysis.rs:
crates/cluster/src/checks.rs:
crates/cluster/src/datapar.rs:
crates/cluster/src/hybrid.rs:
crates/cluster/src/pipeline.rs:
crates/cluster/src/single.rs:
