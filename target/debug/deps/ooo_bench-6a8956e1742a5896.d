/root/repo/target/debug/deps/ooo_bench-6a8956e1742a5896.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libooo_bench-6a8956e1742a5896.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libooo_bench-6a8956e1742a5896.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
