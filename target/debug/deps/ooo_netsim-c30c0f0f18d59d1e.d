/root/repo/target/debug/deps/ooo_netsim-c30c0f0f18d59d1e.d: crates/netsim/src/lib.rs crates/netsim/src/collective.rs crates/netsim/src/commsim.rs crates/netsim/src/flows.rs crates/netsim/src/link.rs crates/netsim/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libooo_netsim-c30c0f0f18d59d1e.rmeta: crates/netsim/src/lib.rs crates/netsim/src/collective.rs crates/netsim/src/commsim.rs crates/netsim/src/flows.rs crates/netsim/src/link.rs crates/netsim/src/topology.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/collective.rs:
crates/netsim/src/commsim.rs:
crates/netsim/src/flows.rs:
crates/netsim/src/link.rs:
crates/netsim/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
