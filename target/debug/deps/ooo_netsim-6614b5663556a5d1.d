/root/repo/target/debug/deps/ooo_netsim-6614b5663556a5d1.d: crates/netsim/src/lib.rs crates/netsim/src/collective.rs crates/netsim/src/commsim.rs crates/netsim/src/flows.rs crates/netsim/src/link.rs crates/netsim/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libooo_netsim-6614b5663556a5d1.rmeta: crates/netsim/src/lib.rs crates/netsim/src/collective.rs crates/netsim/src/commsim.rs crates/netsim/src/flows.rs crates/netsim/src/link.rs crates/netsim/src/topology.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/collective.rs:
crates/netsim/src/commsim.rs:
crates/netsim/src/flows.rs:
crates/netsim/src/link.rs:
crates/netsim/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
