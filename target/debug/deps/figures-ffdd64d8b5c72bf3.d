/root/repo/target/debug/deps/figures-ffdd64d8b5c72bf3.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-ffdd64d8b5c72bf3.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
