/root/repo/target/debug/deps/ooo_lint-eb11512f5b057179.d: crates/verify/src/bin/ooo-lint.rs

/root/repo/target/debug/deps/ooo_lint-eb11512f5b057179: crates/verify/src/bin/ooo-lint.rs

crates/verify/src/bin/ooo-lint.rs:
