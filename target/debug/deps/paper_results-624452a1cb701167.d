/root/repo/target/debug/deps/paper_results-624452a1cb701167.d: tests/paper_results.rs

/root/repo/target/debug/deps/paper_results-624452a1cb701167: tests/paper_results.rs

tests/paper_results.rs:
