/root/repo/target/debug/deps/ooo_lint-af2c52ba9e89935e.d: crates/verify/src/bin/ooo-lint.rs

/root/repo/target/debug/deps/ooo_lint-af2c52ba9e89935e: crates/verify/src/bin/ooo-lint.rs

crates/verify/src/bin/ooo-lint.rs:
