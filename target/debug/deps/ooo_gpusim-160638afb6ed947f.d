/root/repo/target/debug/deps/ooo_gpusim-160638afb6ed947f.d: crates/gpusim/src/lib.rs crates/gpusim/src/engine.rs crates/gpusim/src/kernel.rs crates/gpusim/src/spec.rs crates/gpusim/src/trace.rs

/root/repo/target/debug/deps/ooo_gpusim-160638afb6ed947f: crates/gpusim/src/lib.rs crates/gpusim/src/engine.rs crates/gpusim/src/kernel.rs crates/gpusim/src/spec.rs crates/gpusim/src/trace.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/engine.rs:
crates/gpusim/src/kernel.rs:
crates/gpusim/src/spec.rs:
crates/gpusim/src/trace.rs:
