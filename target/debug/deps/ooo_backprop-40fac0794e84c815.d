/root/repo/target/debug/deps/ooo_backprop-40fac0794e84c815.d: src/lib.rs

/root/repo/target/debug/deps/libooo_backprop-40fac0794e84c815.rlib: src/lib.rs

/root/repo/target/debug/deps/libooo_backprop-40fac0794e84c815.rmeta: src/lib.rs

src/lib.rs:
