/root/repo/target/debug/deps/ooo_core-c067472f8c19908e.d: crates/core/src/lib.rs crates/core/src/bounds.rs crates/core/src/combined.rs crates/core/src/cost.rs crates/core/src/datapar.rs crates/core/src/error.rs crates/core/src/export.rs crates/core/src/graph.rs crates/core/src/heft.rs crates/core/src/json.rs crates/core/src/list_scheduling.rs crates/core/src/memory.rs crates/core/src/multi_region.rs crates/core/src/op.rs crates/core/src/pipeline.rs crates/core/src/recompute.rs crates/core/src/reverse_k.rs crates/core/src/schedule.rs

/root/repo/target/debug/deps/ooo_core-c067472f8c19908e: crates/core/src/lib.rs crates/core/src/bounds.rs crates/core/src/combined.rs crates/core/src/cost.rs crates/core/src/datapar.rs crates/core/src/error.rs crates/core/src/export.rs crates/core/src/graph.rs crates/core/src/heft.rs crates/core/src/json.rs crates/core/src/list_scheduling.rs crates/core/src/memory.rs crates/core/src/multi_region.rs crates/core/src/op.rs crates/core/src/pipeline.rs crates/core/src/recompute.rs crates/core/src/reverse_k.rs crates/core/src/schedule.rs

crates/core/src/lib.rs:
crates/core/src/bounds.rs:
crates/core/src/combined.rs:
crates/core/src/cost.rs:
crates/core/src/datapar.rs:
crates/core/src/error.rs:
crates/core/src/export.rs:
crates/core/src/graph.rs:
crates/core/src/heft.rs:
crates/core/src/json.rs:
crates/core/src/list_scheduling.rs:
crates/core/src/memory.rs:
crates/core/src/multi_region.rs:
crates/core/src/op.rs:
crates/core/src/pipeline.rs:
crates/core/src/recompute.rs:
crates/core/src/reverse_k.rs:
crates/core/src/schedule.rs:
