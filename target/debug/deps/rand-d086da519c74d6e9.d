/root/repo/target/debug/deps/rand-d086da519c74d6e9.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-d086da519c74d6e9.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
