/root/repo/target/debug/deps/ooo_core-0a9230d5c1d39249.d: crates/core/src/lib.rs crates/core/src/bounds.rs crates/core/src/combined.rs crates/core/src/cost.rs crates/core/src/datapar.rs crates/core/src/error.rs crates/core/src/export.rs crates/core/src/graph.rs crates/core/src/heft.rs crates/core/src/json.rs crates/core/src/list_scheduling.rs crates/core/src/memory.rs crates/core/src/multi_region.rs crates/core/src/op.rs crates/core/src/pipeline.rs crates/core/src/recompute.rs crates/core/src/reverse_k.rs crates/core/src/schedule.rs Cargo.toml

/root/repo/target/debug/deps/libooo_core-0a9230d5c1d39249.rmeta: crates/core/src/lib.rs crates/core/src/bounds.rs crates/core/src/combined.rs crates/core/src/cost.rs crates/core/src/datapar.rs crates/core/src/error.rs crates/core/src/export.rs crates/core/src/graph.rs crates/core/src/heft.rs crates/core/src/json.rs crates/core/src/list_scheduling.rs crates/core/src/memory.rs crates/core/src/multi_region.rs crates/core/src/op.rs crates/core/src/pipeline.rs crates/core/src/recompute.rs crates/core/src/reverse_k.rs crates/core/src/schedule.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bounds.rs:
crates/core/src/combined.rs:
crates/core/src/cost.rs:
crates/core/src/datapar.rs:
crates/core/src/error.rs:
crates/core/src/export.rs:
crates/core/src/graph.rs:
crates/core/src/heft.rs:
crates/core/src/json.rs:
crates/core/src/list_scheduling.rs:
crates/core/src/memory.rs:
crates/core/src/multi_region.rs:
crates/core/src/op.rs:
crates/core/src/pipeline.rs:
crates/core/src/recompute.rs:
crates/core/src/reverse_k.rs:
crates/core/src/schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
