/root/repo/target/debug/deps/ooo_backprop-4d0f5cd68dc50b5f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libooo_backprop-4d0f5cd68dc50b5f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
