/root/repo/target/debug/deps/ooo_gpusim-e9bbe674d52f66df.d: crates/gpusim/src/lib.rs crates/gpusim/src/engine.rs crates/gpusim/src/kernel.rs crates/gpusim/src/spec.rs crates/gpusim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libooo_gpusim-e9bbe674d52f66df.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/engine.rs crates/gpusim/src/kernel.rs crates/gpusim/src/spec.rs crates/gpusim/src/trace.rs Cargo.toml

crates/gpusim/src/lib.rs:
crates/gpusim/src/engine.rs:
crates/gpusim/src/kernel.rs:
crates/gpusim/src/spec.rs:
crates/gpusim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
