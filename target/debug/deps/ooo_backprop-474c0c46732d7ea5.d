/root/repo/target/debug/deps/ooo_backprop-474c0c46732d7ea5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libooo_backprop-474c0c46732d7ea5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
