/root/repo/target/debug/deps/ooo_bench-2b90496ef38d5594.d: crates/bench/src/lib.rs crates/bench/src/figures.rs Cargo.toml

/root/repo/target/debug/deps/libooo_bench-2b90496ef38d5594.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
