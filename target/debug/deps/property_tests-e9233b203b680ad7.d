/root/repo/target/debug/deps/property_tests-e9233b203b680ad7.d: tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-e9233b203b680ad7: tests/property_tests.rs

tests/property_tests.rs:
