/root/repo/target/debug/deps/ooo_nn-a34a9d5f105bdcb2.d: crates/nn/src/lib.rs crates/nn/src/composite.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/layers.rs crates/nn/src/metrics.rs crates/nn/src/network.rs crates/nn/src/nlp.rs crates/nn/src/optim.rs crates/nn/src/parallel.rs crates/nn/src/trainer.rs

/root/repo/target/debug/deps/libooo_nn-a34a9d5f105bdcb2.rlib: crates/nn/src/lib.rs crates/nn/src/composite.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/layers.rs crates/nn/src/metrics.rs crates/nn/src/network.rs crates/nn/src/nlp.rs crates/nn/src/optim.rs crates/nn/src/parallel.rs crates/nn/src/trainer.rs

/root/repo/target/debug/deps/libooo_nn-a34a9d5f105bdcb2.rmeta: crates/nn/src/lib.rs crates/nn/src/composite.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/layers.rs crates/nn/src/metrics.rs crates/nn/src/network.rs crates/nn/src/nlp.rs crates/nn/src/optim.rs crates/nn/src/parallel.rs crates/nn/src/trainer.rs

crates/nn/src/lib.rs:
crates/nn/src/composite.rs:
crates/nn/src/data.rs:
crates/nn/src/error.rs:
crates/nn/src/layers.rs:
crates/nn/src/metrics.rs:
crates/nn/src/network.rs:
crates/nn/src/nlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/parallel.rs:
crates/nn/src/trainer.rs:
