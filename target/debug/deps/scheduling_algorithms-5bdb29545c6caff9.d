/root/repo/target/debug/deps/scheduling_algorithms-5bdb29545c6caff9.d: crates/bench/benches/scheduling_algorithms.rs Cargo.toml

/root/repo/target/debug/deps/libscheduling_algorithms-5bdb29545c6caff9.rmeta: crates/bench/benches/scheduling_algorithms.rs Cargo.toml

crates/bench/benches/scheduling_algorithms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
