/root/repo/target/debug/deps/ooo_gpusim-ffffb5e225882e84.d: crates/gpusim/src/lib.rs crates/gpusim/src/engine.rs crates/gpusim/src/kernel.rs crates/gpusim/src/spec.rs crates/gpusim/src/trace.rs

/root/repo/target/debug/deps/libooo_gpusim-ffffb5e225882e84.rlib: crates/gpusim/src/lib.rs crates/gpusim/src/engine.rs crates/gpusim/src/kernel.rs crates/gpusim/src/spec.rs crates/gpusim/src/trace.rs

/root/repo/target/debug/deps/libooo_gpusim-ffffb5e225882e84.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/engine.rs crates/gpusim/src/kernel.rs crates/gpusim/src/spec.rs crates/gpusim/src/trace.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/engine.rs:
crates/gpusim/src/kernel.rs:
crates/gpusim/src/spec.rs:
crates/gpusim/src/trace.rs:
