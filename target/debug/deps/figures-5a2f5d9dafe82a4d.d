/root/repo/target/debug/deps/figures-5a2f5d9dafe82a4d.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-5a2f5d9dafe82a4d: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
