/root/repo/target/debug/deps/single_gpu-da5aa35140bd976c.d: crates/bench/benches/single_gpu.rs Cargo.toml

/root/repo/target/debug/deps/libsingle_gpu-da5aa35140bd976c.rmeta: crates/bench/benches/single_gpu.rs Cargo.toml

crates/bench/benches/single_gpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
