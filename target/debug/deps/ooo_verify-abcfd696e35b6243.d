/root/repo/target/debug/deps/ooo_verify-abcfd696e35b6243.d: crates/verify/src/lib.rs crates/verify/src/access.rs crates/verify/src/hb.rs

/root/repo/target/debug/deps/ooo_verify-abcfd696e35b6243: crates/verify/src/lib.rs crates/verify/src/access.rs crates/verify/src/hb.rs

crates/verify/src/lib.rs:
crates/verify/src/access.rs:
crates/verify/src/hb.rs:
