/root/repo/target/debug/deps/schedule_shipping-edb015b4975a0654.d: tests/schedule_shipping.rs Cargo.toml

/root/repo/target/debug/deps/libschedule_shipping-edb015b4975a0654.rmeta: tests/schedule_shipping.rs Cargo.toml

tests/schedule_shipping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
