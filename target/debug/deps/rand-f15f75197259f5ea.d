/root/repo/target/debug/deps/rand-f15f75197259f5ea.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-f15f75197259f5ea: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
