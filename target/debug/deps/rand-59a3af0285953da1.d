/root/repo/target/debug/deps/rand-59a3af0285953da1.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-59a3af0285953da1.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-59a3af0285953da1.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
