/root/repo/target/debug/deps/ooo_tensor-9d187ee29cd890d9.d: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libooo_tensor-9d187ee29cd890d9.rmeta: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/error.rs:
crates/tensor/src/init.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
