/root/repo/target/debug/deps/proptest-ea34704528509e1d.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs

/root/repo/target/debug/deps/proptest-ea34704528509e1d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
