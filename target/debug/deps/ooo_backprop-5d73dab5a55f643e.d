/root/repo/target/debug/deps/ooo_backprop-5d73dab5a55f643e.d: src/lib.rs

/root/repo/target/debug/deps/ooo_backprop-5d73dab5a55f643e: src/lib.rs

src/lib.rs:
