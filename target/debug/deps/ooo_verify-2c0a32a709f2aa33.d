/root/repo/target/debug/deps/ooo_verify-2c0a32a709f2aa33.d: crates/verify/src/lib.rs crates/verify/src/access.rs crates/verify/src/hb.rs Cargo.toml

/root/repo/target/debug/deps/libooo_verify-2c0a32a709f2aa33.rmeta: crates/verify/src/lib.rs crates/verify/src/access.rs crates/verify/src/hb.rs Cargo.toml

crates/verify/src/lib.rs:
crates/verify/src/access.rs:
crates/verify/src/hb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
