/root/repo/target/debug/deps/ooo_backprop-fb8f9fbecd656e97.d: src/lib.rs

/root/repo/target/debug/deps/ooo_backprop-fb8f9fbecd656e97: src/lib.rs

src/lib.rs:
