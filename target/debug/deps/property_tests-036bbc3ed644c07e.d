/root/repo/target/debug/deps/property_tests-036bbc3ed644c07e.d: tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-036bbc3ed644c07e: tests/property_tests.rs

tests/property_tests.rs:
