/root/repo/target/debug/deps/ooo_models-7ec21c55f52a86fd.d: crates/models/src/lib.rs crates/models/src/cost.rs crates/models/src/gpu.rs crates/models/src/spec.rs crates/models/src/zoo.rs

/root/repo/target/debug/deps/ooo_models-7ec21c55f52a86fd: crates/models/src/lib.rs crates/models/src/cost.rs crates/models/src/gpu.rs crates/models/src/spec.rs crates/models/src/zoo.rs

crates/models/src/lib.rs:
crates/models/src/cost.rs:
crates/models/src/gpu.rs:
crates/models/src/spec.rs:
crates/models/src/zoo.rs:
