/root/repo/target/debug/deps/nlp_training-77c68eb40f8a4f4f.d: tests/nlp_training.rs

/root/repo/target/debug/deps/nlp_training-77c68eb40f8a4f4f: tests/nlp_training.rs

tests/nlp_training.rs:
