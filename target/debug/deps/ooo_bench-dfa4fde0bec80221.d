/root/repo/target/debug/deps/ooo_bench-dfa4fde0bec80221.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libooo_bench-dfa4fde0bec80221.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libooo_bench-dfa4fde0bec80221.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
