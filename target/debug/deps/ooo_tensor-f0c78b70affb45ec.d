/root/repo/target/debug/deps/ooo_tensor-f0c78b70affb45ec.d: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/ooo_tensor-f0c78b70affb45ec: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/error.rs:
crates/tensor/src/init.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
