/root/repo/target/debug/deps/ooo_tensor-711ae85331a95cf6.d: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libooo_tensor-711ae85331a95cf6.rlib: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libooo_tensor-711ae85331a95cf6.rmeta: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/init.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/error.rs:
crates/tensor/src/init.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
