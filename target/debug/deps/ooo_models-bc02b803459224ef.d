/root/repo/target/debug/deps/ooo_models-bc02b803459224ef.d: crates/models/src/lib.rs crates/models/src/cost.rs crates/models/src/gpu.rs crates/models/src/spec.rs crates/models/src/zoo.rs Cargo.toml

/root/repo/target/debug/deps/libooo_models-bc02b803459224ef.rmeta: crates/models/src/lib.rs crates/models/src/cost.rs crates/models/src/gpu.rs crates/models/src/spec.rs crates/models/src/zoo.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/cost.rs:
crates/models/src/gpu.rs:
crates/models/src/spec.rs:
crates/models/src/zoo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
