/root/repo/target/debug/deps/proptests-d5546f55e2dc0d7d.d: crates/tensor/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d5546f55e2dc0d7d.rmeta: crates/tensor/tests/proptests.rs Cargo.toml

crates/tensor/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
