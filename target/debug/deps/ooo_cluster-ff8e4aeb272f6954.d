/root/repo/target/debug/deps/ooo_cluster-ff8e4aeb272f6954.d: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/checks.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs

/root/repo/target/debug/deps/libooo_cluster-ff8e4aeb272f6954.rlib: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/checks.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs

/root/repo/target/debug/deps/libooo_cluster-ff8e4aeb272f6954.rmeta: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/checks.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs

crates/cluster/src/lib.rs:
crates/cluster/src/ablation.rs:
crates/cluster/src/analysis.rs:
crates/cluster/src/checks.rs:
crates/cluster/src/datapar.rs:
crates/cluster/src/hybrid.rs:
crates/cluster/src/pipeline.rs:
crates/cluster/src/single.rs:
