/root/repo/target/debug/deps/ooo_netsim-39480735ff41ac2b.d: crates/netsim/src/lib.rs crates/netsim/src/collective.rs crates/netsim/src/commsim.rs crates/netsim/src/flows.rs crates/netsim/src/link.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/ooo_netsim-39480735ff41ac2b: crates/netsim/src/lib.rs crates/netsim/src/collective.rs crates/netsim/src/commsim.rs crates/netsim/src/flows.rs crates/netsim/src/link.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/collective.rs:
crates/netsim/src/commsim.rs:
crates/netsim/src/flows.rs:
crates/netsim/src/link.rs:
crates/netsim/src/topology.rs:
