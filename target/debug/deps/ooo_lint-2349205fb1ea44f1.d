/root/repo/target/debug/deps/ooo_lint-2349205fb1ea44f1.d: crates/verify/src/bin/ooo-lint.rs Cargo.toml

/root/repo/target/debug/deps/libooo_lint-2349205fb1ea44f1.rmeta: crates/verify/src/bin/ooo-lint.rs Cargo.toml

crates/verify/src/bin/ooo-lint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
