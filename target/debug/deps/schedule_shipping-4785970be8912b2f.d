/root/repo/target/debug/deps/schedule_shipping-4785970be8912b2f.d: tests/schedule_shipping.rs

/root/repo/target/debug/deps/schedule_shipping-4785970be8912b2f: tests/schedule_shipping.rs

tests/schedule_shipping.rs:
