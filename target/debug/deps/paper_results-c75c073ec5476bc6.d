/root/repo/target/debug/deps/paper_results-c75c073ec5476bc6.d: tests/paper_results.rs

/root/repo/target/debug/deps/paper_results-c75c073ec5476bc6: tests/paper_results.rs

tests/paper_results.rs:
