/root/repo/target/debug/deps/nlp_training-cc8d7a0e5ed471d5.d: tests/nlp_training.rs

/root/repo/target/debug/deps/nlp_training-cc8d7a0e5ed471d5: tests/nlp_training.rs

tests/nlp_training.rs:
