/root/repo/target/debug/deps/schedule_shipping-736116dea2b49ca8.d: tests/schedule_shipping.rs

/root/repo/target/debug/deps/schedule_shipping-736116dea2b49ca8: tests/schedule_shipping.rs

tests/schedule_shipping.rs:
