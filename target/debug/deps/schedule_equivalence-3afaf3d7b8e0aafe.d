/root/repo/target/debug/deps/schedule_equivalence-3afaf3d7b8e0aafe.d: tests/schedule_equivalence.rs

/root/repo/target/debug/deps/schedule_equivalence-3afaf3d7b8e0aafe: tests/schedule_equivalence.rs

tests/schedule_equivalence.rs:
