/root/repo/target/debug/deps/ooo_cluster-1de933882b838944.d: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs

/root/repo/target/debug/deps/libooo_cluster-1de933882b838944.rlib: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs

/root/repo/target/debug/deps/libooo_cluster-1de933882b838944.rmeta: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs

crates/cluster/src/lib.rs:
crates/cluster/src/ablation.rs:
crates/cluster/src/analysis.rs:
crates/cluster/src/datapar.rs:
crates/cluster/src/hybrid.rs:
crates/cluster/src/pipeline.rs:
crates/cluster/src/single.rs:
