/root/repo/target/debug/deps/proptest-0a1ab8cb8a2f7694.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-0a1ab8cb8a2f7694.rlib: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-0a1ab8cb8a2f7694.rmeta: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
