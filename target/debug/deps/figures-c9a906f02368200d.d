/root/repo/target/debug/deps/figures-c9a906f02368200d.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-c9a906f02368200d: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
