/root/repo/target/debug/deps/ooo_bench-6a29936dc0e02c56.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/ooo_bench-6a29936dc0e02c56: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
