/root/repo/target/debug/deps/proptests-259beb5736858268.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-259beb5736858268: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
