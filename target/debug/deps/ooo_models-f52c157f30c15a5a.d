/root/repo/target/debug/deps/ooo_models-f52c157f30c15a5a.d: crates/models/src/lib.rs crates/models/src/cost.rs crates/models/src/gpu.rs crates/models/src/spec.rs crates/models/src/zoo.rs

/root/repo/target/debug/deps/libooo_models-f52c157f30c15a5a.rlib: crates/models/src/lib.rs crates/models/src/cost.rs crates/models/src/gpu.rs crates/models/src/spec.rs crates/models/src/zoo.rs

/root/repo/target/debug/deps/libooo_models-f52c157f30c15a5a.rmeta: crates/models/src/lib.rs crates/models/src/cost.rs crates/models/src/gpu.rs crates/models/src/spec.rs crates/models/src/zoo.rs

crates/models/src/lib.rs:
crates/models/src/cost.rs:
crates/models/src/gpu.rs:
crates/models/src/spec.rs:
crates/models/src/zoo.rs:
