/root/repo/target/debug/deps/ooo_backprop-e736072875ac49d5.d: src/lib.rs

/root/repo/target/debug/deps/libooo_backprop-e736072875ac49d5.rlib: src/lib.rs

/root/repo/target/debug/deps/libooo_backprop-e736072875ac49d5.rmeta: src/lib.rs

src/lib.rs:
