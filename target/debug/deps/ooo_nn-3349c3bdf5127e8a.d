/root/repo/target/debug/deps/ooo_nn-3349c3bdf5127e8a.d: crates/nn/src/lib.rs crates/nn/src/composite.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/layers.rs crates/nn/src/metrics.rs crates/nn/src/network.rs crates/nn/src/nlp.rs crates/nn/src/optim.rs crates/nn/src/parallel.rs crates/nn/src/trainer.rs Cargo.toml

/root/repo/target/debug/deps/libooo_nn-3349c3bdf5127e8a.rmeta: crates/nn/src/lib.rs crates/nn/src/composite.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/layers.rs crates/nn/src/metrics.rs crates/nn/src/network.rs crates/nn/src/nlp.rs crates/nn/src/optim.rs crates/nn/src/parallel.rs crates/nn/src/trainer.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/composite.rs:
crates/nn/src/data.rs:
crates/nn/src/error.rs:
crates/nn/src/layers.rs:
crates/nn/src/metrics.rs:
crates/nn/src/network.rs:
crates/nn/src/nlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/parallel.rs:
crates/nn/src/trainer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
