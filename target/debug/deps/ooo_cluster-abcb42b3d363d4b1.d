/root/repo/target/debug/deps/ooo_cluster-abcb42b3d363d4b1.d: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs

/root/repo/target/debug/deps/ooo_cluster-abcb42b3d363d4b1: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs

crates/cluster/src/lib.rs:
crates/cluster/src/ablation.rs:
crates/cluster/src/analysis.rs:
crates/cluster/src/datapar.rs:
crates/cluster/src/hybrid.rs:
crates/cluster/src/pipeline.rs:
crates/cluster/src/single.rs:
