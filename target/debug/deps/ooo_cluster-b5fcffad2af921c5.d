/root/repo/target/debug/deps/ooo_cluster-b5fcffad2af921c5.d: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/checks.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs

/root/repo/target/debug/deps/ooo_cluster-b5fcffad2af921c5: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/checks.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs

crates/cluster/src/lib.rs:
crates/cluster/src/ablation.rs:
crates/cluster/src/analysis.rs:
crates/cluster/src/checks.rs:
crates/cluster/src/datapar.rs:
crates/cluster/src/hybrid.rs:
crates/cluster/src/pipeline.rs:
crates/cluster/src/single.rs:
