/root/repo/target/debug/deps/ooo_cluster-377c263d30886ee1.d: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/checks.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs Cargo.toml

/root/repo/target/debug/deps/libooo_cluster-377c263d30886ee1.rmeta: crates/cluster/src/lib.rs crates/cluster/src/ablation.rs crates/cluster/src/analysis.rs crates/cluster/src/checks.rs crates/cluster/src/datapar.rs crates/cluster/src/hybrid.rs crates/cluster/src/pipeline.rs crates/cluster/src/single.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/ablation.rs:
crates/cluster/src/analysis.rs:
crates/cluster/src/checks.rs:
crates/cluster/src/datapar.rs:
crates/cluster/src/hybrid.rs:
crates/cluster/src/pipeline.rs:
crates/cluster/src/single.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
