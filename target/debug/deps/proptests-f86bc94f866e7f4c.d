/root/repo/target/debug/deps/proptests-f86bc94f866e7f4c.d: crates/gpusim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f86bc94f866e7f4c: crates/gpusim/tests/proptests.rs

crates/gpusim/tests/proptests.rs:
