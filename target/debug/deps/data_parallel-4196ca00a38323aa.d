/root/repo/target/debug/deps/data_parallel-4196ca00a38323aa.d: crates/bench/benches/data_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libdata_parallel-4196ca00a38323aa.rmeta: crates/bench/benches/data_parallel.rs Cargo.toml

crates/bench/benches/data_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
