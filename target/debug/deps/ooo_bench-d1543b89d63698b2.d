/root/repo/target/debug/deps/ooo_bench-d1543b89d63698b2.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/ooo_bench-d1543b89d63698b2: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
