/root/repo/target/debug/deps/training_step-5e826e86900620d6.d: crates/bench/benches/training_step.rs Cargo.toml

/root/repo/target/debug/deps/libtraining_step-5e826e86900620d6.rmeta: crates/bench/benches/training_step.rs Cargo.toml

crates/bench/benches/training_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
