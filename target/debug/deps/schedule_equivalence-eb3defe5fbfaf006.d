/root/repo/target/debug/deps/schedule_equivalence-eb3defe5fbfaf006.d: tests/schedule_equivalence.rs

/root/repo/target/debug/deps/schedule_equivalence-eb3defe5fbfaf006: tests/schedule_equivalence.rs

tests/schedule_equivalence.rs:
