/root/repo/target/debug/deps/ooo_netsim-a44bde9ceac843cc.d: crates/netsim/src/lib.rs crates/netsim/src/collective.rs crates/netsim/src/commsim.rs crates/netsim/src/flows.rs crates/netsim/src/link.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/libooo_netsim-a44bde9ceac843cc.rlib: crates/netsim/src/lib.rs crates/netsim/src/collective.rs crates/netsim/src/commsim.rs crates/netsim/src/flows.rs crates/netsim/src/link.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/libooo_netsim-a44bde9ceac843cc.rmeta: crates/netsim/src/lib.rs crates/netsim/src/collective.rs crates/netsim/src/commsim.rs crates/netsim/src/flows.rs crates/netsim/src/link.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/collective.rs:
crates/netsim/src/commsim.rs:
crates/netsim/src/flows.rs:
crates/netsim/src/link.rs:
crates/netsim/src/topology.rs:
