/root/repo/target/debug/deps/ooo_verify-1d552fea9085a3cf.d: crates/verify/src/lib.rs crates/verify/src/access.rs crates/verify/src/hb.rs

/root/repo/target/debug/deps/libooo_verify-1d552fea9085a3cf.rlib: crates/verify/src/lib.rs crates/verify/src/access.rs crates/verify/src/hb.rs

/root/repo/target/debug/deps/libooo_verify-1d552fea9085a3cf.rmeta: crates/verify/src/lib.rs crates/verify/src/access.rs crates/verify/src/hb.rs

crates/verify/src/lib.rs:
crates/verify/src/access.rs:
crates/verify/src/hb.rs:
