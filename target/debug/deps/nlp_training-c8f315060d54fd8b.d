/root/repo/target/debug/deps/nlp_training-c8f315060d54fd8b.d: tests/nlp_training.rs Cargo.toml

/root/repo/target/debug/deps/libnlp_training-c8f315060d54fd8b.rmeta: tests/nlp_training.rs Cargo.toml

tests/nlp_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
