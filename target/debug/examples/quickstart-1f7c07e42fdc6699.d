/root/repo/target/debug/examples/quickstart-1f7c07e42fdc6699.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1f7c07e42fdc6699: examples/quickstart.rs

examples/quickstart.rs:
