/root/repo/target/debug/examples/single_gpu_training-74726d1de5f5a6df.d: examples/single_gpu_training.rs Cargo.toml

/root/repo/target/debug/examples/libsingle_gpu_training-74726d1de5f5a6df.rmeta: examples/single_gpu_training.rs Cargo.toml

examples/single_gpu_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
