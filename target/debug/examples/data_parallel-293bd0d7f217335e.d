/root/repo/target/debug/examples/data_parallel-293bd0d7f217335e.d: examples/data_parallel.rs

/root/repo/target/debug/examples/data_parallel-293bd0d7f217335e: examples/data_parallel.rs

examples/data_parallel.rs:
