/root/repo/target/debug/examples/export_trace-c2e115c15f059c26.d: examples/export_trace.rs

/root/repo/target/debug/examples/export_trace-c2e115c15f059c26: examples/export_trace.rs

examples/export_trace.rs:
