/root/repo/target/debug/examples/pipeline_parallel-edd0a53cfcacf7f4.d: examples/pipeline_parallel.rs Cargo.toml

/root/repo/target/debug/examples/libpipeline_parallel-edd0a53cfcacf7f4.rmeta: examples/pipeline_parallel.rs Cargo.toml

examples/pipeline_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
