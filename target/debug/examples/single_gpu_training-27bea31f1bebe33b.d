/root/repo/target/debug/examples/single_gpu_training-27bea31f1bebe33b.d: examples/single_gpu_training.rs

/root/repo/target/debug/examples/single_gpu_training-27bea31f1bebe33b: examples/single_gpu_training.rs

examples/single_gpu_training.rs:
