/root/repo/target/debug/examples/nlp_ooo_training-de1af5ba6dfa1236.d: examples/nlp_ooo_training.rs Cargo.toml

/root/repo/target/debug/examples/libnlp_ooo_training-de1af5ba6dfa1236.rmeta: examples/nlp_ooo_training.rs Cargo.toml

examples/nlp_ooo_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
