/root/repo/target/debug/examples/export_trace-e29bba66c2d42519.d: examples/export_trace.rs Cargo.toml

/root/repo/target/debug/examples/libexport_trace-e29bba66c2d42519.rmeta: examples/export_trace.rs Cargo.toml

examples/export_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
