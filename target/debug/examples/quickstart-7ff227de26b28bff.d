/root/repo/target/debug/examples/quickstart-7ff227de26b28bff.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7ff227de26b28bff: examples/quickstart.rs

examples/quickstart.rs:
