/root/repo/target/debug/examples/single_gpu_training-ac6844442c0f935d.d: examples/single_gpu_training.rs

/root/repo/target/debug/examples/single_gpu_training-ac6844442c0f935d: examples/single_gpu_training.rs

examples/single_gpu_training.rs:
