/root/repo/target/debug/examples/export_trace-7fbb2e0425371d64.d: examples/export_trace.rs

/root/repo/target/debug/examples/export_trace-7fbb2e0425371d64: examples/export_trace.rs

examples/export_trace.rs:
