/root/repo/target/debug/examples/pipeline_parallel-6f0ac778e42b6e03.d: examples/pipeline_parallel.rs

/root/repo/target/debug/examples/pipeline_parallel-6f0ac778e42b6e03: examples/pipeline_parallel.rs

examples/pipeline_parallel.rs:
