/root/repo/target/debug/examples/nlp_ooo_training-232b196230eea0dd.d: examples/nlp_ooo_training.rs

/root/repo/target/debug/examples/nlp_ooo_training-232b196230eea0dd: examples/nlp_ooo_training.rs

examples/nlp_ooo_training.rs:
