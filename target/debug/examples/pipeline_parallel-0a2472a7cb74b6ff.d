/root/repo/target/debug/examples/pipeline_parallel-0a2472a7cb74b6ff.d: examples/pipeline_parallel.rs

/root/repo/target/debug/examples/pipeline_parallel-0a2472a7cb74b6ff: examples/pipeline_parallel.rs

examples/pipeline_parallel.rs:
