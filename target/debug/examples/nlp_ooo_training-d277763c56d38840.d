/root/repo/target/debug/examples/nlp_ooo_training-d277763c56d38840.d: examples/nlp_ooo_training.rs

/root/repo/target/debug/examples/nlp_ooo_training-d277763c56d38840: examples/nlp_ooo_training.rs

examples/nlp_ooo_training.rs:
