/root/repo/target/debug/examples/data_parallel-5d13dd0f9086ccdc.d: examples/data_parallel.rs

/root/repo/target/debug/examples/data_parallel-5d13dd0f9086ccdc: examples/data_parallel.rs

examples/data_parallel.rs:
