/root/repo/target/debug/examples/data_parallel-e1059a4791ec4928.d: examples/data_parallel.rs Cargo.toml

/root/repo/target/debug/examples/libdata_parallel-e1059a4791ec4928.rmeta: examples/data_parallel.rs Cargo.toml

examples/data_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
